// Memory-budgeted LRU cache of completed mixed-precision factorizations.
//
// The factorization is the "loaded model" of the serving stack: O(N^3)
// flops to produce, O(N^2) bytes to keep, and every solve against it is
// cheap. The cache keys entries by ProblemKey and bounds their resident
// bytes; least-recently-used ready entries are evicted when a new
// factorization would exceed the budget.
//
// Concurrent misses on the same key are single-flighted: the first caller
// factors, every other caller blocks on the in-flight entry and shares the
// result — a burst of requests for a new problem costs exactly one
// factorization (the factorCount counter is the proof the serve
// acceptance test asserts on).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "core/single_solver.h"
#include "serve/problem_key.h"
#include "util/common.h"

namespace hplmxp::serve {

class FactorCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;     // getOrFactor calls; == hits + misses
    std::uint64_t hits = 0;        // served from cache (ready or coalesced)
    std::uint64_t misses = 0;      // caller ran the factorization
    std::uint64_t coalesced = 0;   // wait events on another caller's flight
    std::uint64_t evictions = 0;   // LRU entries dropped for budget
    std::uint64_t factorCount = 0; // factorizations actually executed
    std::size_t bytesInUse = 0;    // ready entries currently resident
    std::size_t budgetBytes = 0;

    [[nodiscard]] double hitRate() const {
      return lookups > 0
                 ? static_cast<double>(hits) / static_cast<double>(lookups)
                 : 0.0;
    }
  };

  /// What getOrFactor returned and how it got it.
  struct Fetch {
    std::shared_ptr<const Factorization> factors;
    bool hit = false;            // true for ready-entry and coalesced waits
    double factorSeconds = 0.0;  // time this caller spent factoring (miss)
  };

  explicit FactorCache(std::size_t budgetBytes);

  /// Returns the cached factorization for `key`, running `factorFn` under
  /// single-flight on a miss. `factorFn` must produce a Factorization for
  /// exactly this key; it runs outside the cache lock. If it throws, the
  /// in-flight entry is withdrawn, waiters retry (one of them becomes the
  /// new factoring caller), and the exception propagates to this caller.
  Fetch getOrFactor(const ProblemKey& key,
                    const std::function<Factorization()>& factorFn);

  /// Ready-entry lookup without factoring; nullptr on miss. Touches LRU.
  [[nodiscard]] std::shared_ptr<const Factorization> peek(
      const ProblemKey& key);

  /// Called whenever a ready entry is evicted for budget (fleet-level
  /// cache indices track per-shard residency through this). The listener
  /// runs under the cache lock and must not call back into the cache.
  void setEvictionListener(std::function<void(const ProblemKey&)> listener);

  [[nodiscard]] bool contains(const ProblemKey& key) const;
  [[nodiscard]] std::size_t size() const;  // ready entries
  [[nodiscard]] Stats stats() const;
  void clear();  // drops ready entries (in-flight ones complete normally)

 private:
  struct Entry {
    std::shared_ptr<const Factorization> value;  // null while in flight
    bool inFlight = false;
    std::uint64_t lastUse = 0;
    std::size_t bytes = 0;
  };

  /// Evicts ready LRU entries until the budget holds (callers still
  /// holding shared_ptrs keep their factors alive; the cache just stops
  /// accounting for them). Requires the lock.
  void evictForBudgetLocked();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<ProblemKey, Entry> entries_;
  std::function<void(const ProblemKey&)> evictionListener_;
  std::uint64_t useClock_ = 0;
  std::size_t budgetBytes_;
  std::size_t bytesInUse_ = 0;
  Stats stats_;
};

}  // namespace hplmxp::serve
