#include "gen/lcg.h"

namespace hplmxp {

std::uint64_t Lcg64::jumped(std::uint64_t seed, std::uint64_t n) {
  // The n-step map is x -> A*x + C where (A, C) is the n-fold composition
  // of (a, c). Squaring the map: (a, c) o (a, c) = (a^2, a*c + c).
  std::uint64_t accA = 1;
  std::uint64_t accC = 0;
  std::uint64_t curA = kMultiplier;
  std::uint64_t curC = kIncrement;
  while (n != 0) {
    if ((n & 1ULL) != 0) {
      accA = accA * curA;
      accC = accC * curA + curC;
    }
    curC = (curA + 1) * curC;
    curA = curA * curA;
    n >>= 1;
  }
  return seed * accA + accC;
}

}  // namespace hplmxp
