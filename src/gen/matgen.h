// HPL-AI problem generator.
//
// Generates the dense system A x = b used by the benchmark. Entries are
// uniform in [-0.5, 0.5) from the jump-ahead LCG; the diagonal is shifted
// by +N so A is strictly diagonally dominant. Diagonal dominance bounds the
// condition number and (per the HPL-AI rules the paper describes) justifies
// LU factorization *without pivoting*, which is what makes the GPU-friendly
// no-pivot GETRF legal.
//
// Every entry is a pure function of (seed, i, j), so any rank can generate
// any tile of A — the property Algorithm 1 exploits in both initial fill
// and the iterative-refinement residual.
#pragma once

#include <cstdint>

#include "gen/lcg.h"
#include "util/common.h"

namespace hplmxp {

/// Deterministic generator of the HPL-AI test problem of order N.
class ProblemGenerator {
 public:
  /// `diagShift` < 0 selects the benchmark default (+N), which makes A
  /// strictly diagonally dominant. A shift of 0 produces a plain uniform
  /// random matrix — useful for exercising the pivoted FP64 baseline,
  /// where row interchanges actually engage.
  ProblemGenerator(std::uint64_t seed, index_t n, double diagShift = -1.0);

  [[nodiscard]] index_t n() const { return n_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] double diagShift() const { return diagShift_; }

  /// A(i, j) in FP64. O(log N) per call (LCG jump).
  [[nodiscard]] double entry(index_t i, index_t j) const;

  /// Right-hand side b(i) in FP64.
  [[nodiscard]] double rhs(index_t i) const;

  /// Fills a rows x cols tile starting at global (i0, j0) into col-major
  /// `out` with leading dimension `ld`. T is float, double, or any
  /// storage-ladder type (half16/bfloat16/fp8*: the entry narrows through
  /// float, rounding to nearest-even twice). Cost is one O(log N) jump per
  /// column plus O(rows) sequential draws, because consecutive rows within
  /// a column are consecutive LCG indices.
  template <typename T>
  void fillTile(index_t i0, index_t j0, index_t rows, index_t cols, T* out,
                index_t ld) const;

  /// Fills rhs entries [i0, i0+rows) into out.
  template <typename T>
  void fillRhs(index_t i0, index_t rows, T* out) const;

  /// max_i |A(i,i)|; needed by the HPL-AI convergence criterion.
  [[nodiscard]] double diagInfNorm() const;

  /// ||b||_inf, computed by regeneration.
  [[nodiscard]] double rhsInfNorm() const;

  /// ||A||_inf (max row sum of |A(i,j)|). O(N^2); intended for the small
  /// problem sizes used in verification, not extreme-scale runs.
  [[nodiscard]] double matrixInfNorm() const;

 private:
  /// LCG index of entry (i, j): columns are laid out consecutively so that
  /// a column fill costs one jump. Index 0..N^2-1 covers A; N^2..N^2+N-1
  /// covers b.
  [[nodiscard]] std::uint64_t entryIndex(index_t i, index_t j) const {
    return static_cast<std::uint64_t>(j) * static_cast<std::uint64_t>(n_) +
           static_cast<std::uint64_t>(i);
  }

  [[nodiscard]] double valueAt(std::uint64_t lcgIndex, bool onDiagonal) const;

  std::uint64_t seed_;
  index_t n_;
  double diagShift_;
};

template <typename T>
void ProblemGenerator::fillTile(index_t i0, index_t j0, index_t rows,
                                index_t cols, T* out, index_t ld) const {
  HPLMXP_REQUIRE(i0 >= 0 && j0 >= 0 && rows >= 0 && cols >= 0,
                 "tile bounds must be non-negative");
  HPLMXP_REQUIRE(i0 + rows <= n_ && j0 + cols <= n_,
                 "tile exceeds matrix bounds");
  HPLMXP_REQUIRE(ld >= rows, "leading dimension too small");
  for (index_t c = 0; c < cols; ++c) {
    const index_t j = j0 + c;
    // Jump to the first entry of this column segment, then walk rows.
    std::uint64_t state = Lcg64::jumped(seed_, entryIndex(i0, j) + 1);
    T* col = out + c * ld;
    for (index_t r = 0; r < rows; ++r) {
      const index_t i = i0 + r;
      double v = Lcg64::toUniform(state);
      if (i == j) {
        v += diagShift_;
      }
      col[r] = static_cast<T>(v);
      state = state * Lcg64::kMultiplier + Lcg64::kIncrement;
    }
  }
}

template <typename T>
void ProblemGenerator::fillRhs(index_t i0, index_t rows, T* out) const {
  HPLMXP_REQUIRE(i0 >= 0 && rows >= 0 && i0 + rows <= n_,
                 "rhs segment out of bounds");
  const std::uint64_t base = static_cast<std::uint64_t>(n_) *
                             static_cast<std::uint64_t>(n_);
  std::uint64_t state =
      Lcg64::jumped(seed_, base + static_cast<std::uint64_t>(i0) + 1);
  for (index_t r = 0; r < rows; ++r) {
    out[r] = static_cast<T>(Lcg64::toUniform(state));
    state = state * Lcg64::kMultiplier + Lcg64::kIncrement;
  }
}

}  // namespace hplmxp
