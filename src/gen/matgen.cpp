#include "gen/matgen.h"

#include <cmath>

namespace hplmxp {

ProblemGenerator::ProblemGenerator(std::uint64_t seed, index_t n,
                                   double diagShift)
    : seed_(seed), n_(n),
      diagShift_(diagShift < 0.0 ? static_cast<double>(n) : diagShift) {
  HPLMXP_REQUIRE(n > 0, "matrix order must be positive");
}

double ProblemGenerator::valueAt(std::uint64_t lcgIndex,
                                 bool onDiagonal) const {
  const std::uint64_t state = Lcg64::jumped(seed_, lcgIndex + 1);
  double v = Lcg64::toUniform(state);
  if (onDiagonal) {
    v += diagShift_;
  }
  return v;
}

double ProblemGenerator::entry(index_t i, index_t j) const {
  HPLMXP_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "entry out of range");
  return valueAt(entryIndex(i, j), i == j);
}

double ProblemGenerator::rhs(index_t i) const {
  HPLMXP_REQUIRE(i >= 0 && i < n_, "rhs index out of range");
  const std::uint64_t base =
      static_cast<std::uint64_t>(n_) * static_cast<std::uint64_t>(n_);
  return valueAt(base + static_cast<std::uint64_t>(i), false);
}

double ProblemGenerator::diagInfNorm() const {
  double best = 0.0;
  for (index_t i = 0; i < n_; ++i) {
    best = std::max(best, std::fabs(entry(i, i)));
  }
  return best;
}

double ProblemGenerator::rhsInfNorm() const {
  double best = 0.0;
  for (index_t i = 0; i < n_; ++i) {
    best = std::max(best, std::fabs(rhs(i)));
  }
  return best;
}

double ProblemGenerator::matrixInfNorm() const {
  double best = 0.0;
  for (index_t i = 0; i < n_; ++i) {
    double rowSum = 0.0;
    for (index_t j = 0; j < n_; ++j) {
      rowSum += std::fabs(entry(i, j));
    }
    best = std::max(best, rowSum);
  }
  return best;
}

}  // namespace hplmxp
