// 64-bit linear congruential generator with O(log n) jump-ahead.
//
// The paper (and the Fugaku HPL-AI code it builds on) generates every entry
// of A from an LCG that can start the sequence at any offset in O(log n)
// time. That property is what lets each rank regenerate any A(i, j) on the
// fly — during initial fill and again during iterative refinement — without
// ever storing the FP64 matrix.
#pragma once

#include <cstdint>

namespace hplmxp {

/// x_{n+1} = a*x_n + c (mod 2^64), Knuth's MMIX constants. All arithmetic
/// is modulo 2^64 via natural unsigned wraparound.
class Lcg64 {
 public:
  static constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;
  static constexpr std::uint64_t kIncrement = 1442695040888963407ULL;

  explicit Lcg64(std::uint64_t seed = 0x853C49E6748FEA9BULL) : state_(seed) {}

  /// Advances one step and returns the new state.
  std::uint64_t next() {
    state_ = state_ * kMultiplier + kIncrement;
    return state_;
  }

  [[nodiscard]] std::uint64_t state() const { return state_; }

  /// Jumps the generator `n` steps forward in O(log n).
  void jump(std::uint64_t n) { state_ = jumped(state_, n); }

  /// Returns the state reached from `seed` after exactly `n` steps, in
  /// O(log n): composes the affine map (a, c) with itself by binary
  /// exponentiation.
  static std::uint64_t jumped(std::uint64_t seed, std::uint64_t n);

  /// Maps a state to a uniform double in [-0.5, 0.5) using the top 53 bits.
  static double toUniform(std::uint64_t state) {
    constexpr double kScale = 1.0 / 9007199254740992.0;  // 2^-53
    return static_cast<double>(state >> 11) * kScale - 0.5;
  }

 private:
  std::uint64_t state_;
};

}  // namespace hplmxp
