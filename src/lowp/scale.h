// Per-tile power-of-two scaling for the FP8 rungs.
//
// FP8 e4m3 tops out at 448 and the benchmark's U panels carry the +N
// diagonal shift, so an unscaled cast would saturate every diagonal-block
// column. The standard fix (and what FP8 GEMM hardware pipelines do) is a
// per-tile FP32 scale: the tile is stored as value/scale and the GEMM
// folds scaleA * scaleB back into alpha. Scales here are exact powers of
// two, so the divide on store, the multiply into alpha, and the widening
// on load are all EXACT in FP32 — scaling changes which grid points the
// format can hit, never the rounding arithmetic, which keeps the
// cross-precision equivalence proofs bitwise.
#pragma once

#include <cmath>

namespace hplmxp::lowp {

/// Power-of-two scale s such that amax / s lands in (maxFinite/4,
/// maxFinite/2] — half the format's range as saturation headroom, within
/// one binade of it so the mantissa grid is fully used. Returns 1 for
/// amax == 0 (empty/zero tiles) and for non-finite amax (the cast then
/// propagates the NaN/Inf for the guards to catch).
inline float tileScale(float amax, float maxFinite) {
  if (!(amax > 0.0f) || !std::isfinite(amax)) {
    return 1.0f;
  }
  const float target = maxFinite * 0.5f;
  int eAmax = 0;
  int eTarget = 0;
  (void)std::frexp(amax, &eAmax);      // amax   = ma * 2^eAmax,  ma in [0.5,1)
  (void)std::frexp(target, &eTarget);  // target = mt * 2^eTarget
  // First candidate exponent; one correction step lands amax/s <= target
  // exactly (both comparisons are exact float ops on powers of two). The
  // clamp keeps s a NORMAL power of two even for deeply subnormal amax
  // (where the ideal exponent would flush ldexp to zero and the scale
  // would degenerate to 0): such tiles are numerically zero anyway, and a
  // 2^-126 scale just stores them as (tiny)/s — below the target binade
  // but exact and finite.
  int e = eAmax - eTarget;
  if (e < -126) {
    e = -126;
  }
  float s = std::ldexp(1.0f, e);
  if (amax / s > target) {
    ++e;
    s = std::ldexp(1.0f, e);
  }
  return s;
}

}  // namespace hplmxp::lowp
