#include "lowp/bfloat16.h"

#include <bit>

namespace hplmxp::lowp {

std::uint16_t bfloat16::fromFloat(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  if ((x & 0x7F800000u) == 0x7F800000u && (x & 0x007FFFFFu) != 0) {
    // NaN: canonical quiet NaN, sign preserved.
    return static_cast<std::uint16_t>(((x >> 16) & 0x8000u) | 0x7FC0u);
  }
  // Round-to-nearest-even on the low 16 bits. The carry propagates
  // correctly through the mantissa into the exponent (rounding up the
  // largest finite value yields infinity, exactly as IEEE prescribes),
  // and subnormals need no special case: bfloat16 subnormals are float
  // subnormals with a truncated mantissa.
  const std::uint32_t lsb = (x >> 16) & 1u;
  return static_cast<std::uint16_t>((x + 0x7FFFu + lsb) >> 16);
}

float bfloat16::toFloatBits(std::uint16_t b) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
}

}  // namespace hplmxp::lowp
