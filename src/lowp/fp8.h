// Software OCP FP8 storage types: e4m3 and e5m2.
//
// The OCP 8-bit floating point specification (and the NVIDIA/AMD FP8
// tensor-core formats it standardizes) defines two encodings:
//
//   * e4m3 — 4 exponent bits (bias 7), 3 mantissa bits. Finite-only: the
//     all-ones exponent is reclaimed for normal values, S.1111.111 is the
//     single NaN per sign, and there is NO infinity. Max finite is 448
//     (S.1111.110). Conversions that overflow SATURATE to +-448 and Inf
//     inputs convert to NaN — the hardware cast semantics
//     (__nv_cvt_float_to_fp8 with saturation).
//   * e5m2 — 5 exponent bits (bias 15), 2 mantissa bits. IEEE-structured:
//     S.11111.00 is infinity, nonzero trailing significands are NaNs, max
//     finite is 57344, and overflow rounds to infinity under the usual
//     round-to-nearest-even rules (like binary16).
//
// Both round float -> fp8 to nearest, ties to even, with full subnormal
// support (min subnormal: e4m3 2^-9, e5m2 2^-16). With only 2^8 encodings
// and a tiny dynamic range, FP8 LU storage is only usable behind the
// per-tile power-of-two scaling in lowp/scale.h.
#pragma once

#include <cstdint>

namespace hplmxp::lowp {

namespace detail {
/// Shared codec over the two FP8 layouts. kFiniteOnly selects the e4m3
/// convention (no Inf, saturating overflow, Inf -> NaN).
template <int kExpBits, int kMantBits, bool kFiniteOnly>
struct Fp8Codec {
  static std::uint8_t fromFloat(float f);
  static float toFloat(std::uint8_t bits);
};
}  // namespace detail

/// OCP FP8 e4m3 (finite-only, saturating).
class fp8e4m3 {
 public:
  using Codec = detail::Fp8Codec<4, 3, true>;

  fp8e4m3() = default;
  explicit fp8e4m3(float f) : bits_(fromFloat(f)) {}

  [[nodiscard]] float toFloat() const { return toFloatBits(bits_); }
  explicit operator float() const { return toFloat(); }

  [[nodiscard]] std::uint8_t bits() const { return bits_; }
  static fp8e4m3 fromBits(std::uint8_t bits) {
    fp8e4m3 v;
    v.bits_ = bits;
    return v;
  }

  [[nodiscard]] bool isNan() const { return (bits_ & 0x7Fu) == 0x7Fu; }
  /// e4m3 has no infinity encoding.
  [[nodiscard]] bool isInf() const { return false; }

  /// Largest finite value (S.1111.110 = 1.75 * 2^8).
  static constexpr float maxFinite() { return 448.0f; }
  /// Smallest positive normal value (2^-6).
  static constexpr float minNormal() { return 0.015625f; }
  /// Unit roundoff (2^-4).
  static constexpr float epsilonUnit() { return 0.0625f; }

  friend bool operator==(fp8e4m3 a, fp8e4m3 b) {
    return a.toFloat() == b.toFloat();
  }

  static std::uint8_t fromFloat(float f) { return Codec::fromFloat(f); }
  static float toFloatBits(std::uint8_t b) { return Codec::toFloat(b); }

 private:
  std::uint8_t bits_ = 0;
};

/// OCP FP8 e5m2 (IEEE-structured Inf/NaN).
class fp8e5m2 {
 public:
  using Codec = detail::Fp8Codec<5, 2, false>;

  fp8e5m2() = default;
  explicit fp8e5m2(float f) : bits_(fromFloat(f)) {}

  [[nodiscard]] float toFloat() const { return toFloatBits(bits_); }
  explicit operator float() const { return toFloat(); }

  [[nodiscard]] std::uint8_t bits() const { return bits_; }
  static fp8e5m2 fromBits(std::uint8_t bits) {
    fp8e5m2 v;
    v.bits_ = bits;
    return v;
  }

  [[nodiscard]] bool isNan() const {
    return (bits_ & 0x7Cu) == 0x7Cu && (bits_ & 0x03u) != 0;
  }
  [[nodiscard]] bool isInf() const { return (bits_ & 0x7Fu) == 0x7Cu; }

  /// Largest finite value (S.11110.11 = 1.75 * 2^15).
  static constexpr float maxFinite() { return 57344.0f; }
  /// Smallest positive normal value (2^-14).
  static constexpr float minNormal() { return 6.103515625e-05f; }
  /// Unit roundoff (2^-3).
  static constexpr float epsilonUnit() { return 0.125f; }

  friend bool operator==(fp8e5m2 a, fp8e5m2 b) {
    return a.toFloat() == b.toFloat();
  }

  static std::uint8_t fromFloat(float f) { return Codec::fromFloat(f); }
  static float toFloatBits(std::uint8_t b) { return Codec::toFloat(b); }

 private:
  std::uint8_t bits_ = 0;
};

static_assert(sizeof(fp8e4m3) == 1);
static_assert(sizeof(fp8e5m2) == 1);

}  // namespace hplmxp::lowp
