#include "lowp/precision.h"

#include "util/common.h"

namespace hplmxp::lowp {

namespace {

constexpr PrecisionSpec kSpecs[] = {
    {StoragePrecision::kFp16, "fp16", 16, 65504.0f,
     4.8828125e-04f /* 2^-11 */, false, 1.0},
    {StoragePrecision::kBf16, "bf16", 16, 3.3895313892515355e+38f,
     3.90625e-03f /* 2^-8 */, false, 1.0},
    {StoragePrecision::kFp8E4M3, "fp8e4m3", 8, 448.0f,
     6.25e-02f /* 2^-4 */, true, 2.0},
    {StoragePrecision::kFp8E5M2, "fp8e5m2", 8, 57344.0f,
     1.25e-01f /* 2^-3 */, true, 2.0},
};

}  // namespace

const PrecisionSpec& spec(StoragePrecision p) {
  for (const PrecisionSpec& s : kSpecs) {
    if (s.precision == p) {
      return s;
    }
  }
  return kSpecs[0];  // unreachable for valid enum values
}

const char* toString(StoragePrecision p) { return spec(p).name; }

StoragePrecision precisionFromString(const std::string& s) {
  for (const PrecisionSpec& sp : kSpecs) {
    if (s == sp.name) {
      return sp.precision;
    }
  }
  throw CheckError("unknown storage precision '" + s +
                   "' (want fp16|bf16|fp8e4m3|fp8e5m2)");
}

std::optional<StoragePrecision> nextRungUp(StoragePrecision p) {
  switch (p) {
    case StoragePrecision::kFp8E5M2: return StoragePrecision::kFp8E4M3;
    case StoragePrecision::kFp8E4M3: return StoragePrecision::kBf16;
    case StoragePrecision::kBf16: return StoragePrecision::kFp16;
    case StoragePrecision::kFp16: return std::nullopt;
  }
  return std::nullopt;
}

const std::vector<StoragePrecision>& ladderRungs() {
  static const std::vector<StoragePrecision> rungs = {
      StoragePrecision::kFp8E5M2, StoragePrecision::kFp8E4M3,
      StoragePrecision::kBf16, StoragePrecision::kFp16};
  return rungs;
}

}  // namespace hplmxp::lowp
