#include "lowp/fp8.h"

#include <bit>

namespace hplmxp::lowp::detail {

namespace {
constexpr int kF32ExpBias = 127;
}  // namespace

template <int kExpBits, int kMantBits, bool kFiniteOnly>
std::uint8_t Fp8Codec<kExpBits, kMantBits, kFiniteOnly>::fromFloat(float f) {
  constexpr int kBias = (1 << (kExpBits - 1)) - 1;
  constexpr std::uint32_t kAllOnesExp = (1u << kExpBits) - 1u;
  constexpr std::uint32_t kMantMax = (1u << kMantBits) - 1u;
  // e4m3 reclaims the all-ones exponent for normals: NaN is the single
  // S.1111.111 pattern and max finite sits right below it at S.1111.110.
  constexpr std::uint8_t kNanAbs =
      kFiniteOnly
          ? static_cast<std::uint8_t>((kAllOnesExp << kMantBits) | kMantMax)
          : static_cast<std::uint8_t>((kAllOnesExp << kMantBits) |
                                      (1u << (kMantBits - 1)));
  constexpr std::uint8_t kInfAbs =
      static_cast<std::uint8_t>(kAllOnesExp << kMantBits);  // IEEE only
  constexpr std::uint8_t kMaxFiniteAbs =
      kFiniteOnly
          ? static_cast<std::uint8_t>((kAllOnesExp << kMantBits) |
                                      (kMantMax - 1u))
          : static_cast<std::uint8_t>(((kAllOnesExp - 1u) << kMantBits) |
                                      kMantMax);
  constexpr int kMaxUnbiased =
      (kFiniteOnly ? static_cast<int>(kAllOnesExp)
                   : static_cast<int>(kAllOnesExp) - 1) -
      kBias;

  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const auto sign = static_cast<std::uint8_t>((x >> 24) & 0x80u);
  const int exp32 = static_cast<int>((x >> 23) & 0xFFu);
  const std::uint32_t mant32 = x & 0x007FFFFFu;

  if (exp32 == 0xFF) {
    if (mant32 != 0) {
      return static_cast<std::uint8_t>(sign | kNanAbs);
    }
    // Infinity: e5m2 keeps it; e4m3 has no encoding for it -> NaN
    // (matching the hardware cast convention).
    return static_cast<std::uint8_t>(sign |
                                     (kFiniteOnly ? kNanAbs : kInfAbs));
  }

  const int unbiased = exp32 - kF32ExpBias;

  if (unbiased > kMaxUnbiased) {
    // Beyond the exponent range entirely: saturate (e4m3) or round to
    // infinity (e5m2).
    return static_cast<std::uint8_t>(sign |
                                     (kFiniteOnly ? kMaxFiniteAbs : kInfAbs));
  }

  if (unbiased >= 1 - kBias) {
    // Normal result: drop 23 - kMantBits mantissa bits with RNE.
    std::uint32_t kept = mant32 >> (23 - kMantBits);
    const std::uint32_t dropped = mant32 & ((1u << (23 - kMantBits)) - 1u);
    const std::uint32_t half = 1u << (22 - kMantBits);
    std::uint32_t expF = static_cast<std::uint32_t>(unbiased + kBias);
    if (dropped > half || (dropped == half && (kept & 1u) != 0)) {
      ++kept;
      if (kept == (1u << kMantBits)) {  // mantissa carry into exponent
        kept = 0;
        ++expF;
      }
    }
    const std::uint32_t abs = (expF << kMantBits) | kept;
    if constexpr (kFiniteOnly) {
      if (abs >= kNanAbs) {  // rounded onto/past the NaN slot: saturate
        return static_cast<std::uint8_t>(sign | kMaxFiniteAbs);
      }
    } else {
      if (abs >= kInfAbs) {  // rounded past max finite: infinity
        return static_cast<std::uint8_t>(sign | kInfAbs);
      }
    }
    return static_cast<std::uint8_t>(sign | abs);
  }

  if (unbiased >= -(kBias + kMantBits)) {
    // Subnormal result, in units of 2^(1 - kBias - kMantBits). The
    // rounding increment may carry into the smallest normal encoding,
    // which the flat encoding space handles for free.
    const std::uint32_t significand = 0x00800000u | mant32;
    const int shift = (1 - kBias - kMantBits) - unbiased + 23;  // <= 24
    std::uint32_t kept = significand >> shift;
    const std::uint32_t droppedMask = (1u << shift) - 1u;
    const std::uint32_t dropped = significand & droppedMask;
    const std::uint32_t half = 1u << (shift - 1);
    if (dropped > half || (dropped == half && (kept & 1u) != 0)) {
      ++kept;
    }
    return static_cast<std::uint8_t>(sign | kept);
  }

  return sign;  // underflows to signed zero
}

template <int kExpBits, int kMantBits, bool kFiniteOnly>
float Fp8Codec<kExpBits, kMantBits, kFiniteOnly>::toFloat(std::uint8_t bits) {
  constexpr int kBias = (1 << (kExpBits - 1)) - 1;
  constexpr std::uint32_t kAllOnesExp = (1u << kExpBits) - 1u;
  constexpr std::uint32_t kMantMax = (1u << kMantBits) - 1u;

  const std::uint32_t signF32 = static_cast<std::uint32_t>(bits & 0x80u)
                                << 24;
  const std::uint32_t abs = bits & 0x7Fu;
  const std::uint32_t exp8 = abs >> kMantBits;
  const std::uint32_t mant8 = abs & kMantMax;

  if constexpr (kFiniteOnly) {
    if (abs == ((kAllOnesExp << kMantBits) | kMantMax)) {
      return std::bit_cast<float>(signF32 | 0x7FC00000u);  // qNaN
    }
  } else {
    if (exp8 == kAllOnesExp) {
      if (mant8 != 0) {
        return std::bit_cast<float>(signF32 | 0x7FC00000u);  // qNaN
      }
      return std::bit_cast<float>(signF32 | 0x7F800000u);  // inf
    }
  }

  std::uint32_t out;
  if (exp8 == 0) {
    if (mant8 == 0) {
      out = signF32;  // signed zero
    } else {
      // Subnormal: normalize into float's exponent range.
      int e = -1;
      std::uint32_t m = mant8;
      do {
        ++e;
        m <<= 1;
      } while ((m & (1u << kMantBits)) == 0);
      const std::uint32_t exp32 =
          static_cast<std::uint32_t>(kF32ExpBias - kBias - e);
      out = signF32 | (exp32 << 23) |
            ((m & kMantMax) << (23 - kMantBits));
    }
  } else {
    const std::uint32_t exp32 = exp8 - kBias + kF32ExpBias;
    out = signF32 | (exp32 << 23) | (mant8 << (23 - kMantBits));
  }
  return std::bit_cast<float>(out);
}

template struct Fp8Codec<4, 3, true>;
template struct Fp8Codec<5, 2, false>;

}  // namespace hplmxp::lowp::detail
