// Uniform cast/pack traits over the four storage formats.
//
// Every rung of the precision ladder exposes the same surface — explicit
// construction from float (round-to-nearest-even), exact widening via
// toFloat()/operator float, raw-bit access — so the BLAS pack/cast paths,
// gemmCore, the matrix generator, and the solver's panel casts can be
// written once, templated on the storage type. StorageTraits adds the
// per-format constants those templates branch on at compile time.
#pragma once

#include "fp16/half.h"
#include "lowp/bfloat16.h"
#include "lowp/fp8.h"
#include "lowp/precision.h"

namespace hplmxp::lowp {

template <typename T>
struct StorageTraits;

template <>
struct StorageTraits<hplmxp::half16> {
  static constexpr StoragePrecision kPrecision = StoragePrecision::kFp16;
  /// FP16's 65504 ceiling comfortably holds diagonally dominant LU panels;
  /// no scaling needed (the paper's configuration).
  static constexpr bool kNeedsTileScale = false;
  static constexpr float maxFinite() { return hplmxp::half16::maxFinite(); }
  static constexpr float epsilonUnit() {
    return hplmxp::half16::epsilonUnit();
  }
};

template <>
struct StorageTraits<bfloat16> {
  static constexpr StoragePrecision kPrecision = StoragePrecision::kBf16;
  static constexpr bool kNeedsTileScale = false;  // float's full range
  static constexpr float maxFinite() { return bfloat16::maxFinite(); }
  static constexpr float epsilonUnit() { return bfloat16::epsilonUnit(); }
};

template <>
struct StorageTraits<fp8e4m3> {
  static constexpr StoragePrecision kPrecision = StoragePrecision::kFp8E4M3;
  /// 448 saturates under the +N diagonal shift: per-tile scaling required.
  static constexpr bool kNeedsTileScale = true;
  static constexpr float maxFinite() { return fp8e4m3::maxFinite(); }
  static constexpr float epsilonUnit() { return fp8e4m3::epsilonUnit(); }
};

template <>
struct StorageTraits<fp8e5m2> {
  static constexpr StoragePrecision kPrecision = StoragePrecision::kFp8E5M2;
  static constexpr bool kNeedsTileScale = true;
  static constexpr float maxFinite() { return fp8e5m2::maxFinite(); }
  static constexpr float epsilonUnit() { return fp8e5m2::epsilonUnit(); }
};

}  // namespace hplmxp::lowp
