// The storage-precision ladder of the mixed-precision algorithm family.
//
// HPL-MxP (Dongarra & Luszczek 2025) defines the benchmark over a *family*
// of algorithms: any storage precision for the LU panels is legal as long
// as iterative refinement recovers FP64 accuracy. This module names the
// rungs this reproduction implements — binary16 (the paper's format),
// bfloat16, and the OCP FP8 pair — and the metadata the controller,
// performance model, and serve cache key need to reason about them.
//
// Rung order is by unit roundoff (ascending accuracy, descending cost
// savings): fp8e5m2 (u = 2^-3) -> fp8e4m3 (2^-4) -> bf16 (2^-8) ->
// fp16 (2^-11). "Falling up the ladder" moves toward fp16.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace hplmxp::lowp {

enum class StoragePrecision {
  kFp16,     // IEEE binary16: 5 exp, 10 mant (the paper's format)
  kBf16,     // bfloat16: 8 exp, 7 mant — float32's upper half
  kFp8E4M3,  // OCP FP8 e4m3: 4 exp, 3 mant, finite-only (NaN, no Inf)
  kFp8E5M2,  // OCP FP8 e5m2: 5 exp, 2 mant, IEEE-style Inf/NaN
};

/// Static description of one storage format.
struct PrecisionSpec {
  StoragePrecision precision = StoragePrecision::kFp16;
  const char* name = "fp16";
  int storageBits = 16;
  float maxFinite = 0.0f;
  float unitRoundoff = 0.0f;  // 2^-(mant bits + 1)
  /// FP8 formats need a per-tile FP32 scale so LU panels (whose U entries
  /// grow with the diagonal shift) don't saturate the tiny dynamic range.
  bool needsTileScale = false;
  /// Mixed-GEMM peak-rate multiplier relative to the FP16 rung, for the
  /// performance model (tensor-core FP8 doubles FP16 throughput; BF16
  /// matches FP16 on every accelerator the paper targets).
  double gemmPeakFactor = 1.0;
};

/// Spec lookup; total over the enum.
[[nodiscard]] const PrecisionSpec& spec(StoragePrecision p);

[[nodiscard]] const char* toString(StoragePrecision p);

/// Parses "fp16" / "bf16" / "fp8e4m3" / "fp8e5m2"; throws CheckError on
/// anything else.
[[nodiscard]] StoragePrecision precisionFromString(const std::string& s);

/// The next rung up the accuracy ladder (toward fp16), or nullopt at the
/// top. Escalation on IR divergence climbs this chain.
[[nodiscard]] std::optional<StoragePrecision> nextRungUp(StoragePrecision p);

/// All rungs, ladder-ordered from cheapest (fp8e5m2) to most accurate
/// (fp16) — the sweep order of the proof harness and the bench.
[[nodiscard]] const std::vector<StoragePrecision>& ladderRungs();

}  // namespace hplmxp::lowp
