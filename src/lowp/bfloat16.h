// Software bfloat16 storage type.
//
// bfloat16 is the upper half of IEEE binary32: 1 sign, 8 exponent, 7
// mantissa bits. It keeps float's full exponent range (no panel entry can
// overflow that FP16 would have held) at the cost of a much coarser unit
// roundoff (2^-8 vs binary16's 2^-11) — which is exactly the trade the
// precision ladder explores: a BF16-stored LU converges more slowly under
// iterative refinement than FP16 but never needs range management.
//
// Conversion semantics mirror fp16/half.h: float -> bf16 rounds to nearest,
// ties to even (including subnormals, which are just float subnormals with
// a truncated mantissa); bf16 -> float is the exact widening (bits << 16);
// NaNs canonicalize to the quiet NaN with the sign preserved.
#pragma once

#include <cstdint>

namespace hplmxp::lowp {

class bfloat16 {
 public:
  bfloat16() = default;

  /// Rounds a float to bfloat16 (round-to-nearest-even).
  explicit bfloat16(float f) : bits_(fromFloat(f)) {}

  /// Widens to float; exact for every bfloat16 value.
  [[nodiscard]] float toFloat() const { return toFloatBits(bits_); }
  explicit operator float() const { return toFloat(); }

  [[nodiscard]] std::uint16_t bits() const { return bits_; }

  static bfloat16 fromBits(std::uint16_t bits) {
    bfloat16 v;
    v.bits_ = bits;
    return v;
  }

  [[nodiscard]] bool isNan() const {
    return (bits_ & 0x7F80u) == 0x7F80u && (bits_ & 0x007Fu) != 0;
  }
  [[nodiscard]] bool isInf() const { return (bits_ & 0x7FFFu) == 0x7F80u; }

  /// Largest finite bfloat16 value (0x7F7F): 2^127 * (1 + 127/128).
  static constexpr float maxFinite() { return 3.3895313892515355e+38f; }
  /// Smallest positive normal value (2^-126, same as float).
  static constexpr float minNormal() { return 1.1754943508222875e-38f; }
  /// Unit roundoff (2^-8).
  static constexpr float epsilonUnit() { return 3.90625e-03f; }

  friend bool operator==(bfloat16 a, bfloat16 b) {
    return a.toFloat() == b.toFloat();  // IEEE: NaN != NaN, +0 == -0
  }

  /// Round-to-nearest-even conversion.
  static std::uint16_t fromFloat(float f);
  /// Exact widening of bfloat16 bits to float.
  static float toFloatBits(std::uint16_t b);

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(bfloat16) == 2);

inline bfloat16 operator+(bfloat16 a, bfloat16 b) {
  return bfloat16(a.toFloat() + b.toFloat());
}
inline bfloat16 operator-(bfloat16 a, bfloat16 b) {
  return bfloat16(a.toFloat() - b.toFloat());
}
inline bfloat16 operator*(bfloat16 a, bfloat16 b) {
  return bfloat16(a.toFloat() * b.toFloat());
}
inline bfloat16 operator/(bfloat16 a, bfloat16 b) {
  return bfloat16(a.toFloat() / b.toFloat());
}

}  // namespace hplmxp::lowp
