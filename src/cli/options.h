// Command-line and config-file option handling for the hplmxp driver.
//
// Options come from three layers, later layers overriding earlier ones:
//   1. built-in defaults,
//   2. a config file of "key value" lines (the spiritual successor of
//      HPL.dat; '#' starts a comment),
//   3. --key=value / --key value / --flag command-line arguments.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/common.h"

namespace hplmxp::cli {

/// Parsed option bag: string keys to string values ("" for bare flags).
class Options {
 public:
  /// Parses argv-style arguments after the subcommand. Accepts
  /// "--key=value", "--key value" (when the next token is not another
  /// option), and bare "--flag". Positional arguments are collected in
  /// order. Throws CheckError on malformed input.
  static Options parseArgs(const std::vector<std::string>& args);

  /// Parses a config file ("key value" lines; '#' comments; blank lines
  /// ignored). Throws CheckError if unreadable.
  static Options parseFile(const std::string& path);

  /// Overlays `other` on top of this (other wins).
  void merge(const Options& other);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults. Throw CheckError on malformed values.
  [[nodiscard]] std::string getString(const std::string& key,
                                      const std::string& fallback) const;
  [[nodiscard]] index_t getInt(const std::string& key,
                               index_t fallback) const;
  [[nodiscard]] double getDouble(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] bool getBool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Keys that were set but never read — typo detection for the driver.
  [[nodiscard]] std::vector<std::string> unusedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace hplmxp::cli
