#include "cli/options.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hplmxp::cli {

namespace {
bool looksLikeOption(const std::string& s) {
  return s.size() >= 3 && s[0] == '-' && s[1] == '-';
}
}  // namespace

Options Options::parseArgs(const std::vector<std::string>& args) {
  Options out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!looksLikeOption(arg)) {
      out.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string key = body.substr(0, eq);
      HPLMXP_REQUIRE(!key.empty(), "empty option name");
      out.values_[key] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token exists and is not an option;
    // otherwise a bare flag.
    if (i + 1 < args.size() && !looksLikeOption(args[i + 1])) {
      out.values_[body] = args[i + 1];
      ++i;
    } else {
      out.values_[body] = "";
    }
  }
  return out;
}

Options Options::parseFile(const std::string& path) {
  std::ifstream in(path);
  HPLMXP_REQUIRE(in.good(), "cannot open config file");
  Options out;
  std::string line;
  index_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ss(line);
    std::string key, value;
    if (!(ss >> key)) {
      continue;  // blank line
    }
    if (!(ss >> value)) {
      value = "";  // flag-style entry
    }
    std::string extra;
    HPLMXP_REQUIRE(!(ss >> extra),
                   "config line has trailing tokens (one key value per "
                   "line)");
    out.values_[key] = value;
  }
  return out;
}

void Options::merge(const Options& other) {
  for (const auto& [k, v] : other.values_) {
    values_[k] = v;
  }
  for (const auto& p : other.positional_) {
    positional_.push_back(p);
  }
}

bool Options::has(const std::string& key) const {
  const auto it = values_.find(key);
  if (it != values_.end()) {
    touched_[key] = true;
    return true;
  }
  return false;
}

std::string Options::getString(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  touched_[key] = true;
  return it->second;
}

index_t Options::getInt(const std::string& key, index_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  touched_[key] = true;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  HPLMXP_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
                 "option is not an integer");
  return static_cast<index_t>(v);
}

double Options::getDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  touched_[key] = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  HPLMXP_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
                 "option is not a number");
  return v;
}

bool Options::getBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  touched_[key] = true;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") {
    return false;
  }
  throw CheckError("option is not a boolean: " + key + "=" + v);
}

std::vector<std::string> Options::unusedKeys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    (void)v;
    if (touched_.find(k) == touched_.end()) {
      out.push_back(k);
    }
  }
  return out;
}

}  // namespace hplmxp::cli
