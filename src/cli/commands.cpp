#include "cli/commands.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include <fstream>
#include <iostream>

#include "blas/scan.h"
#include "core/hpl_dist.h"
#include "fleetsim/debug_cli.h"
#include "fleetsim/fleet_sim.h"
#include "core/hplai.h"
#include "core/precision_ladder.h"
#include "core/single_solver.h"
#include "core/verify.h"
#include "serve/engine.h"
#include "serve/fleet/fleet.h"
#include "serve/trace_io.h"
#include "device/shim.h"
#include "machine/variability.h"
#include "perfmodel/param_search.h"
#include "scalesim/scale_sim.h"
#include "simmpi/faults.h"
#include "simmpi/runtime.h"
#include "trace/progress.h"
#include "trace/reference.h"
#include "trace/slow_node.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/timer.h"

namespace hplmxp::cli {

namespace {

/// Layers config file (--config) under the command-line options and
/// applies the global --verbose / --quiet switches.
Options layered(const Options& cmdline) {
  Options merged = cmdline;
  if (cmdline.has("config")) {
    merged = Options::parseFile(cmdline.getString("config", ""));
    merged.merge(cmdline);
  }
  if (merged.getBool("verbose", false)) {
    Log::setLevel(LogLevel::kInfo);
  } else if (merged.getBool("quiet", false)) {
    Log::setLevel(LogLevel::kError);
  }
  return merged;
}

void warnUnused(const Options& opts) {
  for (const std::string& key : opts.unusedKeys()) {
    std::fprintf(stderr, "warning: unused option --%s\n", key.c_str());
  }
}

MachineKind machineFrom(const Options& opts) {
  const std::string name = opts.getString("machine", "frontier");
  if (name == "summit") {
    return MachineKind::kSummit;
  }
  HPLMXP_REQUIRE(name == "frontier", "machine must be summit or frontier");
  return MachineKind::kFrontier;
}

}  // namespace

int cmdRun(const Options& raw) {
  const Options opts = layered(raw);
  HplaiConfig cfg;
  cfg.n = opts.getInt("n", 512);
  cfg.b = opts.getInt("b", 64);
  cfg.pr = opts.getInt("pr", 2);
  cfg.pc = opts.getInt("pc", 2);
  cfg.seed = static_cast<std::uint64_t>(opts.getInt("seed", 42));
  cfg.panelBcast =
      simmpi::bcastStrategyFromString(opts.getString("bcast", "ring2m"));
  cfg.lookahead = opts.getBool("lookahead", true);
  cfg.scheduler = schedulerFromString(opts.getString("scheduler", "bulk"));
  cfg.collectTrace = opts.getBool("trace", false);
  cfg.refiner = opts.getString("refiner", "ir") == "gmres"
                    ? HplaiConfig::Refiner::kGmres
                    : HplaiConfig::Refiner::kClassicIr;
  cfg.vendor =
      opts.getString("vendor", "amd") == "nvidia" ? Vendor::kNvidia
                                                  : Vendor::kAmd;
  const bool warmup = opts.getBool("warmup", false);
  const std::string saveReference = opts.getString("save-reference", "");
  const std::string reference = opts.getString("reference", "");
  if (!saveReference.empty()) {
    cfg.collectTrace = true;  // the reference IS the recorded trace
  }
  if (!reference.empty()) {
    // Monitor this run against the recorded healthy run and terminate it
    // early if it falls behind (Sec. VI-B).
    auto monitor = std::make_shared<ProgressMonitor>(
        ProgressPolicy{.slowdownFactor = opts.getDouble("slowdown", 3.0),
                       .strikes = opts.getInt("strikes", 3)},
        referenceFromTrace(loadReferenceTrace(reference)));
    cfg.progressCallback = [monitor](index_t k, double seconds) {
      return monitor->observe(k, seconds) == ProgressVerdict::kTerminate;
    };
  }
  warnUnused(opts);

  // Sec. III-C: adjust N to a multiple of Pr, Pc and B.
  const index_t adjusted = adjustProblemSize(cfg.n, cfg.b, cfg.pr, cfg.pc);
  if (adjusted != cfg.n) {
    std::printf("adjusting N: %lld -> %lld (multiple of B*lcm(Pr,Pc))\n",
                (long long)cfg.n, (long long)adjusted);
    cfg.n = adjusted;
  }

  if (warmup) {
    // Finding 10: run the mini-benchmark first to warm caches/clocks.
    const double rate = runMiniBenchmark(std::min<index_t>(cfg.n, 256),
                                         std::min<index_t>(cfg.b, 64),
                                         cfg.vendor, cfg.seed);
    std::printf("warm-up mini-benchmark: %.2f GFLOP/s\n", rate / 1e9);
  }

  std::printf("hplmxp run: N=%lld B=%lld grid=%lldx%lld bcast=%s "
              "refiner=%s scheduler=%s\n",
              (long long)cfg.n, (long long)cfg.b, (long long)cfg.pr,
              (long long)cfg.pc, simmpi::toString(cfg.panelBcast).c_str(),
              cfg.refiner == HplaiConfig::Refiner::kGmres ? "gmres" : "ir",
              toString(cfg.scheduler));

  std::vector<double> x;
  const HplaiResult r = runHplai(cfg, &x);
  if (r.aborted) {
    std::printf("RUN ABORTED by the progress monitor after %.3f s — the "
                "run fell behind the recorded reference.\n",
                r.factorSeconds);
    return 3;
  }
  const ProblemGenerator gen(cfg.seed, cfg.n);
  const bool valid = hplaiValid(gen, x);
  if (!saveReference.empty()) {
    saveReferenceTrace(saveReference, r.trace);
    std::printf("saved per-iteration reference trace to %s (%zu steps)\n",
                saveReference.c_str(), r.trace.size());
  }

  Table t({"metric", "value"});
  t.addRow({"factor seconds", Table::num(r.factorSeconds, 4)});
  t.addRow({"refine seconds", Table::num(r.irSeconds, 4)});
  t.addRow({"GFLOP/s (HPL-AI convention)", Table::num(r.gflopsTotal(), 2)});
  t.addRow({"refinement iterations", Table::num((long long)r.irIterations)});
  t.addRow({"residual", Table::sci(r.residualInf)});
  t.addRow({"threshold", Table::sci(r.threshold)});
  t.addRow({"converged", r.converged ? "yes" : "NO"});
  t.addRow({"verified (dense FP64)", valid ? "yes" : "NO"});
  t.print();

  if (!r.trace.empty()) {
    // Fig. 10-style progress report from the recorded per-iteration data.
    std::printf("\nper-iteration breakdown (rank 0):\n");
    const ProgressMonitor reporter(ProgressPolicy{}, nullptr);
    const std::size_t step = std::max<std::size_t>(1, r.trace.size() / 12);
    for (std::size_t k = 0; k < r.trace.size(); k += step) {
      std::printf("%s\n", reporter.reportLine(r.trace[k]).c_str());
    }
  }
  return r.converged && valid ? 0 : 1;
}

int cmdHpl(const Options& raw) {
  const Options opts = layered(raw);
  HplDistConfig cfg;
  cfg.n = opts.getInt("n", 384);
  cfg.b = opts.getInt("b", 32);
  cfg.pr = opts.getInt("pr", 2);
  cfg.pc = opts.getInt("pc", 2);
  cfg.seed = static_cast<std::uint64_t>(opts.getInt("seed", 42));
  cfg.diagShift = opts.getDouble("diag-shift", -1.0);
  cfg.panelBcast =
      simmpi::bcastStrategyFromString(opts.getString("bcast", "bcast"));
  warnUnused(opts);

  std::printf("hplmxp hpl (FP64, pivoted): N=%lld B=%lld grid=%lldx%lld\n",
              (long long)cfg.n, (long long)cfg.b, (long long)cfg.pr,
              (long long)cfg.pc);
  const HplDistResult r = runHplDist(cfg);
  Table t({"metric", "value"});
  t.addRow({"factor seconds", Table::num(r.factorSeconds, 4)});
  t.addRow({"solve seconds", Table::num(r.solveSeconds, 4)});
  t.addRow({"GFLOP/s (HPL convention)", Table::num(r.gflops(), 2)});
  t.addRow({"row interchanges", Table::num((long long)r.rowSwaps)});
  t.addRow({"scaled residual", Table::num(r.scaledResidual, 4)});
  t.addRow({"passes (< 16)", r.passed() ? "yes" : "NO"});
  t.print();
  return r.passed() ? 0 : 1;
}

int cmdProject(const Options& raw) {
  const Options opts = layered(raw);
  ScaleSimConfig cfg;
  cfg.machine = machineFrom(opts);
  const bool summit = cfg.machine == MachineKind::kSummit;
  cfg.nl = opts.getInt("nl", summit ? 61440 : 119808);
  cfg.b = opts.getInt("b", summit ? 768 : 3072);
  cfg.pr = opts.getInt("pr", summit ? 162 : 172);
  cfg.pc = opts.getInt("pc", cfg.pr);
  cfg.qr = opts.getInt("qr", summit ? 3 : 4);
  cfg.qc = opts.getInt("qc", 2);
  cfg.gridOrder = opts.getBool("col-major", false)
                      ? GridOrder::kColumnMajor
                      : GridOrder::kNodeLocal;
  cfg.strategy = simmpi::bcastStrategyFromString(
      opts.getString("bcast", summit ? "bcast" : "ring2m"));
  cfg.lookahead = opts.getBool("lookahead", true);
  cfg.portBinding = opts.getBool("port-binding", true);
  cfg.gpuAwareMpi = opts.getBool("gpu-aware", true);
  cfg.slowestGcdMultiplier = opts.getDouble("slowest-gcd", 0.97);
  warnUnused(opts);

  const ScaleSimResult r = simulateRun(cfg);
  Table t({"metric", "value"});
  t.addRow({"machine", toString(cfg.machine)});
  t.addRow({"N", Table::num((long long)r.n)});
  t.addRow({"GCDs", Table::num((long long)r.ranks)});
  t.addRow({"factor seconds", Table::num(r.factorSeconds, 1)});
  t.addRow({"refine seconds", Table::num(r.irSeconds, 1)});
  t.addRow({"EFLOPS", Table::num(r.exaflops, 3)});
  t.addRow({"TF per GCD", Table::num(r.ratePerGcd / 1e12, 2)});
  t.addRow({"comm-bound iterations",
            Table::num(r.commBoundFraction * 100.0, 1) + "%"});
  t.print();
  return 0;
}

int cmdTune(const Options& raw) {
  const Options opts = layered(raw);
  const MachineKind kind = machineFrom(opts);
  const bool summit = kind == MachineKind::kSummit;
  const index_t pr = opts.getInt("pr", summit ? 54 : 32);
  const index_t nl = opts.getInt("nl", summit ? 61440 : 119808);
  const double nbb = opts.getDouble("nbb", summit ? 4e9 : 8e9);
  warnUnused(opts);

  const KernelModel kernels(kind);
  ModelInput in{.n = nl * pr, .b = 0, .pr = pr, .pc = pr, .nbb = nbb};
  const BSearchResult r = searchBlockSize(kernels, in);
  Table t({"B", "Eq.3 GF/GCD", "GETRF/GEMM", "admissible"});
  for (const BSearchEntry& e : r.entries) {
    t.addRow({Table::num((long long)e.b), Table::num(e.ratePerGcd / 1e9, 0),
              Table::num(e.getrfOverGemm * 100.0, 1) + "%",
              e.admissible ? "yes" : "no"});
  }
  t.print();
  std::printf("selected B (paper heuristic): %lld\n", (long long)r.bestB);

  if (!summit) {
    const auto nls =
        searchLocalSize(kernels, r.bestB, pr, pr, nbb,
                        {116736, 119808, 122880});
    Table nt({"N_L", "GEMM rate (TF)", "projected GF/GCD", "LDA pathology"});
    for (const auto& e : nls) {
      nt.addRow({Table::num((long long)e.nl),
                 Table::num(e.gemmRateAtScale / 1e12, 1),
                 Table::num(e.ratePerGcd / 1e9, 0),
                 isPathologicalLda(e.nl) ? "yes" : "no"});
    }
    nt.print();
  }
  return 0;
}

int cmdScan(const Options& raw) {
  const Options opts = layered(raw);
  const index_t fleet = opts.getInt("fleet", 512);
  const double degraded = opts.getDouble("degraded", 0.01);
  const index_t n = opts.getInt("n", 256);
  const index_t b = opts.getInt("b", 64);
  warnUnused(opts);

  const double nominal = runMiniBenchmark(n, b, Vendor::kAmd);
  const GcdVariability model(VariabilityConfig{.seed = 0xF1EE7,
                                               .spread = 0.05,
                                               .slowFraction = degraded,
                                               .slowPenalty = 0.25});
  std::vector<double> rates;
  for (index_t i = 0; i < fleet; ++i) {
    rates.push_back(nominal * model.multiplier(i));
  }
  const ScanReport report = SlowNodeScanner().scan(rates);
  report.toTable().print();
  std::printf("pipeline pace gain after exclusion: %.1f%%\n",
              (report.keptMinRate / report.min - 1.0) * 100.0);
  return 0;
}

/// `hplmxp chaos --scenario ladder`: adversarial *conditioning* instead of
/// adversarial communication. Sweeps a matrix of conditioning regimes —
/// from the benchmark default down to barely-factorable — through the
/// adaptive precision controller and reports, per regime, the probe, the
/// rung trajectory, and the refinement outcome. A regime is contained
/// when the ladder delivers a converged HPL-AI-valid residual, whatever
/// rung or refiner it had to fall up to.
int runLadderChaos(const Options& opts) {
  const index_t n = opts.getInt("n", 256);
  const index_t b = opts.getInt("b", 32);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.getInt("seed", 42));
  const Vendor vendor = opts.getString("vendor", "amd") == "nvidia"
                            ? Vendor::kNvidia
                            : Vendor::kAmd;
  LadderPolicy policy;
  policy.maxIrIterationsPerRung = opts.getInt("max-ir", 25);
  policy.allowGmres = opts.getBool("gmres", true);
  policy.gmresRestart = opts.getInt("gmres-restart", 30);
  policy.gmresMaxOuter = opts.getInt("gmres-outer", 8);
  const std::string precision = opts.getString("precision", "auto");
  if (precision != "auto") {
    policy.forcedStart = lowp::precisionFromString(precision);
  }
  warnUnused(opts);
  HPLMXP_REQUIRE(n > 0 && b > 0 && n % b == 0,
                 "ladder scenario needs N a positive multiple of B");

  // The conditioning matrix: named regimes spanning the measured rung
  // cliffs (diagShift < 0 is the benchmark's +N dominant default).
  struct Regime {
    const char* name;
    double diagShift;
  };
  const Regime regimes[] = {
      {"dominant", -1.0},          // benchmark default: FP8 territory
      {"weak", 8.0},               // all rungs converge, slowly
      {"cliff", 4.0},              // FP8 diverges, bf16 slow, fp16 fine
      {"hostile", 3.0},            // fp16 IR diverges, GMRES-IR rescues
      {"extreme", 2.0},            // straight to the GMRES-IR path
  };

  std::printf("hplmxp chaos: scenario=ladder N=%lld B=%lld seed=%llu "
              "precision=%s\n",
              (long long)n, (long long)b, (unsigned long long)seed,
              precision.c_str());

  Table t({"regime", "dominance", "start", "final", "esc", "refiner",
           "iters", "converged", "residual/threshold"});
  bool allContained = true;
  for (const Regime& regime : regimes) {
    const ProblemGenerator gen(seed, n, regime.diagShift);
    const LadderResult r = solveLadderSingle(gen, b, vendor, policy);
    const RungAttempt* last =
        r.attempts.empty() ? nullptr : &r.attempts.back();
    index_t iters = 0;
    for (const RungAttempt& a : r.attempts) {
      iters += a.irIterations;
    }
    const double scaled =
        r.threshold > 0.0 ? r.residualInf / r.threshold : 0.0;
    t.addRow({regime.name, Table::num(r.probe.minDominance, 4),
              lowp::toString(r.startRung), lowp::toString(r.finalRung),
              Table::num((long long)r.escalations),
              last ? toString(last->refiner) : "-",
              Table::num((long long)iters), r.converged ? "yes" : "NO",
              Table::num(scaled, 3)});
    allContained = allContained && r.converged;
  }
  t.print();
  std::printf("ladder containment: %s\n",
              allContained ? "all regimes converged"
                           : "UNCONTAINED regime (no rung converged)");
  return allContained ? 0 : 1;
}

int cmdChaos(const Options& raw) {
  const Options opts = layered(raw);
  if (opts.getString("scenario", "transient") == "ladder") {
    return runLadderChaos(opts);
  }
  HplaiConfig cfg;
  cfg.n = opts.getInt("n", 256);
  cfg.b = opts.getInt("b", 32);
  cfg.pr = opts.getInt("pr", 2);
  cfg.pc = opts.getInt("pc", 2);
  cfg.seed = static_cast<std::uint64_t>(opts.getInt("seed", 42));
  cfg.panelBcast =
      simmpi::bcastStrategyFromString(opts.getString("bcast", "bcast"));
  cfg.lookahead = opts.getBool("lookahead", false);
  cfg.scheduler = schedulerFromString(opts.getString("scheduler", "bulk"));
  cfg.refiner = opts.getString("refiner", "ir") == "gmres"
                    ? HplaiConfig::Refiner::kGmres
                    : HplaiConfig::Refiner::kClassicIr;
  cfg.guardPanels = opts.getBool("guard", true);
  cfg.irDivergenceStrikes = opts.getInt("ir-strikes", 4);
  // Recovery/ABFT knobs (the recovery.* / abft.* conf keys). Off by
  // default: chaos is the observe-the-failure command; `hplmxp recover`
  // turns them all on.
  cfg.recovery.enabled = opts.getBool("recovery.enabled", false);
  cfg.recovery.checkpointEveryK = opts.getInt("recovery.every-k", 8);
  cfg.recovery.maxResurrections =
      opts.getInt("recovery.max-resurrections", 8);
  cfg.recovery.compressCheckpoints = opts.getBool("recovery.compress", true);
  cfg.recovery.verifyCheckpoints = opts.getBool("recovery.verify", true);
  cfg.abftPanels = opts.getBool("abft.panels", false);
  cfg.abftGemm = opts.getBool("abft.gemm", false);
  if (cfg.recovery.enabled || cfg.abftPanels || cfg.abftGemm) {
    cfg.recoveryStats = std::make_shared<simmpi::RecoveryStats>();
  }
  cfg.n = adjustProblemSize(cfg.n, cfg.b, cfg.pr, cfg.pc);

  const std::string scenario = opts.getString("scenario", "transient");
  const std::uint64_t faultSeed =
      static_cast<std::uint64_t>(opts.getInt("fault-seed", 0xC4A05));
  simmpi::RunOptions runOpts;
  runOpts.timeout =
      std::chrono::milliseconds(opts.getInt("timeout-ms", 2000));
  runOpts.sendMaxRetries = static_cast<int>(opts.getInt("retries", 5));
  runOpts.sendBackoff =
      std::chrono::microseconds(opts.getInt("backoff-us", 50));
  runOpts.replayLog = cfg.recovery.enabled;
  const bool detectSlow =
      opts.getBool("detect-slow", cfg.worldSize() > 1);
  warnUnused(opts);

  const simmpi::FaultConfig fault =
      simmpi::faultScenario(scenario, faultSeed, cfg.worldSize());
  if (fault.anyEnabled()) {
    runOpts.faults =
        std::make_shared<simmpi::FaultInjector>(fault, cfg.worldSize());
  }

  // Mid-run slow-rank detection: evaluated on rank 0 against the per-rank
  // barrier waits DistLU gathers each step.
  auto slowMonitor = std::make_shared<SlowRankMonitor>(
      cfg.worldSize(),
      SlowRankPolicy{.minLagSeconds = opts.getDouble("min-lag", 0.002),
                     .medianFactor = 4.0,
                     .strikes = opts.getInt("slow-strikes", 3)});
  if (detectSlow) {
    cfg.rankProgressCallback = [slowMonitor](
                                   index_t k,
                                   const std::vector<double>& waits) {
      return slowMonitor->observe(k, waits);
    };
  }

  std::printf("hplmxp chaos: scenario=%s N=%lld B=%lld grid=%lldx%lld "
              "guard=%s timeout=%lldms\n",
              scenario.c_str(), (long long)cfg.n, (long long)cfg.b,
              (long long)cfg.pr, (long long)cfg.pc,
              cfg.guardPanels ? "on" : "off",
              (long long)runOpts.timeout.count());

  // Run the distributed solve under the fault plan, catching the whole
  // failure picture: a contained fault (detected, self-healed, or cleanly
  // aggregated) is a chaos-harness success.
  HplaiResult result;
  std::vector<double> x;
  bool completed = false;
  std::string outcome = "completed";
  std::vector<std::string> failureLines;
  Timer wall;
  try {
    simmpi::run(
        cfg.worldSize(),
        [&](simmpi::Comm& world) {
          std::vector<double> local;
          HplaiResult r = runHplaiOnComm(world, cfg, &local);
          if (world.rank() == 0) {
            result = std::move(r);
            x = std::move(local);
          }
        },
        runOpts);
    completed = true;
  } catch (const simmpi::MultiRankError& e) {
    outcome = e.partitioned() ? "network partition (aggregated timeouts)"
                              : "multi-rank failure (aggregated)";
    if (e.partitioned()) {
      failureLines.push_back(
          "partition at rank boundary " +
          std::to_string(e.partitionBoundary()) + " dropped " +
          std::to_string(e.partitionDrops()) + " sends");
    }
    for (const simmpi::RankFailure& f : e.failures()) {
      failureLines.push_back("rank " + std::to_string(f.rank) + ": " +
                             f.message);
    }
  } catch (const blas::AbnormalValueError& e) {
    outcome = "corruption detected (fail-fast guard)";
    failureLines.push_back(e.what());
  } catch (const simmpi::CommError& e) {
    outcome = "communication failure (structured)";
    failureLines.push_back(e.what());
  } catch (const CheckError& e) {
    outcome = "rank failure (structured)";
    failureLines.push_back(e.what());
  }
  const double elapsed = wall.seconds();

  bool verified = false;
  if (completed && !result.aborted && result.converged) {
    const ProblemGenerator gen(cfg.seed, cfg.n);
    verified = hplaiValid(gen, x);
  }
  if (completed && result.aborted) {
    outcome = "terminated early (slow-rank monitor)";
  } else if (completed && result.fellBackToGmres) {
    outcome = "self-healed (IR diverged, fell back to GMRES)";
  } else if (completed && !result.converged) {
    outcome = "completed WITHOUT convergence";
  }

  const simmpi::FaultStats stats =
      runOpts.faults ? runOpts.faults->stats() : simmpi::FaultStats{};
  Table t({"metric", "value"});
  t.addRow({"scenario", scenario});
  t.addRow({"outcome", outcome});
  t.addRow({"wall seconds", Table::num(elapsed, 3)});
  t.addRow({"injected delays", Table::num((long long)stats.delays)});
  t.addRow({"injected stalls", Table::num((long long)stats.stalls)});
  t.addRow({"transient send failures",
            Table::num((long long)stats.transientFailures)});
  t.addRow({"send retries", Table::num((long long)stats.retries)});
  t.addRow({"payload bit flips", Table::num((long long)stats.bitflips)});
  t.addRow({"rank crashes", Table::num((long long)stats.crashes)});
  t.addRow({"partition-dropped sends",
            Table::num((long long)stats.partitionDrops)});
  t.addRow({"checkpoint corruptions",
            Table::num((long long)stats.checkpointCorruptions)});
  if (completed) {
    t.addRow({"converged", result.converged ? "yes" : "NO"});
    t.addRow({"verified (dense FP64)", verified ? "yes" : "NO"});
    t.addRow({"refinement iterations",
              Table::num((long long)result.irIterations)});
    t.addRow({"fell back to GMRES",
              result.fellBackToGmres ? "yes" : "no"});
  }
  if (detectSlow) {
    const std::vector<index_t> slow = slowMonitor->slowRanks();
    std::string who;
    for (index_t r : slow) {
      who += (who.empty() ? "" : " ") + std::to_string(r);
    }
    t.addRow({"slow ranks flagged", slow.empty() ? "none" : who});
  }
  if (cfg.recoveryStats) {
    const simmpi::RecoveryReport rec =
        simmpi::snapshotRecovery(*cfg.recoveryStats);
    t.addRow({"ranks resurrected", Table::num((long long)rec.resurrections)});
    t.addRow({"nested resurrections",
              Table::num((long long)rec.nestedResurrections)});
    t.addRow({"checkpoints taken", Table::num((long long)rec.checkpoints)});
    t.addRow({"checkpoint bytes raw / stored",
              Table::num((long long)rec.checkpointBytesCopied) + " / " +
                  Table::num((long long)rec.checkpointBytesStored)});
    t.addRow({"ckpt generations discarded",
              Table::num((long long)rec.generationsDiscarded)});
    t.addRow({"steps replayed", Table::num((long long)rec.stepsReplayed)});
    t.addRow({"ABFT flips corrected",
              Table::num((long long)rec.flipsCorrected) + " of " +
                  Table::num((long long)rec.flipsDetected) + " detected"});
  }
  t.print();
  if (!failureLines.empty()) {
    std::printf("\nfailure report:\n");
    for (const std::string& line : failureLines) {
      std::printf("  %s\n", line.c_str());
    }
  }

  // A chaos run succeeds when the fault was absorbed (converged + verified)
  // or contained: detected by a guard, self-healed, terminated early, or
  // surfaced as a structured aggregate instead of a hang.
  const bool contained =
      !completed || result.aborted || (result.converged && verified);
  return contained ? 0 : 1;
}

int cmdRecover(const Options& raw) {
  const Options opts = layered(raw);
  HplaiConfig cfg;
  cfg.n = opts.getInt("n", 192);
  cfg.b = opts.getInt("b", 16);
  cfg.pr = opts.getInt("pr", 2);
  cfg.pc = opts.getInt("pc", 2);
  cfg.seed = static_cast<std::uint64_t>(opts.getInt("seed", 7321));
  cfg.panelBcast =
      simmpi::bcastStrategyFromString(opts.getString("bcast", "bcast"));
  // Recovery requires deterministic step replay: bulk, no look-ahead.
  cfg.lookahead = false;
  cfg.scheduler = HplaiConfig::Scheduler::kBulk;
  cfg.n = adjustProblemSize(cfg.n, cfg.b, cfg.pr, cfg.pc);
  cfg.recovery.enabled = opts.getBool("recovery.enabled", true);
  cfg.recovery.checkpointEveryK = opts.getInt("recovery.every-k", 4);
  cfg.recovery.maxResurrections =
      opts.getInt("recovery.max-resurrections", 8);
  cfg.recovery.compressCheckpoints = opts.getBool("recovery.compress", true);
  cfg.recovery.verifyCheckpoints = opts.getBool("recovery.verify", true);
  cfg.abftPanels = opts.getBool("abft.panels", true);
  cfg.abftGemm = opts.getBool("abft.gemm", true);

  const index_t crashRank = opts.getInt("crash-rank", 1);
  const auto crashAtOp =
      static_cast<std::uint64_t>(opts.getInt("crash-at-op", 30));
  // Multi-fault knobs: a second concurrent crash on a distinct rank, a
  // crash arriving during replay, and an injected checkpoint corruption.
  const index_t crashRank2 = opts.getInt("crash-rank2", -1);
  const auto crashAtOp2 =
      static_cast<std::uint64_t>(opts.getInt("crash-at-op2", 0));
  const index_t replayCrashRank = opts.getInt("replay-crash-rank", -1);
  const auto replayCrashAtOp =
      static_cast<std::uint64_t>(opts.getInt("replay-crash-at-op", 0));
  const index_t corruptCkptRank = opts.getInt("corrupt-ckpt-rank", -1);
  const auto corruptCkptGen =
      static_cast<std::uint64_t>(opts.getInt("corrupt-ckpt-gen", 0));
  const double flipProbability = opts.getDouble("flip-probability", 0.0);
  const std::uint64_t faultSeed =
      static_cast<std::uint64_t>(opts.getInt("fault-seed", 0xC4A05));
  const std::string jsonPath = opts.getString("json", "");
  warnUnused(opts);

  std::string extras;
  if (crashRank2 >= 0) {
    extras += " + crash rank " + std::to_string((long long)crashRank2) +
              " at op " + std::to_string((unsigned long long)crashAtOp2);
  }
  if (replayCrashRank >= 0) {
    extras += " + replay-time crash on rank " +
              std::to_string((long long)replayCrashRank);
  }
  if (corruptCkptRank >= 0) {
    extras += " + checkpoint corruption on rank " +
              std::to_string((long long)corruptCkptRank);
  }
  if (flipProbability > 0.0) {
    extras += " + panel bit flips";
  }
  std::printf("hplmxp recover: N=%lld B=%lld grid=%lldx%lld every-k=%lld "
              "crash rank %lld at op %llu%s\n",
              (long long)cfg.n, (long long)cfg.b, (long long)cfg.pr,
              (long long)cfg.pc, (long long)cfg.recovery.checkpointEveryK,
              (long long)crashRank, (unsigned long long)crashAtOp,
              extras.c_str());

  // One run = one closure over runHplaiOnComm; rank 0's solution is the
  // artifact the bitwise comparison is about.
  struct RunOutput {
    HplaiResult result;
    std::vector<double> solution;
  };
  const auto runOnce = [](const HplaiConfig& config,
                          std::shared_ptr<simmpi::FaultInjector> faults) {
    RunOutput out;
    simmpi::RunOptions ropts;
    ropts.faults = std::move(faults);
    ropts.replayLog = config.recovery.enabled;
    simmpi::run(
        config.worldSize(),
        [&](simmpi::Comm& world) {
          std::vector<double> local;
          HplaiResult r = runHplaiOnComm(world, config, &local);
          if (world.rank() == 0) {
            out.result = std::move(r);
            out.solution = std::move(local);
          }
        },
        ropts);
    return out;
  };

  // Fault-free baseline: same problem, no injector, no recovery machinery
  // (the contract is that recovery reproduces THIS run bit for bit).
  HplaiConfig baseCfg = cfg;
  baseCfg.recovery.enabled = false;
  baseCfg.abftPanels = false;
  baseCfg.abftGemm = false;
  Timer baseTimer;
  const RunOutput baseline = runOnce(baseCfg, nullptr);
  const double baseSeconds = baseTimer.seconds();

  // Faulted run: scheduled crash (and optional in-flight panel flips)
  // under the full recovery stack.
  simmpi::FaultConfig fault;
  fault.seed = faultSeed;
  fault.crashRank = crashRank;
  fault.crashAtOp = crashAtOp;
  fault.crashRank2 = crashRank2;
  fault.crashAtOp2 = crashAtOp2;
  fault.replayCrashRank = replayCrashRank;
  fault.replayCrashAtOp = replayCrashAtOp;
  fault.ckptCorruptRank = corruptCkptRank;
  fault.ckptCorruptOrdinal = corruptCkptGen;
  if (flipProbability > 0.0) {
    fault.bitflipProbability = flipProbability;
    fault.bitflipMinBytes = 2048;  // target bulk panel traffic
  }
  auto injector = std::make_shared<simmpi::FaultInjector>(
      fault, cfg.worldSize());
  cfg.recoveryStats = std::make_shared<simmpi::RecoveryStats>();
  Timer recTimer;
  const RunOutput recovered = runOnce(cfg, injector);
  const double recSeconds = recTimer.seconds();

  bool bitwise = baseline.solution.size() == recovered.solution.size();
  std::size_t firstDiff = 0;
  if (bitwise && !baseline.solution.empty()) {
    const int diff = std::memcmp(
        baseline.solution.data(), recovered.solution.data(),
        sizeof(double) * baseline.solution.size());
    bitwise = diff == 0;
    if (!bitwise) {
      while (firstDiff < baseline.solution.size() &&
             std::memcmp(&baseline.solution[firstDiff],
                         &recovered.solution[firstDiff],
                         sizeof(double)) == 0) {
        ++firstDiff;
      }
    }
  }
  bitwise = bitwise &&
            baseline.result.residualInf == recovered.result.residualInf &&
            baseline.result.irIterations == recovered.result.irIterations;

  const simmpi::RecoveryReport rec =
      simmpi::snapshotRecovery(*cfg.recoveryStats);
  const simmpi::FaultStats stats = injector->stats();
  Table t({"metric", "value"});
  t.addRow({"baseline seconds", Table::num(baseSeconds, 3)});
  t.addRow({"recovered-run seconds", Table::num(recSeconds, 3)});
  t.addRow({"rank crashes injected", Table::num((long long)stats.crashes)});
  t.addRow({"payload bit flips injected",
            Table::num((long long)stats.bitflips)});
  t.addRow({"checkpoint corruptions injected",
            Table::num((long long)stats.checkpointCorruptions)});
  t.addRow({"ranks resurrected", Table::num((long long)rec.resurrections)});
  t.addRow({"nested resurrections",
            Table::num((long long)rec.nestedResurrections)});
  t.addRow({"checkpoints taken", Table::num((long long)rec.checkpoints)});
  t.addRow({"checkpoint bytes raw (delta)",
            Table::num((long long)rec.checkpointBytesCopied)});
  t.addRow({"checkpoint bytes stored",
            Table::num((long long)rec.checkpointBytesStored)});
  t.addRow({"delta compression ratio",
            rec.checkpointBytesStored > 0
                ? Table::num(static_cast<double>(rec.checkpointBytesCopied) /
                                 static_cast<double>(rec.checkpointBytesStored),
                             2) + "x"
                : "n/a"});
  t.addRow({"ckpt corruptions detected",
            Table::num((long long)rec.checkpointCorruptionsDetected)});
  t.addRow({"ckpt generations discarded",
            Table::num((long long)rec.generationsDiscarded)});
  t.addRow({"steps replayed", Table::num((long long)rec.stepsReplayed)});
  t.addRow({"recvs replayed from log",
            Table::num((long long)rec.recvsReplayed)});
  t.addRow({"sends suppressed", Table::num((long long)rec.sendsSuppressed)});
  t.addRow({"barriers skipped", Table::num((long long)rec.barriersSkipped)});
  t.addRow({"replay-log peak bytes",
            Table::num((long long)rec.replayLogPeakBytes)});
  t.addRow({"ABFT panel checks", Table::num((long long)rec.abftPanelChecks)});
  t.addRow({"ABFT GEMM carry checks",
            Table::num((long long)rec.abftGemmChecks)});
  t.addRow({"flips detected / corrected",
            Table::num((long long)rec.flipsDetected) + " / " +
                Table::num((long long)rec.flipsCorrected)});
  t.addRow({"converged", recovered.result.converged ? "yes" : "NO"});
  t.addRow({"bitwise identical to baseline", bitwise ? "YES" : "NO"});
  t.print();
  if (!bitwise && !baseline.solution.empty() &&
      baseline.solution.size() == recovered.solution.size() &&
      firstDiff < baseline.solution.size()) {
    std::printf("first divergence at x[%zu]: %.17g vs %.17g\n", firstDiff,
                baseline.solution[firstDiff],
                recovered.solution[firstDiff]);
  }

  if (!jsonPath.empty()) {
    std::ostringstream os;
    os.precision(17);
    os << "{\n";
    os << "  \"n\": " << cfg.n << ",\n";
    os << "  \"b\": " << cfg.b << ",\n";
    os << "  \"checkpoint_every_k\": " << cfg.recovery.checkpointEveryK
       << ",\n";
    os << "  \"crash_rank\": " << crashRank << ",\n";
    os << "  \"crash_at_op\": " << crashAtOp << ",\n";
    os << "  \"crash_rank2\": " << crashRank2 << ",\n";
    os << "  \"crash_at_op2\": " << crashAtOp2 << ",\n";
    os << "  \"crashes_injected\": " << stats.crashes << ",\n";
    os << "  \"bitflips_injected\": " << stats.bitflips << ",\n";
    os << "  \"checkpoint_corruptions_injected\": "
       << stats.checkpointCorruptions << ",\n";
    os << "  \"resurrections\": " << rec.resurrections << ",\n";
    os << "  \"nested_resurrections\": " << rec.nestedResurrections << ",\n";
    os << "  \"checkpoints\": " << rec.checkpoints << ",\n";
    os << "  \"checkpoint_bytes_raw\": " << rec.checkpointBytesCopied
       << ",\n";
    os << "  \"checkpoint_bytes_stored\": " << rec.checkpointBytesStored
       << ",\n";
    os << "  \"compression_ratio\": "
       << (rec.checkpointBytesStored > 0
               ? static_cast<double>(rec.checkpointBytesCopied) /
                     static_cast<double>(rec.checkpointBytesStored)
               : 0.0)
       << ",\n";
    os << "  \"checkpoint_corruptions_detected\": "
       << rec.checkpointCorruptionsDetected << ",\n";
    os << "  \"generations_discarded\": " << rec.generationsDiscarded
       << ",\n";
    os << "  \"steps_replayed\": " << rec.stepsReplayed << ",\n";
    os << "  \"recvs_replayed\": " << rec.recvsReplayed << ",\n";
    os << "  \"replay_log_peak_bytes\": " << rec.replayLogPeakBytes << ",\n";
    os << "  \"abft_panel_checks\": " << rec.abftPanelChecks << ",\n";
    os << "  \"abft_gemm_checks\": " << rec.abftGemmChecks << ",\n";
    os << "  \"flips_detected\": " << rec.flipsDetected << ",\n";
    os << "  \"flips_corrected\": " << rec.flipsCorrected << ",\n";
    os << "  \"baseline_seconds\": " << baseSeconds << ",\n";
    os << "  \"recovered_seconds\": " << recSeconds << ",\n";
    os << "  \"converged\": "
       << (recovered.result.converged ? "true" : "false") << ",\n";
    os << "  \"bitwise_identical\": " << (bitwise ? "true" : "false")
       << "\n";
    os << "}\n";
    serve::writeReportFile(jsonPath, os.str());
    std::printf("wrote %s\n", jsonPath.c_str());
  }
  return bitwise && recovered.result.converged ? 0 : 1;
}

int cmdServe(const Options& raw) {
  const Options opts = layered(raw);

  serve::ServeConfig scfg;
  scfg.cacheBytes =
      static_cast<std::size_t>(opts.getInt("serve.cache-mb", 64)) << 20;
  scfg.queueDepth = opts.getInt("serve.queue-depth", 64);
  scfg.maxBatch = opts.getInt("serve.batch", 8);
  scfg.maxBatchDelaySeconds =
      opts.getDouble("serve.batch-delay-us", 1000.0) * 1e-6;
  scfg.defaultDeadlineSeconds =
      opts.getDouble("serve.deadline-ms", 0.0) * 1e-3;
  scfg.workers = opts.getInt("serve.workers", 1);
  scfg.maxRetries = opts.getInt("serve.retries", 2);
  scfg.maxIrIterations = opts.getInt("max-ir", 50);
  scfg.vendor = opts.getString("vendor", "amd") == "nvidia" ? Vendor::kNvidia
                                                            : Vendor::kAmd;
  const std::string chaosName = opts.getString("serve.chaos", "none");
  if (chaosName != "none") {
    const auto chaosSeed =
        static_cast<std::uint64_t>(opts.getInt("serve.chaos-seed", 7));
    scfg.chaos = std::make_shared<simmpi::FaultInjector>(
        simmpi::faultScenario(chaosName, chaosSeed, scfg.workers),
        scfg.workers);
  }

  const std::string tracePath = opts.getString("trace", "");
  const serve::RequestTrace trace =
      tracePath.empty()
          ? serve::makeSyntheticTrace(
                opts.getInt("requests", 64), opts.getInt("keys", 4),
                opts.getDouble("gap-ms", 1.0), opts.getInt("n", 64),
                opts.getInt("b", 16),
                static_cast<std::uint64_t>(opts.getInt("seed", 42)))
          : serve::loadRequestTrace(tracePath);
  const double speedup = opts.getDouble("speedup", 1.0);
  HPLMXP_REQUIRE(speedup > 0.0, "--speedup must be positive");
  const std::string jsonPath = opts.getString("json", "BENCH_serve.json");
  const index_t verifyCount = opts.getInt("verify", 0);

  // Sharded fleet (--shards > 1): the same trace fans out over N
  // ServeEngines behind the consistent-hash router, each on its own
  // simmpi rank grid. The chaos schedule breaks/crashes/resurrects
  // shards at request indices so CI can replay through degradation.
  const index_t shards = opts.getInt("shards", 1);
  serve::FleetConfig fcfg;
  index_t breakAt = -1;
  index_t breakWho = 0;
  index_t crashAt = -1;
  index_t crashWho = 0;
  index_t resurrectAt = -1;
  index_t slowAt = -1;
  index_t slowWho = 0;
  double slowStretch = 5.0;
  if (shards > 1) {
    fcfg.shards = shards;
    fcfg.virtualNodes = opts.getInt("serve.shards.virtual-nodes", 64);
    fcfg.groupSize = opts.getInt("serve.shards.group-size", 2);
    fcfg.fleetCacheBytes = scfg.cacheBytes;  // fleet-wide, split per shard
    fcfg.hotKeyRequests = opts.getInt("serve.shards.hot-requests", 0);
    fcfg.hotReplicas = opts.getInt("serve.shards.hot-replicas", 2);
    fcfg.failoverLimit = opts.getInt("serve.shards.failover-limit", 2);
    fcfg.health.openSeconds =
        opts.getDouble("serve.shards.open-ms", 50.0) * 1e-3;
    fcfg.groupOptions.timeout = std::chrono::milliseconds(
        opts.getInt("serve.shards.timeout-ms", 5000));
    // Gray-failure defense: phi-accrual health monitor + hedged requests.
    fcfg.healthMonitor.enabled = opts.getBool("serve.shards.health", true);
    fcfg.healthMonitor.suspectPhi =
        opts.getDouble("serve.shards.suspect-phi", 1.0);
    fcfg.healthMonitor.quarantinePhi =
        opts.getDouble("serve.shards.quarantine-phi", 3.0);
    fcfg.healthMonitor.quarantineDwellSeconds =
        opts.getDouble("serve.shards.dwell-ms", 100.0) * 1e-3;
    fcfg.hedge.enabled = opts.getBool("hedge", false);
    fcfg.hedge.delayFactor = opts.getDouble("hedge-delay-factor", 1.5);
    fcfg.hedge.minDelaySeconds =
        opts.getDouble("hedge-delay-ms", 2.0) * 1e-3;
    fcfg.hedge.budgetPerSecond = opts.getDouble("hedge-budget", 20.0);
    fcfg.hedge.budgetBurst = opts.getDouble("hedge-burst", 8.0);
    breakAt = opts.getInt("break-at", -1);
    breakWho = opts.getInt("break-shard", 0);
    crashAt = opts.getInt("crash-at", -1);
    crashWho = opts.getInt("crash-shard", shards - 1);
    resurrectAt = opts.getInt("resurrect-at", -1);
    slowAt = opts.getInt("slow-at", -1);
    slowWho = opts.getInt("slow-shard", 0);
    slowStretch = opts.getDouble("slow-stretch", 5.0);
    HPLMXP_REQUIRE(breakWho >= 0 && breakWho < shards &&
                       crashWho >= 0 && crashWho < shards &&
                       slowWho >= 0 && slowWho < shards,
                   "--break-shard/--crash-shard/--slow-shard out of range");
  }
  warnUnused(opts);

  std::printf("hplmxp serve: trace=%s requests=%zu shards=%lld "
              "workers=%lld batch=%lld queue=%lld chaos=%s\n",
              trace.name.c_str(), trace.requests.size(),
              (long long)(shards > 1 ? shards : 1),
              (long long)scfg.workers, (long long)scfg.maxBatch,
              (long long)scfg.queueDepth, chaosName.c_str());

  const Vendor vendor = scfg.vendor;
  const index_t maxIr = scfg.maxIrIterations;

  // Bitwise spot-check: completed requests must match an independent
  // factor + single-RHS refinement of the same (key, rhs seed). Works on
  // both handle flavors (engine and fleet expose wait()/solution()).
  const auto verifyServed = [&](const auto& handles) -> int {
    if (verifyCount <= 0) {
      return 0;
    }
    index_t checked = 0;
    index_t mismatched = 0;
    for (const auto& [req, handle] : handles) {
      if (checked >= verifyCount) {
        break;
      }
      const serve::RequestOutcome& o = handle->wait();
      if (o.status != serve::RequestStatus::kCompleted) {
        continue;
      }
      const ProblemGenerator gen(req.key.seed, req.key.n);
      const Factorization f =
          factorStorageSingle(gen, req.key.b, vendor, req.key.precision);
      std::vector<std::vector<double>> xs;
      solveManyMixedSingle(f, gen, {req.rhsSeed}, xs, maxIr);
      if (xs[0] != handle->solution()) {
        ++mismatched;
      }
      ++checked;
    }
    std::printf("verify: %lld served solutions re-checked bitwise, "
                "%lld mismatched\n",
                (long long)checked, (long long)mismatched);
    return mismatched > 0 ? 1 : 0;
  };

  const auto toRequest = [](const serve::TraceRequest& tr) {
    serve::SolveRequest req;
    req.key = {tr.n, tr.b, tr.seed, tr.pr, tr.pc,
               HplaiConfig::Scheduler::kBulk, tr.precision};
    req.rhsSeed = tr.rhsSeed;
    req.deadlineSeconds = tr.deadlineMs * 1e-3;
    return req;
  };

  if (shards > 1) {
    fcfg.shard = std::move(scfg);
    serve::FleetEngine fleet(std::move(fcfg));
    std::vector<std::pair<serve::SolveRequest,
                          serve::FleetEngine::HandlePtr>> handles;
    handles.reserve(trace.requests.size());
    Timer replay;
    index_t i = 0;
    for (const serve::TraceRequest& tr : trace.requests) {
      if (i == breakAt) {
        fleet.breakShard(breakWho);
      }
      if (i == crashAt) {
        fleet.crashShard(crashWho);
      }
      if (i == slowAt) {
        fleet.slowShard(slowWho, slowStretch);
      }
      if (i == resurrectAt) {
        if (crashAt >= 0) {
          fleet.resurrectShard(crashWho);
        }
        if (breakAt >= 0) {
          fleet.unbreakShard(breakWho);
        }
      }
      const double at = tr.atMs * 1e-3 / speedup;
      const double nowS = replay.seconds();
      if (at > nowS) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(at - nowS));
      }
      const serve::SolveRequest req = toRequest(tr);
      handles.emplace_back(req, fleet.submit(req));
      ++i;
    }
    fleet.drain();

    serve::FleetReport report = fleet.report();
    report.trace = trace.name;
    report.toTable().print();
    serve::writeReportFile(jsonPath, report.toJson());
    std::printf("wrote %s\n", jsonPath.c_str());
    const int bad = verifyServed(handles);
    return bad != 0 || report.dropped != 0 || report.doubleAnswered != 0 ||
                   !report.cacheLookupInvariant
               ? 1
               : 0;
  }

  serve::ServeEngine engine(std::move(scfg));

  // Open-loop replay: arrivals follow the trace clock (divided by
  // --speedup), regardless of how far the engine has gotten.
  std::vector<std::pair<serve::SolveRequest, serve::ServeEngine::HandlePtr>>
      handles;
  handles.reserve(trace.requests.size());
  Timer replay;
  for (const serve::TraceRequest& tr : trace.requests) {
    const double at = tr.atMs * 1e-3 / speedup;
    const double nowS = replay.seconds();
    if (at > nowS) {
      std::this_thread::sleep_for(std::chrono::duration<double>(at - nowS));
    }
    const serve::SolveRequest req = toRequest(tr);
    handles.emplace_back(req, engine.submit(req));
  }
  engine.drain();

  serve::ServeReport report = engine.report();
  report.trace = trace.name;
  report.toTable().print();
  serve::writeReportFile(jsonPath, report.toJson());
  std::printf("wrote %s\n", jsonPath.c_str());
  return verifyServed(handles);
}

int cmdFleetsim(const Options& raw) {
  const Options opts = layered(raw);

  fleetsim::FleetSimConfig cfg;
  const std::string topologyPath = opts.getString("topology", "");
  if (!topologyPath.empty()) {
    cfg.topology = fleetsim::TopologyConfig::load(topologyPath);
  } else {
    cfg.topology.kind = fleetsim::topologyKindFromString(
        opts.getString("kind", "fat-tree"));
    cfg.topology.nodes = opts.getInt("nodes", 16);
    cfg.topology.machine = machineFrom(opts);
    if (cfg.topology.kind == fleetsim::TopologyKind::kTorus) {
      cfg.topology.torusX = opts.getInt("torus-x", cfg.topology.nodes);
      cfg.topology.torusY = opts.getInt("torus-y", 1);
      cfg.topology.torusZ = opts.getInt("torus-z", 1);
    }
    cfg.topology.validate();
  }

  cfg.runLu = opts.getBool("lu", false);
  if (cfg.runLu) {
    cfg.lu.n = opts.getInt("lu.n", 4096);
    cfg.lu.b = opts.getInt("lu.b", 256);
    cfg.lu.pr = opts.getInt("lu.pr", 4);
    cfg.lu.pc = opts.getInt("lu.pc", 4);
  }

  cfg.runServe = opts.getBool("serve", true);
  if (cfg.runServe) {
    const std::string tracePath = opts.getString("trace", "");
    cfg.serve.trace =
        tracePath.empty()
            ? serve::makeSyntheticTrace(
                  opts.getInt("requests", 64), opts.getInt("keys", 4),
                  opts.getDouble("gap-ms", 1.0), opts.getInt("n", 64),
                  opts.getInt("b", 16),
                  static_cast<std::uint64_t>(opts.getInt("seed", 42)))
            : serve::loadRequestTrace(tracePath);
    cfg.serve.shards = opts.getInt("shards", 1);
    cfg.serve.virtualNodes = opts.getInt("serve.shards.virtual-nodes", 64);
    cfg.serve.queueDepth = opts.getInt("serve.queue-depth", 64);
    cfg.serve.maxBatch = opts.getInt("serve.batch", 8);
    cfg.serve.batchDelayUs = opts.getDouble("serve.batch-delay-us", 1000.0);
    cfg.serve.cacheMb =
        static_cast<double>(opts.getInt("serve.cache-mb", 64));
    cfg.serve.defaultDeadlineMs = opts.getDouble("serve.deadline-ms", 0.0);
    cfg.serve.failoverLimit = opts.getInt("serve.shards.failover-limit", 2);
    cfg.serve.hostGflops = opts.getDouble("host-gflops", 2.0);
    cfg.serve.irIterations = opts.getInt("ir-iters", 3);

    // Gray-failure defense (off by default: golden traces stay stable).
    cfg.serve.health.enabled = opts.getBool("health", false);
    cfg.serve.heartbeatIntervalMs = opts.getDouble("heartbeat-ms", 10.0);
    cfg.serve.health.suspectPhi = opts.getDouble("suspect-phi", 1.0);
    cfg.serve.health.quarantinePhi = opts.getDouble("quarantine-phi", 3.0);
    cfg.serve.health.quarantineDwellSeconds =
        opts.getDouble("dwell-ms", 100.0) * 1e-3;
    cfg.serve.hedgeEnabled = opts.getBool("hedge", false);
    cfg.serve.hedgeDelayFactor = opts.getDouble("hedge-delay-factor", 1.5);
    cfg.serve.hedgeMinDelayMs = opts.getDouble("hedge-min-delay-ms", 2.0);
    cfg.serve.hedgeBudgetPerSecond = opts.getDouble("hedge-budget", 20.0);
    cfg.serve.hedgeBudgetBurst = opts.getDouble("hedge-burst", 8.0);

    // Chaos schedule on the virtual clock (ms).
    const double crashAtMs = opts.getDouble("crash-at-ms", -1.0);
    if (crashAtMs >= 0.0) {
      cfg.serve.chaos.push_back({fleetsim::ChaosAction::Kind::kCrash,
                                 crashAtMs,
                                 opts.getInt("crash-shard",
                                             cfg.serve.shards - 1),
                                 0.0});
    }
    const double resurrectAtMs = opts.getDouble("resurrect-at-ms", -1.0);
    if (resurrectAtMs >= 0.0) {
      cfg.serve.chaos.push_back({fleetsim::ChaosAction::Kind::kResurrect,
                                 resurrectAtMs,
                                 opts.getInt("crash-shard",
                                             cfg.serve.shards - 1),
                                 0.0});
    }
    const double slowAtMs = opts.getDouble("slow-at-ms", -1.0);
    if (slowAtMs >= 0.0) {
      cfg.serve.chaos.push_back({fleetsim::ChaosAction::Kind::kSlow,
                                 slowAtMs, opts.getInt("slow-shard", 0),
                                 opts.getDouble("slow-factor", 0.5)});
    }
  }

  const std::string scriptPath = opts.getString("script", "");
  const bool interactive = opts.getBool("interactive", false);
  const std::string jsonPath = opts.getString("json", "");
  const std::string validatePath = opts.getString("validate", "");
  const double tolLatency = opts.getDouble("tol-latency", 5.0);
  const double tolHit = opts.getDouble("tol-hit", 0.2);
  warnUnused(opts);

  fleetsim::FleetSession session(cfg);
  std::printf("hplmxp fleetsim: topology=%s kind=%s nodes=%lld lu=%s "
              "serve=%s (%zu requests, %lld shards)\n",
              cfg.topology.name.c_str(),
              fleetsim::toString(cfg.topology.kind),
              (long long)cfg.topology.nodes, cfg.runLu ? "on" : "off",
              cfg.runServe ? "on" : "off",
              cfg.runServe ? cfg.serve.trace.requests.size() : 0,
              (long long)(cfg.runServe ? cfg.serve.shards : 0));

  int scriptErrors = 0;
  if (!scriptPath.empty()) {
    std::ifstream script(scriptPath);
    HPLMXP_REQUIRE(script.good(),
                   ("cannot open script: " + scriptPath).c_str());
    fleetsim::DebugCli cli(session, script, std::cout);
    scriptErrors = cli.runLoop();
  } else if (interactive) {
    fleetsim::DebugCli cli(session, std::cin, std::cout);
    scriptErrors = cli.runLoop();
  }
  // Whatever the script left pending still runs: the report always
  // describes the fully drained simulation.
  session.sim().clearBreakpoints();
  session.sim().run();

  const fleetsim::FleetSimReport report = session.report();
  std::printf("fleetsim: %llu events, virtual time %.3f s, trace hash "
              "%016llx\n",
              (unsigned long long)report.events, report.virtualSeconds,
              (unsigned long long)report.traceHash);
  if (report.hasServe) {
    std::printf("  serve: %llu completed / %llu submitted, hit rate %.3f, "
                "p50 %.3f ms, p99 %.3f ms\n",
                (unsigned long long)report.serveCounters.completed,
                (unsigned long long)report.serveCounters.submitted,
                report.serveCounters.hitRate(), report.total.p50Ms,
                report.total.p99Ms);
  }
  if (report.hasLu) {
    std::printf("  lu: %lld/%lld iterations, %.3f s virtual, %lld "
                "comm-bound\n",
                (long long)report.lu.iterations,
                (long long)report.lu.totalIterations,
                report.lu.factorSeconds,
                (long long)report.lu.commBoundIterations);
  }

  bool validationPass = true;
  std::string validationJson = "null";
  if (!validatePath.empty()) {
    const fleetsim::ValidationResult validation =
        fleetsim::validateAgainst(report, validatePath, tolLatency, tolHit);
    validationPass = validation.pass;
    validationJson = validation.toJson();
    for (const fleetsim::ValidationLine& line : validation.lines) {
      std::printf("  validate %-14s sim=%.4f measured=%.4f %s\n",
                  line.metric.c_str(), line.simulated, line.measured,
                  line.pass ? "ok" : "FAIL");
    }
  }
  if (!jsonPath.empty()) {
    std::ostringstream os;
    os << "{\n\"report\": " << report.toJson()
       << ",\n\"validation\": " << validationJson << "\n}\n";
    serve::writeReportFile(jsonPath, os.str());
    std::printf("wrote %s\n", jsonPath.c_str());
  }
  return scriptErrors > 0 || !validationPass ? 1 : 0;
}

int cmdSpecs(const Options& raw) {
  warnUnused(raw);
  for (MachineKind kind : {MachineKind::kSummit, MachineKind::kFrontier}) {
    const MachineSpec& s = machineSpec(kind);
    std::printf("\n%s: %lld nodes x %lld GCDs (%s), %.0f/%.2f TF "
                "FP16/FP64 per GCD, %.1f GB/s NIC per node\n",
                s.name.c_str(), (long long)s.nodes, (long long)s.gcdsPerNode,
                s.gpuModel.c_str(), s.fp16TflopsPerGcd, s.fp64TflopsPerGcd,
                s.nicGBsPerNodeEachWay);
    const BlasShim shim(s.vendor);
    std::printf("  BLAS: %s / %s / %s\n", shim.routineNames().gemm.c_str(),
                shim.routineNames().trsm.c_str(),
                shim.routineNames().getrf.c_str());
  }
  return 0;
}

std::string usage() {
  return
      "hplmxp — mixed-precision HPL-AI/HPL-MxP benchmark reproduction\n"
      "\n"
      "usage: hplmxp <command> [--key value ...] [--config file]\n"
      "\n"
      "commands:\n"
      "  run      functional distributed HPL-AI on this host\n"
      "           (--n --b --pr --pc --bcast --refiner ir|gmres\n"
      "            --lookahead on|off --scheduler bulk|dataflow\n"
      "            --vendor amd|nvidia --seed\n"
      "            --trace --warmup --save-reference FILE\n"
      "            --reference FILE [--slowdown X --strikes N])\n"
      "  hpl      functional distributed FP64 HPL baseline\n"
      "           (--n --b --pr --pc --diag-shift --bcast)\n"
      "  project  at-scale projection on the Summit/Frontier models\n"
      "           (--machine --nl --b --pr --qr --qc --bcast --col-major\n"
      "            --port-binding --gpu-aware --slowest-gcd)\n"
      "  tune     block-size / local-size search (--machine --pr --nl)\n"
      "  scan     slow-node mini-benchmark scan (--fleet --degraded)\n"
      "  chaos    distributed solve under a fault-injection scenario\n"
      "           (--scenario none|delay|transient|sdc|stall|crash\n"
      "                       |multicrash|ckptcorrupt|partition|ladder\n"
      "            ladder: adaptive-precision sweep over conditioning\n"
      "            regimes (--precision auto|fp16|bf16|fp8e4m3|fp8e5m2\n"
      "            --max-ir --gmres on|off --gmres-restart --gmres-outer)\n"
      "            --n --b --pr --pc --seed --fault-seed --timeout-ms\n"
      "            --retries --backoff-us --guard on|off --ir-strikes\n"
      "            --detect-slow on|off --slow-strikes --min-lag\n"
      "            --recovery.enabled on|off --recovery.every-k\n"
      "            --recovery.max-resurrections\n"
      "            --recovery.compress on|off --recovery.verify on|off\n"
      "            --abft.panels on|off --abft.gemm on|off)\n"
      "  recover  crash ranks mid-factorization (optionally: a second\n"
      "           concurrent crash, a crash during replay, an injected\n"
      "           checkpoint corruption, in-flight panel bit flips) with\n"
      "           incremental verified checkpoints + ABFT enabled, and\n"
      "           prove the recovered solve bitwise-identical to a\n"
      "           fault-free baseline\n"
      "           (--n --b --pr --pc --seed --crash-rank --crash-at-op\n"
      "            --crash-rank2 --crash-at-op2\n"
      "            --replay-crash-rank --replay-crash-at-op\n"
      "            --corrupt-ckpt-rank --corrupt-ckpt-gen\n"
      "            --flip-probability --fault-seed --json FILE\n"
      "            --recovery.enabled on|off --recovery.every-k\n"
      "            --recovery.max-resurrections\n"
      "            --recovery.compress on|off --recovery.verify on|off\n"
      "            --abft.panels on|off --abft.gemm on|off)\n"
      "  serve    solver-as-a-service: replay a request trace through the\n"
      "           factor cache + batching engine and report latency\n"
      "           (--trace FILE | --requests --keys --gap-ms --n --b --seed\n"
      "            --speedup X --json FILE --verify N --max-ir\n"
      "            --serve.cache-mb --serve.queue-depth --serve.batch\n"
      "            --serve.batch-delay-us --serve.deadline-ms\n"
      "            --serve.workers --serve.retries\n"
      "            --serve.chaos none|delay|transient --serve.chaos-seed\n"
      "            sharded fleet: --shards N\n"
      "            --serve.shards.virtual-nodes --serve.shards.group-size\n"
      "            --serve.shards.hot-requests --serve.shards.hot-replicas\n"
      "            --serve.shards.failover-limit --serve.shards.open-ms\n"
      "            --serve.shards.timeout-ms\n"
      "            gray-failure defense: --serve.shards.health on|off\n"
      "            --serve.shards.suspect-phi --serve.shards.quarantine-phi\n"
      "            --serve.shards.dwell-ms --hedge on|off\n"
      "            --hedge-delay-factor --hedge-delay-ms --hedge-budget\n"
      "            --hedge-burst\n"
      "            chaos schedule (request indices):\n"
      "            --break-at --break-shard --crash-at --crash-shard\n"
      "            --resurrect-at --slow-at --slow-shard --slow-stretch)\n"
      "  fleetsim fleet-scale discrete-event co-simulation: replay a\n"
      "           request trace and/or a factorization sweep on a virtual\n"
      "           cluster topology, with an mgsim-style debug CLI\n"
      "           (--topology FILE | --kind fat-tree|dragonfly|torus\n"
      "            --nodes N --machine summit|frontier\n"
      "            --lu on|off --lu.n --lu.b --lu.pr --lu.pc\n"
      "            --serve on|off --trace FILE | --requests --keys\n"
      "            --gap-ms --n --b --seed --shards N --host-gflops\n"
      "            --ir-iters --serve.queue-depth --serve.batch\n"
      "            --serve.batch-delay-us --serve.cache-mb\n"
      "            --serve.deadline-ms --serve.shards.virtual-nodes\n"
      "            --serve.shards.failover-limit\n"
      "            chaos (virtual ms): --crash-at-ms --crash-shard\n"
      "            --resurrect-at-ms --slow-at-ms --slow-shard\n"
      "            --slow-factor\n"
      "            gray-failure defense: --health on|off --heartbeat-ms\n"
      "            --suspect-phi --quarantine-phi --dwell-ms\n"
      "            --hedge on|off --hedge-delay-factor --hedge-min-delay-ms\n"
      "            --hedge-budget --hedge-burst\n"
      "            modes: --script FILE | --interactive | (default: run)\n"
      "            --json FILE --validate BENCH_serve.json\n"
      "            --tol-latency X --tol-hit X)\n"
      "  specs    print machine specs and the BLAS dispatch map\n"
      "  help     this text\n";
}

int dispatch(const std::vector<std::string>& args) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    std::fputs(usage().c_str(), stdout);
    return args.empty() ? 1 : 0;
  }
  const std::string cmd = args[0];
  const Options opts =
      Options::parseArgs({args.begin() + 1, args.end()});
  try {
    if (cmd == "run") {
      return cmdRun(opts);
    }
    if (cmd == "hpl") {
      return cmdHpl(opts);
    }
    if (cmd == "project") {
      return cmdProject(opts);
    }
    if (cmd == "tune") {
      return cmdTune(opts);
    }
    if (cmd == "scan") {
      return cmdScan(opts);
    }
    if (cmd == "chaos") {
      return cmdChaos(opts);
    }
    if (cmd == "recover") {
      return cmdRecover(opts);
    }
    if (cmd == "serve") {
      return cmdServe(opts);
    }
    if (cmd == "fleetsim") {
      return cmdFleetsim(opts);
    }
    if (cmd == "specs") {
      return cmdSpecs(opts);
    }
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "unknown command: %s\n\n%s", cmd.c_str(),
               usage().c_str());
  return 1;
}

}  // namespace hplmxp::cli
