// Subcommand implementations of the hplmxp driver binary.
#pragma once

#include <string>
#include <vector>

#include "cli/options.h"

namespace hplmxp::cli {

/// Dispatches `hplmxp <subcommand> [options]`. Returns the process exit
/// code. Recognized subcommands:
///   run      — functional distributed HPL-AI on this host
///   hpl      — functional distributed FP64 HPL baseline
///   project  — at-scale performance projection (Summit/Frontier models)
///   tune     — block-size / local-size parameter search
///   scan     — slow-node mini-benchmark scan of a simulated fleet
///   chaos    — distributed solve under a named fault-injection scenario
///   recover  — crash/flip a run with ABFT + checkpoint recovery enabled
///              and prove the recovered solve bitwise-identical to a
///              fault-free baseline
///   serve    — solver-as-a-service: replay a request trace through the
///              factor cache + batching engine and report latency
///   fleetsim — fleet-scale discrete-event co-simulation of the serving
///              tier and/or a factorization sweep on a virtual cluster
///              topology, with an interactive (mgsim-style) debug CLI
///   specs    — print the machine specs (Table I) and shim map (Table II)
///   help     — usage
int dispatch(const std::vector<std::string>& args);

/// Usage text.
std::string usage();

// Individual commands (exposed for tests).
int cmdRun(const Options& opts);
int cmdHpl(const Options& opts);
int cmdProject(const Options& opts);
int cmdTune(const Options& opts);
int cmdScan(const Options& opts);
int cmdChaos(const Options& opts);
int cmdRecover(const Options& opts);
int cmdServe(const Options& opts);
int cmdFleetsim(const Options& opts);
int cmdSpecs(const Options& opts);

}  // namespace hplmxp::cli
