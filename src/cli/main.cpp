// Entry point of the hplmxp driver binary.
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return hplmxp::cli::dispatch(args);
}
