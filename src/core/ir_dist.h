// Distributed iterative refinement — part (2) of Algorithm 1.
//
// After the mixed-precision factorization, the FP64 residual r = b - A*x
// is computed by *regenerating* the FP64 entries of A on the fly (the LCG
// jump-ahead makes any tile cheap to produce) and summing per-rank partial
// products with a single Allreduce. The correction d solves L*(U*d) = r
// with the FP32 factors and FP64 accumulation (two distributed block
// triangular solves), and x <- x + d. Iteration stops when
//
//     ||r||_inf < 8 * N * eps * (2*||diag(A)||_inf*||x||_inf + ||b||_inf)
//
// (Algorithm 1, line 44), i.e. the solution is accurate to FP64.
//
// Note on the residual GEMV: the paper has each diagonal-block owner
// regenerate the whole block column A(:,k); we distribute the same
// regeneration by block *ownership* instead, which touches every entry
// exactly once with all P ranks participating and still needs only the one
// Allreduce. The communication structure (a single sum of N-vectors) is
// identical; only the compute is spread more evenly.
#pragma once

#include <vector>

#include "blas/types.h"
#include "core/config.h"
#include "core/dist_context.h"
#include "gen/matgen.h"

namespace hplmxp {

/// Result of one refinement run.
struct IrOutcome {
  index_t iterations = 0;
  bool converged = false;
  double residualInf = 0.0;  // final ||b - A x||_inf
  double threshold = 0.0;    // the line-44 threshold it is compared to
  /// True when classical IR diverged (residual failed to improve for
  /// config.irDivergenceStrikes consecutive iterations) and the run
  /// self-healed by restarting the GMRES refiner from the best iterate.
  bool fellBack = false;
};

class DistIR {
 public:
  DistIR(DistContext& ctx, const HplaiConfig& config,
         const ProblemGenerator& gen);

  /// Runs refinement against the factored local matrix (FP32 L/U factors
  /// in `localLU`). `x` is the FP64 solution vector, replicated on every
  /// rank; on entry it may hold any initial guess (the driver seeds it with
  /// b / diag(A), Algorithm 1 line 32). All ranks return the same outcome.
  ///
  /// Divergence guard (config.irDivergenceStrikes > 0): when the residual
  /// fails to improve for that many consecutive iterations — classical IR
  /// diverges when ||I - (LU)^{-1}A|| >= 1, e.g. after factor corruption —
  /// the best iterate seen is restored and refinement falls back to the
  /// LU-preconditioned GMRES refiner for the remaining budget
  /// (outcome.fellBack). GMRES minimizes the residual over the Krylov
  /// space, so it converges in cases where the stationary iteration cannot.
  IrOutcome refine(const float* localLU, index_t lda, std::vector<double>& x);

  /// FP64 residual r = b - A*x by regeneration + Allreduce (all ranks get
  /// the full vector). Exposed for tests and the verification module.
  void residual(const std::vector<double>& x, std::vector<double>& r);

  /// Distributed block TRSV: solves op(T) d = rhs in place where T is the
  /// unit-lower (kLower) or upper (kUpper) factor stored in localLU.
  /// `rhs` is replicated; every rank finishes with the full solution.
  void blockTrsv(blas::Uplo uplo, const float* localLU, index_t lda,
                 std::vector<double>& rhs);

  /// The convergence threshold for a given ||x||_inf.
  [[nodiscard]] double threshold(double xInf) const;

 private:
  DistContext& ctx_;
  const HplaiConfig& config_;
  const ProblemGenerator& gen_;

  double diagInf_ = 0.0;  // ||diag(A)||_inf (regenerated once)
  double bInf_ = 0.0;     // ||b||_inf
};

}  // namespace hplmxp
