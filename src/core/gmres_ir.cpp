#include "core/gmres_ir.h"

#include <cmath>
#include <limits>

#include "core/dist_kernels.h"

namespace hplmxp {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

double infNormOf(const std::vector<double>& a) {
  double best = 0.0;
  for (double v : a) {
    best = std::max(best, std::fabs(v));
  }
  return best;
}

}  // namespace

IrOutcome refineGmres(DistContext& ctx, const HplaiConfig& config,
                      const ProblemGenerator& gen, const float* localLU,
                      index_t lda, std::vector<double>& x,
                      const GmresConfig& gmres) {
  const index_t n = config.n;
  const index_t m = gmres.restart;
  HPLMXP_REQUIRE(m >= 1, "GMRES restart dimension must be positive");

  const double diagInf = gen.diagInfNorm();
  const double bInf = gen.rhsInfNorm();
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  auto threshold = [&](double xInf) {
    return 8.0 * static_cast<double>(n) * kEps *
           (2.0 * diagInf * xInf + bInf);
  };
  auto precondition = [&](std::vector<double>& v) {
    distributedBlockTrsv<float>(ctx, config.b, blas::Uplo::kLower, localLU,
                                lda, v);
    distributedBlockTrsv<float>(ctx, config.b, blas::Uplo::kUpper, localLU,
                                lda, v);
  };

  IrOutcome out;
  std::vector<double> r, w;
  std::vector<std::vector<double>> v(static_cast<std::size_t>(m) + 1);
  // Hessenberg in column-major with Givens rotations applied on the fly.
  std::vector<double> h(static_cast<std::size_t>((m + 1) * m), 0.0);
  std::vector<double> cs(static_cast<std::size_t>(m), 0.0);
  std::vector<double> sn(static_cast<std::size_t>(m), 0.0);
  std::vector<double> g(static_cast<std::size_t>(m) + 1, 0.0);

  for (index_t outer = 0; outer < gmres.maxOuter; ++outer) {
    // True (unpreconditioned) residual and convergence check.
    distributedResidual(ctx, gen, x, r);
    out.residualInf = infNormOf(r);
    out.threshold = threshold(infNormOf(x));
    if (out.residualInf < out.threshold) {
      out.converged = true;
      return out;
    }

    // z = M^{-1} r seeds the Krylov space.
    precondition(r);
    const double beta = norm2(r);
    if (beta == 0.0) {
      out.converged = true;
      return out;
    }
    v[0] = r;
    for (double& val : v[0]) {
      val /= beta;
    }
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    index_t steps = 0;
    for (index_t j = 0; j < m; ++j) {
      // w = M^{-1} A v_j.
      distributedMatVec(ctx, gen, v[static_cast<std::size_t>(j)], w);
      precondition(w);
      // Modified Gram-Schmidt.
      for (index_t i = 0; i <= j; ++i) {
        const double hij = dot(w, v[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(i + j * (m + 1))] = hij;
        for (index_t e = 0; e < n; ++e) {
          w[static_cast<std::size_t>(e)] -=
              hij * v[static_cast<std::size_t>(i)][static_cast<std::size_t>(
                  e)];
        }
      }
      const double hj1 = norm2(w);
      h[static_cast<std::size_t>(j + 1 + j * (m + 1))] = hj1;
      ++steps;
      ++out.iterations;

      // Apply previous Givens rotations to the new column, then form the
      // rotation that annihilates h(j+1, j).
      for (index_t i = 0; i < j; ++i) {
        double& a = h[static_cast<std::size_t>(i + j * (m + 1))];
        double& bq = h[static_cast<std::size_t>(i + 1 + j * (m + 1))];
        const double t = cs[static_cast<std::size_t>(i)] * a +
                         sn[static_cast<std::size_t>(i)] * bq;
        bq = -sn[static_cast<std::size_t>(i)] * a +
             cs[static_cast<std::size_t>(i)] * bq;
        a = t;
      }
      double& a = h[static_cast<std::size_t>(j + j * (m + 1))];
      double& bq = h[static_cast<std::size_t>(j + 1 + j * (m + 1))];
      const double denom = std::hypot(a, bq);
      cs[static_cast<std::size_t>(j)] = denom == 0.0 ? 1.0 : a / denom;
      sn[static_cast<std::size_t>(j)] = denom == 0.0 ? 0.0 : bq / denom;
      a = denom;
      bq = 0.0;
      g[static_cast<std::size_t>(j + 1)] =
          -sn[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] *= cs[static_cast<std::size_t>(j)];

      if (hj1 == 0.0 ||
          std::fabs(g[static_cast<std::size_t>(j + 1)]) < beta * 1e-14) {
        break;  // happy breakdown / inner convergence
      }
      v[static_cast<std::size_t>(j + 1)] = w;
      for (double& val : v[static_cast<std::size_t>(j + 1)]) {
        val /= hj1;
      }
    }

    // Back-substitute the triangular least-squares system and update x.
    std::vector<double> y(static_cast<std::size_t>(steps), 0.0);
    for (index_t i = steps - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (index_t jj = i + 1; jj < steps; ++jj) {
        acc -= h[static_cast<std::size_t>(i + jj * (m + 1))] *
               y[static_cast<std::size_t>(jj)];
      }
      y[static_cast<std::size_t>(i)] =
          acc / h[static_cast<std::size_t>(i + i * (m + 1))];
    }
    for (index_t jj = 0; jj < steps; ++jj) {
      const double yj = y[static_cast<std::size_t>(jj)];
      for (index_t e = 0; e < n; ++e) {
        x[static_cast<std::size_t>(e)] +=
            yj * v[static_cast<std::size_t>(jj)][static_cast<std::size_t>(e)];
      }
    }
  }

  // Final residual report after exhausting the budget.
  distributedResidual(ctx, gen, x, r);
  out.residualInf = infNormOf(r);
  out.threshold = threshold(infNormOf(x));
  out.converged = out.residualInf < out.threshold;
  return out;
}

}  // namespace hplmxp
