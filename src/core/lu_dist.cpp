#include "core/lu_dist.h"

#include <cstdint>
#include <cstring>
#include <string>

#include "blas/blas.h"
#include "simmpi/faults.h"
#include "util/logging.h"
#include "util/timer.h"

namespace hplmxp {

using simmpi::broadcast;

namespace {

// Guard limits for the abnormal-value scans (config.guardPanels). The
// generator's matrices are diagonally dominant with O(1) off-diagonal
// entries, so legitimate FP16 panel values stay within a few units (the L
// panel is ~1/N); an exponent-bit flip lands at x * 2^16 or non-finite,
// far above kHalfGuardLimit. FP32 diagonal/trailing tiles legitimately
// reach ~N on the diagonal, so their ceiling is generous.
constexpr double kHalfGuardLimit = 64.0;
constexpr double kFloatGuardLimit = 1e8;

}  // namespace

DistLU::DistLU(DistContext& ctx, const HplaiConfig& config, BlasShim& shim)
    : ctx_(ctx), config_(config), shim_(shim) {
  const index_t b = config_.b;
  diagBuf_.allocate(b * b);
  // The look-ahead pipeline and the dataflow graph both keep two panel
  // generations in flight (step k's GEMM reads buffer set k%2 while step
  // k+1's panels land in the other set).
  const bool dataflow =
      config_.scheduler == HplaiConfig::Scheduler::kDataflow;
  const index_t panelBufs = (config_.lookahead || dataflow) ? 2 : 1;
  for (index_t i = 0; i < panelBufs; ++i) {
    lHalf_[i].allocate(ctx_.localRows() * b);
    uHalf_[i].allocate(ctx_.localCols() * b);
  }
}

DistLU::StepGeom DistLU::geometry(index_t k) const {
  const BlockCyclic& layout = ctx_.layout();
  StepGeom g;
  g.k = k;
  g.pir = k % layout.pr();
  g.pic = k % layout.pc();
  g.iStartBlk = layout.firstLocalBlockRowAtOrAfter(ctx_.myRow(), k + 1);
  g.jStartBlk = layout.firstLocalBlockColAtOrAfter(ctx_.myCol(), k + 1);
  g.h = ctx_.localRows() - g.iStartBlk * config_.b;
  g.w = ctx_.localCols() - g.jStartBlk * config_.b;
  g.ownRow = ctx_.myRow() == g.pir;
  g.ownCol = ctx_.myCol() == g.pic;
  g.ownDiag = g.ownRow && g.ownCol;
  g.lkRow = layout.localBlockRow(k);
  g.lkCol = layout.localBlockCol(k);
  return g;
}

void DistLU::guardDiag(const StepGeom& g) const {
  const index_t b = config_.b;
  const blas::AbnormalScan s =
      blas::scanAbnormal(b, b, diagBuf_.data(), b, kFloatGuardLimit);
  if (s) {
    throw blas::AbnormalValueError(
        "LU step " + std::to_string(g.k) + " rank " +
        std::to_string(ctx_.rank()) + ": corrupted diagonal block: " +
        s.describe());
  }
}

void DistLU::guardHalfU(const StepGeom& g, int bufIdx) const {
  const index_t b = config_.b;
  if (g.w > 0) {
    const blas::AbnormalScan s = blas::scanAbnormal(
        g.w, b, uHalf_[bufIdx].data(), g.w, kHalfGuardLimit);
    if (s) {
      throw blas::AbnormalValueError(
          "LU step " + std::to_string(g.k) + " rank " +
          std::to_string(ctx_.rank()) + ": corrupted FP16 U panel: " +
          s.describe());
    }
  }
}

void DistLU::guardHalfL(const StepGeom& g, int bufIdx) const {
  const index_t b = config_.b;
  if (g.h > 0) {
    const blas::AbnormalScan s = blas::scanAbnormal(
        g.h, b, lHalf_[bufIdx].data(), g.h, kHalfGuardLimit);
    if (s) {
      throw blas::AbnormalValueError(
          "LU step " + std::to_string(g.k) + " rank " +
          std::to_string(ctx_.rank()) + ": corrupted FP16 L panel: " +
          s.describe());
    }
  }
}

void DistLU::guardHalfPanels(const StepGeom& g, int bufIdx) const {
  guardHalfU(g, bufIdx);
  guardHalfL(g, bufIdx);
}

void DistLU::guardTile(index_t k, index_t m, index_t n, const float* tile,
                       index_t lda) const {
  const blas::AbnormalScan s =
      blas::scanAbnormal(m, n, tile, lda, kFloatGuardLimit);
  if (s) {
    throw blas::AbnormalValueError(
        "LU step " + std::to_string(k) + " rank " +
        std::to_string(ctx_.rank()) + ": corrupted trailing tile: " +
        s.describe());
  }
}

void DistLU::abftProtectU(const StepGeom& g, int bufIdx,
                          IterationTrace* trace) {
  const index_t b = config_.b;
  abftSums_.resize(static_cast<std::size_t>(g.w + b));
  float* rowSums = abftSums_.data();
  float* colSums = abftSums_.data() + g.w;
  if (g.ownRow) {
    // The root's buffer is the authoritative pre-send panel content.
    blas::abftChecksum(g.w, b, uHalf_[bufIdx].data(), g.w, rowSums, colSums);
  }
  broadcast(ctx_.colComm(), config_.panelBcast, g.pir, abftSums_.data(),
            g.w + b);
  const blas::AbftOutcome out = blas::abftVerifyCorrect(
      g.w, b, uHalf_[bufIdx].data(), g.w, rowSums, colSums);
  noteAbftOutcome(g, "U", out, trace);
}

void DistLU::abftProtectL(const StepGeom& g, int bufIdx,
                          IterationTrace* trace) {
  const index_t b = config_.b;
  abftSums_.resize(static_cast<std::size_t>(g.h + b));
  float* rowSums = abftSums_.data();
  float* colSums = abftSums_.data() + g.h;
  if (g.ownCol) {
    blas::abftChecksum(g.h, b, lHalf_[bufIdx].data(), g.h, rowSums, colSums);
  }
  broadcast(ctx_.rowComm(), config_.panelBcast, g.pic, abftSums_.data(),
            g.h + b);
  const blas::AbftOutcome out = blas::abftVerifyCorrect(
      g.h, b, lHalf_[bufIdx].data(), g.h, rowSums, colSums);
  noteAbftOutcome(g, "L", out, trace);
}

void DistLU::abftProtectPanels(const StepGeom& g, int bufIdx,
                               IterationTrace* trace) {
  if (g.w > 0) {
    abftProtectU(g, bufIdx, trace);
  }
  if (g.h > 0) {
    abftProtectL(g, bufIdx, trace);
  }
}

void DistLU::noteAbftOutcome(const StepGeom& g, const char* panel,
                             const blas::AbftOutcome& out,
                             IterationTrace* trace) {
  const auto& stats = config_.recoveryStats;
  if (stats) {
    stats->abftPanelChecks.fetch_add(1);
  }
  switch (out.status) {
    case blas::AbftOutcome::Status::kClean:
      return;
    case blas::AbftOutcome::Status::kCorrected:
      if (stats) {
        stats->flipsDetected.fetch_add(1);
        stats->flipsCorrected.fetch_add(1);
      }
      if (trace != nullptr) {
        ++trace->abftEvents;
      }
      logWarn("LU step " + std::to_string(g.k) + " rank " +
              std::to_string(ctx_.rank()) + ": ABFT corrected bit flip in " +
              panel + " panel at (" + std::to_string(out.row) + "," +
              std::to_string(out.col) + "), bits " +
              std::to_string(out.badBits) + " -> " +
              std::to_string(out.goodBits));
      return;
    case blas::AbftOutcome::Status::kChecksumCorrupted:
      if (stats) {
        stats->checksumCorruptions.fetch_add(1);
      }
      logWarn("LU step " + std::to_string(g.k) + " rank " +
              std::to_string(ctx_.rank()) +
              ": ABFT checksum payload corrupted for " + panel +
              " panel; panel data verified intact in the other dimension");
      return;
    case blas::AbftOutcome::Status::kUncorrectable:
      if (stats) {
        stats->flipsDetected.fetch_add(1);
      }
      throw blas::AbnormalValueError(
          "LU step " + std::to_string(g.k) + " rank " +
          std::to_string(ctx_.rank()) + ": ABFT uncorrectable corruption in " +
          panel + " panel (multi-element mismatch near (" +
          std::to_string(out.row) + "," + std::to_string(out.col) + "))");
  }
}

void DistLU::panelsPhase(const StepGeom& g, int bufIdx, float* localA,
                         index_t lda, IterationTrace* trace) {
  const index_t b = config_.b;
  Timer t;

  // ---- (1a) Diagonal Update --------------------------------------------
  if (g.ownDiag) {
    // Pack the diagonal block contiguously, factor, and write it back so
    // the local matrix ends up holding the final L/U entries.
    float* src = localA + g.lkRow * b + g.lkCol * b * lda;
    for (index_t j = 0; j < b; ++j) {
      std::memcpy(diagBuf_.data() + j * b, src + j * lda,
                  static_cast<std::size_t>(b) * sizeof(float));
    }
    if (shim_.vendor() == Vendor::kNvidia) {
      (void)shim_.getrfBufferSize(b, b);  // cuSOLVER two-step protocol
    }
    shim_.getrf(b, diagBuf_.data(), b);
    for (index_t j = 0; j < b; ++j) {
      std::memcpy(src + j * lda, diagBuf_.data() + j * b,
                  static_cast<std::size_t>(b) * sizeof(float));
    }
    if (recovery_ != nullptr) {
      recovery_->dirtyMap().mark(g.lkRow, g.lkCol);
    }
  }
  // Broadcast the factored diagonal along the owner's process row and
  // process column (synchronous tree; the paper neglects its cost).
  if (g.ownRow) {
    ctx_.rowComm().bcast(g.pic, diagBuf_.data(), b * b);
  }
  if (g.ownCol) {
    ctx_.colComm().bcast(g.pir, diagBuf_.data(), b * b);
  }
  if (trace != nullptr) {
    trace->diagSeconds += t.seconds();
  }

  // ---- (1b) Panel Update ------------------------------------------------
  // U row panel: grid row pir solves L11 * U(k, k+1:) = A(k, k+1:).
  if (g.ownRow && g.w > 0) {
    t.reset();
    float* panel = localA + g.lkRow * b + g.jStartBlk * b * lda;
    shim_.trsm(blas::Side::kLeft, blas::Uplo::kLower, blas::Diag::kUnit, b,
               g.w, 1.0f, diagBuf_.data(), b, panel, lda);
    if (recovery_ != nullptr) {
      recovery_->dirtyMap().markRect(g.lkRow, g.jStartBlk, 1, g.w / b);
    }
    if (trace != nullptr) {
      trace->trsmSeconds += t.seconds();
    }
    t.reset();
    blas::transCastToHalf(b, g.w, panel, lda, uHalf_[bufIdx].data(), g.w);
    if (trace != nullptr) {
      trace->castSeconds += t.seconds();
    }
  }
  // L column panel: grid column pic solves L(k+1:, k) * U11 = A(k+1:, k).
  if (g.ownCol && g.h > 0) {
    t.reset();
    float* panel = localA + g.iStartBlk * b + g.lkCol * b * lda;
    shim_.trsm(blas::Side::kRight, blas::Uplo::kUpper, blas::Diag::kNonUnit,
               g.h, b, 1.0f, diagBuf_.data(), b, panel, lda);
    if (recovery_ != nullptr) {
      recovery_->dirtyMap().markRect(g.iStartBlk, g.lkCol, g.h / b, 1);
    }
    if (trace != nullptr) {
      trace->trsmSeconds += t.seconds();
    }
    t.reset();
    blas::castToHalf(g.h, b, panel, lda, lHalf_[bufIdx].data(), g.h);
    if (trace != nullptr) {
      trace->castSeconds += t.seconds();
    }
  }

  // Panel broadcasts with the configured strategy: U down each process
  // column (root pir), L across each process row (root pic). Extents are
  // consistent within a column/row, so receivers size buffers locally.
  t.reset();
  if (g.w > 0) {
    broadcast(ctx_.colComm(), config_.panelBcast, g.pir,
              uHalf_[bufIdx].data(), g.w * config_.b);
  }
  if (g.h > 0) {
    broadcast(ctx_.rowComm(), config_.panelBcast, g.pic,
              lHalf_[bufIdx].data(), g.h * config_.b);
  }
  if (trace != nullptr) {
    trace->bcastSeconds += t.seconds();
  }

  // ABFT verify-and-correct runs before the guards: a single in-flight
  // flip is repaired here and never reaches them.
  if (config_.abftPanels) {
    abftProtectPanels(g, bufIdx, trace);
  }

  // Self-healing guards: catch broadcast corruption (e.g. an injected SDC
  // bit flip) before the panels poison the trailing matrix.
  if (config_.guardPanels) {
    if (g.ownRow || g.ownCol) {
      guardDiag(g);
    }
    guardHalfPanels(g, bufIdx);
  }
}

void DistLU::updateRegion(const StepGeom& g, int bufIdx, float* localA,
                          index_t lda, index_t iBlk0, index_t jBlk0,
                          index_t rowBlocks, index_t colBlocks) {
  const index_t b = config_.b;
  const index_t totalRowBlocks = ctx_.localRows() / b - iBlk0;
  const index_t totalColBlocks = ctx_.localCols() / b - jBlk0;
  const index_t mBlocks =
      rowBlocks < 0 ? totalRowBlocks : std::min(rowBlocks, totalRowBlocks);
  const index_t nBlocks =
      colBlocks < 0 ? totalColBlocks : std::min(colBlocks, totalColBlocks);
  const index_t m = mBlocks * b;
  const index_t n = nBlocks * b;
  if (m <= 0 || n <= 0) {
    return;
  }
  if (recovery_ != nullptr) {
    recovery_->dirtyMap().markRect(iBlk0, jBlk0, mBlocks, nBlocks);
  }
  const half16* lPtr = lHalf_[bufIdx].data() + (iBlk0 - g.iStartBlk) * b;
  const half16* uPtr = uHalf_[bufIdx].data() + (jBlk0 - g.jStartBlk) * b;
  float* cPtr = localA + iBlk0 * b + jBlk0 * b * lda;
  if (config_.abftGemm) {
    abftRow64_.resize(static_cast<std::size_t>(m));
    blas::abftRowSums64(m, n, cPtr, lda, abftRow64_.data());
  }
  // C -= L * U^T (U was stored transposed by TRANS_CAST).
  shim_.gemmEx(blas::Trans::kNoTrans, blas::Trans::kTrans, m, n, b, -1.0f,
               lPtr, g.h, uPtr, g.w, 1.0f, cPtr, lda);
  if (config_.abftGemm) {
    const blas::AbftGemmCheck chk = blas::abftGemmCarryCheck(
        m, n, b, abftRow64_.data(), lPtr, g.h, uPtr, g.w, cPtr, lda);
    if (config_.recoveryStats) {
      config_.recoveryStats->abftGemmChecks.fetch_add(1);
    }
    if (chk) {
      throw blas::AbnormalValueError(
          "LU step " + std::to_string(g.k) + " rank " +
          std::to_string(ctx_.rank()) +
          ": trailing-update row-sum invariant violated at local row " +
          std::to_string(chk.row) + " (predicted " +
          std::to_string(chk.predicted) + ", actual " +
          std::to_string(chk.actual) + ", tolerance " +
          std::to_string(chk.tolerance) + ")");
    }
  }
  if (config_.guardPanels) {
    guardTile(g.k, m, n, cPtr, lda);
  }
}

void DistLU::updateFull(const StepGeom& g, int bufIdx, float* localA,
                        index_t lda, IterationTrace* trace) {
  Timer t;
  updateRegion(g, bufIdx, localA, lda, g.iStartBlk, g.jStartBlk, -1, -1);
  if (trace != nullptr) {
    trace->gemmSeconds += t.seconds();
  }
}

void DistLU::updateStrips(const StepGeom& g, const StepGeom& next, int bufIdx,
                          float* localA, index_t lda) {
  // Row strip: the local rows of global block row k+1, across the full
  // trailing width — they are the first trailing block row on their owner.
  const bool ownNextRow = ctx_.myRow() == next.pir;
  const bool ownNextCol = ctx_.myCol() == next.pic;
  if (ownNextRow) {
    updateRegion(g, bufIdx, localA, lda, g.iStartBlk, g.jStartBlk, 1, -1);
  }
  if (ownNextCol) {
    // Skip the corner block if this rank owns both strips (it was covered
    // by the row strip above).
    const index_t iBlk0 = g.iStartBlk + (ownNextRow ? 1 : 0);
    updateRegion(g, bufIdx, localA, lda, iBlk0, g.jStartBlk, -1, 1);
  }
}

void DistLU::updateBulk(const StepGeom& g, const StepGeom& next, int bufIdx,
                        float* localA, index_t lda, IterationTrace* trace) {
  Timer t;
  const index_t iBlk0 =
      g.iStartBlk + (ctx_.myRow() == next.pir ? 1 : 0);
  const index_t jBlk0 =
      g.jStartBlk + (ctx_.myCol() == next.pic ? 1 : 0);
  updateRegion(g, bufIdx, localA, lda, iBlk0, jBlk0, -1, -1);
  if (trace != nullptr) {
    trace->gemmSeconds += t.seconds();
  }
}

void DistLU::takeCheckpoint(index_t k, const float* localA, index_t lda) {
  // The manager snapshots exactly the tiles the TRSM/GEMM marking above
  // dirtied since the previous generation; never-touched regions stay
  // LCG-regenerable and are stored nowhere.
  recovery_->checkpoint(k, localA, lda);
}

bool DistLU::pollAbort(index_t k, double iterSeconds) {
  if (!progress_ && !rankProgress_) {
    return false;
  }
  // Rank 0 holds the monitor(s); its verdict is broadcast so every rank
  // stops at the same block step (the runs-at-scale early-termination
  // policy).
  std::uint8_t abort = 0;
  if (rankProgress_) {
    // Slow-rank detection: time how long each rank idles at a barrier. The
    // pacing (slowest) rank arrives last and waits ~0 while everyone else
    // waits for it, so max(waits) - waits[r] is rank r's lag this step.
    Timer waitTimer;
    ctx_.world().barrier();
    const double myWait = waitTimer.seconds();
    std::vector<double> waits(
        static_cast<std::size_t>(ctx_.world().size()), 0.0);
    ctx_.world().gather(0, &myWait, waits.data(), 1);
    if (ctx_.rank() == 0 && rankProgress_(k, waits)) {
      abort = 1;
    }
  }
  if (ctx_.rank() == 0 && progress_ && progress_(k, iterSeconds)) {
    abort = 1;
  }
  ctx_.world().bcast(0, &abort, 1);
  return abort != 0;
}

std::vector<IterationTrace> DistLU::factor(float* localA, index_t lda) {
  HPLMXP_REQUIRE(lda >= ctx_.localRows(), "lda too small for local matrix");
  aborted_ = false;
  stepsCompleted_ = 0;
  schedStats_ = TaskGraph::ExecStats{};
  if (config_.scheduler == HplaiConfig::Scheduler::kDataflow) {
    return factorDataflow(localA, lda);
  }
  const index_t nb = ctx_.layout().globalBlocks();
  const bool tracing = config_.collectTrace && ctx_.rank() == 0;
  std::vector<IterationTrace> traces;
  if (tracing) {
    traces.resize(static_cast<std::size_t>(nb));
    for (index_t k = 0; k < nb; ++k) {
      traces[static_cast<std::size_t>(k)].k = k;
      traces[static_cast<std::size_t>(k)].trailingBlocks = nb - k - 1;
    }
  }
  auto traceAt = [&](index_t k) -> IterationTrace* {
    return tracing ? &traces[static_cast<std::size_t>(k)] : nullptr;
  };

  if (!config_.lookahead) {
    const bool rec = recovery_ != nullptr && config_.recovery.enabled;
    index_t k = 0;
    while (k < nb) {
      try {
        if (rec && recovery_->shouldCheckpoint(k)) {
          takeCheckpoint(k, localA, lda);
        }
        ctx_.world().barrier();  // Algorithm 1 line 5
        Timer iterTimer;
        const StepGeom g = geometry(k);
        panelsPhase(g, 0, localA, lda, traceAt(k));
        updateFull(g, 0, localA, lda, traceAt(k));
        ++stepsCompleted_;
        if (pollAbort(k, iterTimer.seconds())) {
          aborted_ = true;
          break;
        }
        ++k;
      } catch (const simmpi::InjectedCrashError&) {
        if (!rec || !recovery_->canResurrect()) {
          throw;
        }
        // The crash fired before the offending comm op was counted, so
        // replay re-executes from the checkpoint through the normal code
        // path and goes live exactly at the op that killed the rank.
        k = recovery_->resurrect(k, localA, lda);
        stepsCompleted_ = k;
      }
    }
    if (rec) {
      recovery_->noteRunComplete();
    }
    return traces;
  }
  HPLMXP_REQUIRE(recovery_ == nullptr || !config_.recovery.enabled,
                 "crash recovery requires the bulk scheduler without "
                 "look-ahead");

  // Look-ahead pipeline.
  StepGeom g = geometry(0);
  panelsPhase(g, 0, localA, lda, traceAt(0));
  for (index_t k = 0; k < nb; ++k) {
    Timer iterTimer;
    const int buf = static_cast<int>(k % 2);
    if (k + 1 < nb) {
      const StepGeom next = geometry(k + 1);
      updateStrips(g, next, buf, localA, lda);
      panelsPhase(next, 1 - buf, localA, lda, traceAt(k + 1));
      updateBulk(g, next, buf, localA, lda, traceAt(k));
      g = next;
    } else {
      updateFull(g, buf, localA, lda, traceAt(k));
    }
    ++stepsCompleted_;
    if (pollAbort(k, iterTimer.seconds())) {
      aborted_ = true;
      break;
    }
  }
  return traces;
}

std::vector<IterationTrace> DistLU::factorDataflow(float* localA,
                                                   index_t lda) {
  using Id = TaskGraph::TaskId;
  const index_t nb = ctx_.layout().globalBlocks();
  const index_t b = config_.b;
  const index_t rb = ctx_.localRows() / b;  // local block rows
  const index_t cb = ctx_.localCols() / b;  // local block cols
  const bool tracing = config_.collectTrace && ctx_.rank() == 0;
  std::vector<IterationTrace> traces;
  if (tracing) {
    traces.resize(static_cast<std::size_t>(nb));
    for (index_t k = 0; k < nb; ++k) {
      traces[static_cast<std::size_t>(k)].k = k;
      traces[static_cast<std::size_t>(k)].trailingBlocks = nb - k - 1;
    }
  }

  // The whole factorization is ONE task graph per rank. Within a step the
  // tile edges express the algorithm's true dependencies; across steps the
  // C-tile edges (GEMM_k(i,j) after GEMM_{k-1}(i,j)) and the buffer
  // anti-dependencies below express exactly when memory may be reused, so
  // panel work of step k+1 interleaves with trailing tiles of step k (the
  // look-ahead of Sec. IV-B, generalized to arbitrary depth-2 pipelining).
  //
  // Shared-buffer hazards made explicit as edges:
  //  * diagBuf_ holds step k's factored diagonal; step k+1's GETRF /
  //    diag-bcast overwrite it, so they wait on every step-k TRSM tile
  //    (the readers) and on the step-k diag-bcast.
  //  * uHalf_/lHalf_ rotate over 2 generations; step k reuses set k%2,
  //    last used by step k-2, so one aggregator node per step waits on all
  //    GEMM tiles and panel broadcasts of step k-2.
  TaskGraph graph;
  auto dep = [&graph](Id before, Id after) {
    if (before != TaskGraph::kNoTask && after != TaskGraph::kNoTask) {
      graph.addDep(before, after);
    }
  };

  std::vector<StepGeom> geom;
  geom.reserve(static_cast<std::size_t>(nb));
  for (index_t k = 0; k < nb; ++k) {
    geom.push_back(geometry(k));
  }

  const std::size_t tilesPerStep = static_cast<std::size_t>(rb * cb);
  std::vector<std::vector<Id>> gemmIds(
      static_cast<std::size_t>(nb),
      std::vector<Id>(tilesPerStep, TaskGraph::kNoTask));
  auto gemmAt = [&](index_t k, index_t ib, index_t jb) -> Id {
    if (k < 0 || ib < 0 || jb < 0 || ib >= rb || jb >= cb) {
      return TaskGraph::kNoTask;
    }
    return gemmIds[static_cast<std::size_t>(k)]
                  [static_cast<std::size_t>(ib * cb + jb)];
  };
  std::vector<Id> getrfId(static_cast<std::size_t>(nb), TaskGraph::kNoTask);
  std::vector<Id> diagBcast(static_cast<std::size_t>(nb), TaskGraph::kNoTask);
  std::vector<Id> uBcast(static_cast<std::size_t>(nb), TaskGraph::kNoTask);
  std::vector<Id> lBcast(static_cast<std::size_t>(nb), TaskGraph::kNoTask);
  std::vector<std::vector<Id>> trsmU(static_cast<std::size_t>(nb));
  std::vector<std::vector<Id>> trsmL(static_cast<std::size_t>(nb));

  const bool hooks =
      static_cast<bool>(progress_) || static_cast<bool>(rankProgress_);
  Timer pollClock;
  double lastPollMark = 0.0;

  for (index_t k = 0; k < nb; ++k) {
    const StepGeom g = geom[static_cast<std::size_t>(k)];
    const int buf = static_cast<int>(k % 2);
    trsmU[static_cast<std::size_t>(k)].assign(static_cast<std::size_t>(cb),
                                              TaskGraph::kNoTask);
    trsmL[static_cast<std::size_t>(k)].assign(static_cast<std::size_t>(rb),
                                              TaskGraph::kNoTask);

    // Panel-buffer reuse aggregator: set k%2 is free once step k-2's
    // readers (its GEMM tiles and panel broadcasts) have retired.
    Id bufFree = TaskGraph::kNoTask;
    if (k >= 2) {
      bufFree = graph.add(TaskKind::kGeneric, k, [] {});
      const StepGeom& p = geom[static_cast<std::size_t>(k - 2)];
      for (index_t ib = p.iStartBlk; ib < rb; ++ib) {
        for (index_t jb = p.jStartBlk; jb < cb; ++jb) {
          dep(gemmAt(k - 2, ib, jb), bufFree);
        }
      }
      dep(uBcast[static_cast<std::size_t>(k - 2)], bufFree);
      dep(lBcast[static_cast<std::size_t>(k - 2)], bufFree);
    }

    // ---- (1a) Diagonal Update ------------------------------------------
    if (g.ownDiag) {
      Id t = graph.add(TaskKind::kGetrf, k, [this, g, localA, lda, b] {
        float* src = localA + g.lkRow * b + g.lkCol * b * lda;
        for (index_t j = 0; j < b; ++j) {
          std::memcpy(diagBuf_.data() + j * b, src + j * lda,
                      static_cast<std::size_t>(b) * sizeof(float));
        }
        if (shim_.vendor() == Vendor::kNvidia) {
          (void)shim_.getrfBufferSize(b, b);  // cuSOLVER two-step protocol
        }
        shim_.getrf(b, diagBuf_.data(), b);
        for (index_t j = 0; j < b; ++j) {
          std::memcpy(src + j * lda, diagBuf_.data() + j * b,
                      static_cast<std::size_t>(b) * sizeof(float));
        }
      });
      dep(gemmAt(k - 1, g.lkRow, g.lkCol), t);
      getrfId[static_cast<std::size_t>(k)] = t;
    }
    if (g.ownRow || g.ownCol) {
      Id t = graph.addMain(TaskKind::kDiagBcast, k, [this, g, b] {
        if (g.ownRow) {
          ctx_.rowComm().bcast(g.pic, diagBuf_.data(), b * b);
        }
        if (g.ownCol) {
          ctx_.colComm().bcast(g.pir, diagBuf_.data(), b * b);
        }
        if (config_.guardPanels) {
          guardDiag(g);
        }
      });
      dep(getrfId[static_cast<std::size_t>(k)], t);
      diagBcast[static_cast<std::size_t>(k)] = t;
    }
    // diagBuf_ anti-dependency: step k's GETRF/diag-bcast overwrite the
    // block that step k-1's TRSM tiles are still reading.
    if (k >= 1) {
      const Id diagWriter = getrfId[static_cast<std::size_t>(k)] !=
                                    TaskGraph::kNoTask
                                ? getrfId[static_cast<std::size_t>(k)]
                                : diagBcast[static_cast<std::size_t>(k)];
      if (diagWriter != TaskGraph::kNoTask) {
        dep(diagBcast[static_cast<std::size_t>(k - 1)], diagWriter);
        for (const Id t : trsmU[static_cast<std::size_t>(k - 1)]) {
          dep(t, diagWriter);
        }
        for (const Id t : trsmL[static_cast<std::size_t>(k - 1)]) {
          dep(t, diagWriter);
        }
      }
    }

    // ---- (1b) Panel Update, tile-granular ------------------------------
    std::vector<Id> castUIds;
    std::vector<Id> castLIds;
    if (g.ownRow && g.w > 0) {
      for (index_t jb = g.jStartBlk; jb < cb; ++jb) {
        Id t = graph.add(TaskKind::kTrsm, k, [this, g, localA, lda, b, jb] {
          float* tile = localA + g.lkRow * b + jb * b * lda;
          blas::strsm(blas::Side::kLeft, blas::Uplo::kLower,
                      blas::Diag::kUnit, b, b, 1.0f, diagBuf_.data(), b,
                      tile, lda, &serialPool_);
        });
        dep(diagBcast[static_cast<std::size_t>(k)], t);
        dep(gemmAt(k - 1, g.lkRow, jb), t);
        trsmU[static_cast<std::size_t>(k)][static_cast<std::size_t>(jb)] = t;

        Id c = graph.add(TaskKind::kCast, k,
                         [this, g, localA, lda, b, jb, buf] {
          const float* tile = localA + g.lkRow * b + jb * b * lda;
          half16* dst =
              uHalf_[buf].data() + (jb - g.jStartBlk) * b;
          blas::transCastToHalf(b, b, tile, lda, dst, g.w, &serialPool_);
        });
        dep(t, c);
        dep(bufFree, c);
        castUIds.push_back(c);
      }
    }
    if (g.ownCol && g.h > 0) {
      for (index_t ib = g.iStartBlk; ib < rb; ++ib) {
        Id t = graph.add(TaskKind::kTrsm, k, [this, g, localA, lda, b, ib] {
          float* tile = localA + ib * b + g.lkCol * b * lda;
          blas::strsm(blas::Side::kRight, blas::Uplo::kUpper,
                      blas::Diag::kNonUnit, b, b, 1.0f, diagBuf_.data(), b,
                      tile, lda, &serialPool_);
        });
        dep(diagBcast[static_cast<std::size_t>(k)], t);
        dep(gemmAt(k - 1, ib, g.lkCol), t);
        trsmL[static_cast<std::size_t>(k)][static_cast<std::size_t>(ib)] = t;

        Id c = graph.add(TaskKind::kCast, k,
                         [this, g, localA, lda, b, ib, buf] {
          const float* tile = localA + ib * b + g.lkCol * b * lda;
          half16* dst =
              lHalf_[buf].data() + (ib - g.iStartBlk) * b;
          blas::castToHalf(b, b, tile, lda, dst, g.h, &serialPool_);
        });
        dep(t, c);
        dep(bufFree, c);
        castLIds.push_back(c);
      }
    }

    // Panel broadcasts: main-lane so every rank issues its collectives in
    // the identical (step-ascending, U-before-L) order on its own thread.
    if (g.w > 0) {
      Id t = graph.addMain(TaskKind::kPanelBcast, k, [this, g, buf] {
        broadcast(ctx_.colComm(), config_.panelBcast, g.pir,
                  uHalf_[buf].data(), g.w * config_.b);
        if (config_.abftPanels) {
          // Main-lane FIFO keeps the checksum collective in the same
          // globally consistent order on every rank.
          abftProtectU(g, buf, nullptr);
        }
        if (config_.guardPanels) {
          guardHalfU(g, buf);
        }
      });
      dep(bufFree, t);
      for (const Id c : castUIds) {
        dep(c, t);  // root's panel must be fully cast before it is sent
      }
      uBcast[static_cast<std::size_t>(k)] = t;
    }
    if (g.h > 0) {
      Id t = graph.addMain(TaskKind::kPanelBcast, k, [this, g, buf] {
        broadcast(ctx_.rowComm(), config_.panelBcast, g.pic,
                  lHalf_[buf].data(), g.h * config_.b);
        if (config_.abftPanels) {
          abftProtectL(g, buf, nullptr);
        }
        if (config_.guardPanels) {
          guardHalfL(g, buf);
        }
      });
      dep(bufFree, t);
      for (const Id c : castLIds) {
        dep(c, t);
      }
      lBcast[static_cast<std::size_t>(k)] = t;
    }

    // ---- (1c) Update Trailing Matrix, one task per tile ----------------
    if (g.h > 0 && g.w > 0) {
      for (index_t ib = g.iStartBlk; ib < rb; ++ib) {
        for (index_t jb = g.jStartBlk; jb < cb; ++jb) {
          Id t = graph.add(TaskKind::kGemm, k,
                           [this, g, localA, lda, b, ib, jb, buf] {
            const half16* l = lHalf_[buf].data() + (ib - g.iStartBlk) * b;
            const half16* u = uHalf_[buf].data() + (jb - g.jStartBlk) * b;
            float* c = localA + ib * b + jb * b * lda;
            // Task-local scratch: tile tasks run concurrently on workers.
            std::vector<double> row64;
            if (config_.abftGemm) {
              row64.resize(static_cast<std::size_t>(b));
              blas::abftRowSums64(b, b, c, lda, row64.data());
            }
            blas::gemmMixed(blas::Trans::kNoTrans, blas::Trans::kTrans, b, b,
                            b, -1.0f, l, g.h, u, g.w, 1.0f, c, lda,
                            &serialPool_);
            if (config_.abftGemm) {
              const blas::AbftGemmCheck chk = blas::abftGemmCarryCheck(
                  b, b, b, row64.data(), l, g.h, u, g.w, c, lda);
              if (config_.recoveryStats) {
                config_.recoveryStats->abftGemmChecks.fetch_add(1);
              }
              if (chk) {
                throw blas::AbnormalValueError(
                    "LU step " + std::to_string(g.k) + " rank " +
                    std::to_string(ctx_.rank()) +
                    ": trailing-update row-sum invariant violated at local "
                    "row " + std::to_string(chk.row));
              }
            }
            if (config_.guardPanels) {
              guardTile(g.k, b, b, c, lda);
            }
          });
          dep(uBcast[static_cast<std::size_t>(k)], t);
          dep(lBcast[static_cast<std::size_t>(k)], t);
          dep(gemmAt(k - 1, ib, jb), t);
          gemmIds[static_cast<std::size_t>(k)]
                 [static_cast<std::size_t>(ib * cb + jb)] = t;
        }
      }
    }

    // Collective abort poll, one per step on every rank (the poll itself
    // is a collective). Main-lane FIFO order places it after this step's
    // broadcasts on every rank.
    if (hooks) {
      Id t = graph.addMain(TaskKind::kPoll, k,
                           [this, k, &graph, &pollClock, &lastPollMark] {
        const double now = pollClock.seconds();
        const double iterSeconds = now - lastPollMark;
        lastPollMark = now;
        if (pollAbort(k, iterSeconds)) {
          aborted_ = true;
          graph.cancel();
        }
        ++stepsCompleted_;
      });
      dep(diagBcast[static_cast<std::size_t>(k)], t);
      dep(uBcast[static_cast<std::size_t>(k)], t);
      dep(lBcast[static_cast<std::size_t>(k)], t);
      for (index_t ib = g.iStartBlk; ib < rb; ++ib) {
        for (index_t jb = g.jStartBlk; jb < cb; ++jb) {
          dep(gemmAt(k, ib, jb), t);
        }
      }
    }
  }

  schedStats_ = graph.execute(ThreadPool::global());

  if (!hooks && !schedStats_.cancelled) {
    stepsCompleted_ = nb;
  }
  if (tracing) {
    for (const TaskGraph::TaskRecord& rec : schedStats_.records) {
      if (rec.skipped || rec.step < 0 || rec.step >= nb) {
        continue;
      }
      IterationTrace& tr = traces[static_cast<std::size_t>(rec.step)];
      switch (rec.kind) {
        case TaskKind::kGetrf:
        case TaskKind::kDiagBcast:
          tr.diagSeconds += rec.seconds();
          break;
        case TaskKind::kTrsm:
          tr.trsmSeconds += rec.seconds();
          break;
        case TaskKind::kCast:
          tr.castSeconds += rec.seconds();
          break;
        case TaskKind::kPanelBcast:
          tr.bcastSeconds += rec.seconds();
          break;
        case TaskKind::kGemm:
          tr.gemmSeconds += rec.seconds();
          break;
        default:
          break;
      }
    }
  }
  return traces;
}

}  // namespace hplmxp
