#include "core/lu_dist.h"

#include <cstdint>
#include <cstring>
#include <string>

#include "blas/blas.h"
#include "util/timer.h"

namespace hplmxp {

using simmpi::broadcast;

namespace {

// Guard limits for the abnormal-value scans (config.guardPanels). The
// generator's matrices are diagonally dominant with O(1) off-diagonal
// entries, so legitimate FP16 panel values stay within a few units (the L
// panel is ~1/N); an exponent-bit flip lands at x * 2^16 or non-finite,
// far above kHalfGuardLimit. FP32 diagonal/trailing tiles legitimately
// reach ~N on the diagonal, so their ceiling is generous.
constexpr double kHalfGuardLimit = 64.0;
constexpr double kFloatGuardLimit = 1e8;

}  // namespace

DistLU::DistLU(DistContext& ctx, const HplaiConfig& config, BlasShim& shim)
    : ctx_(ctx), config_(config), shim_(shim) {
  const index_t b = config_.b;
  diagBuf_.allocate(b * b);
  const index_t panelBufs = config_.lookahead ? 2 : 1;
  for (index_t i = 0; i < panelBufs; ++i) {
    lHalf_[i].allocate(ctx_.localRows() * b);
    uHalf_[i].allocate(ctx_.localCols() * b);
  }
}

DistLU::StepGeom DistLU::geometry(index_t k) const {
  const BlockCyclic& layout = ctx_.layout();
  StepGeom g;
  g.k = k;
  g.pir = k % layout.pr();
  g.pic = k % layout.pc();
  g.iStartBlk = layout.firstLocalBlockRowAtOrAfter(ctx_.myRow(), k + 1);
  g.jStartBlk = layout.firstLocalBlockColAtOrAfter(ctx_.myCol(), k + 1);
  g.h = ctx_.localRows() - g.iStartBlk * config_.b;
  g.w = ctx_.localCols() - g.jStartBlk * config_.b;
  g.ownRow = ctx_.myRow() == g.pir;
  g.ownCol = ctx_.myCol() == g.pic;
  g.ownDiag = g.ownRow && g.ownCol;
  g.lkRow = layout.localBlockRow(k);
  g.lkCol = layout.localBlockCol(k);
  return g;
}

void DistLU::guardDiag(const StepGeom& g) const {
  const index_t b = config_.b;
  const blas::AbnormalScan s =
      blas::scanAbnormal(b, b, diagBuf_.data(), b, kFloatGuardLimit);
  if (s) {
    throw blas::AbnormalValueError(
        "LU step " + std::to_string(g.k) + " rank " +
        std::to_string(ctx_.rank()) + ": corrupted diagonal block: " +
        s.describe());
  }
}

void DistLU::guardHalfPanels(const StepGeom& g, int bufIdx) const {
  const index_t b = config_.b;
  if (g.w > 0) {
    const blas::AbnormalScan s = blas::scanAbnormal(
        g.w, b, uHalf_[bufIdx].data(), g.w, kHalfGuardLimit);
    if (s) {
      throw blas::AbnormalValueError(
          "LU step " + std::to_string(g.k) + " rank " +
          std::to_string(ctx_.rank()) + ": corrupted FP16 U panel: " +
          s.describe());
    }
  }
  if (g.h > 0) {
    const blas::AbnormalScan s = blas::scanAbnormal(
        g.h, b, lHalf_[bufIdx].data(), g.h, kHalfGuardLimit);
    if (s) {
      throw blas::AbnormalValueError(
          "LU step " + std::to_string(g.k) + " rank " +
          std::to_string(ctx_.rank()) + ": corrupted FP16 L panel: " +
          s.describe());
    }
  }
}

void DistLU::guardTile(index_t k, index_t m, index_t n, const float* tile,
                       index_t lda) const {
  const blas::AbnormalScan s =
      blas::scanAbnormal(m, n, tile, lda, kFloatGuardLimit);
  if (s) {
    throw blas::AbnormalValueError(
        "LU step " + std::to_string(k) + " rank " +
        std::to_string(ctx_.rank()) + ": corrupted trailing tile: " +
        s.describe());
  }
}

void DistLU::panelsPhase(const StepGeom& g, int bufIdx, float* localA,
                         index_t lda, IterationTrace* trace) {
  const index_t b = config_.b;
  Timer t;

  // ---- (1a) Diagonal Update --------------------------------------------
  if (g.ownDiag) {
    // Pack the diagonal block contiguously, factor, and write it back so
    // the local matrix ends up holding the final L/U entries.
    float* src = localA + g.lkRow * b + g.lkCol * b * lda;
    for (index_t j = 0; j < b; ++j) {
      std::memcpy(diagBuf_.data() + j * b, src + j * lda,
                  static_cast<std::size_t>(b) * sizeof(float));
    }
    if (shim_.vendor() == Vendor::kNvidia) {
      (void)shim_.getrfBufferSize(b, b);  // cuSOLVER two-step protocol
    }
    shim_.getrf(b, diagBuf_.data(), b);
    for (index_t j = 0; j < b; ++j) {
      std::memcpy(src + j * lda, diagBuf_.data() + j * b,
                  static_cast<std::size_t>(b) * sizeof(float));
    }
  }
  // Broadcast the factored diagonal along the owner's process row and
  // process column (synchronous tree; the paper neglects its cost).
  if (g.ownRow) {
    ctx_.rowComm().bcast(g.pic, diagBuf_.data(), b * b);
  }
  if (g.ownCol) {
    ctx_.colComm().bcast(g.pir, diagBuf_.data(), b * b);
  }
  if (trace != nullptr) {
    trace->diagSeconds += t.seconds();
  }

  // ---- (1b) Panel Update ------------------------------------------------
  // U row panel: grid row pir solves L11 * U(k, k+1:) = A(k, k+1:).
  if (g.ownRow && g.w > 0) {
    t.reset();
    float* panel = localA + g.lkRow * b + g.jStartBlk * b * lda;
    shim_.trsm(blas::Side::kLeft, blas::Uplo::kLower, blas::Diag::kUnit, b,
               g.w, 1.0f, diagBuf_.data(), b, panel, lda);
    if (trace != nullptr) {
      trace->trsmSeconds += t.seconds();
    }
    t.reset();
    blas::transCastToHalf(b, g.w, panel, lda, uHalf_[bufIdx].data(), g.w);
    if (trace != nullptr) {
      trace->castSeconds += t.seconds();
    }
  }
  // L column panel: grid column pic solves L(k+1:, k) * U11 = A(k+1:, k).
  if (g.ownCol && g.h > 0) {
    t.reset();
    float* panel = localA + g.iStartBlk * b + g.lkCol * b * lda;
    shim_.trsm(blas::Side::kRight, blas::Uplo::kUpper, blas::Diag::kNonUnit,
               g.h, b, 1.0f, diagBuf_.data(), b, panel, lda);
    if (trace != nullptr) {
      trace->trsmSeconds += t.seconds();
    }
    t.reset();
    blas::castToHalf(g.h, b, panel, lda, lHalf_[bufIdx].data(), g.h);
    if (trace != nullptr) {
      trace->castSeconds += t.seconds();
    }
  }

  // Panel broadcasts with the configured strategy: U down each process
  // column (root pir), L across each process row (root pic). Extents are
  // consistent within a column/row, so receivers size buffers locally.
  t.reset();
  if (g.w > 0) {
    broadcast(ctx_.colComm(), config_.panelBcast, g.pir,
              uHalf_[bufIdx].data(), g.w * config_.b);
  }
  if (g.h > 0) {
    broadcast(ctx_.rowComm(), config_.panelBcast, g.pic,
              lHalf_[bufIdx].data(), g.h * config_.b);
  }
  if (trace != nullptr) {
    trace->bcastSeconds += t.seconds();
  }

  // Self-healing guards: catch broadcast corruption (e.g. an injected SDC
  // bit flip) before the panels poison the trailing matrix.
  if (config_.guardPanels) {
    if (g.ownRow || g.ownCol) {
      guardDiag(g);
    }
    guardHalfPanels(g, bufIdx);
  }
}

void DistLU::updateRegion(const StepGeom& g, int bufIdx, float* localA,
                          index_t lda, index_t iBlk0, index_t jBlk0,
                          index_t rowBlocks, index_t colBlocks) {
  const index_t b = config_.b;
  const index_t totalRowBlocks = ctx_.localRows() / b - iBlk0;
  const index_t totalColBlocks = ctx_.localCols() / b - jBlk0;
  const index_t mBlocks =
      rowBlocks < 0 ? totalRowBlocks : std::min(rowBlocks, totalRowBlocks);
  const index_t nBlocks =
      colBlocks < 0 ? totalColBlocks : std::min(colBlocks, totalColBlocks);
  const index_t m = mBlocks * b;
  const index_t n = nBlocks * b;
  if (m <= 0 || n <= 0) {
    return;
  }
  const half16* lPtr = lHalf_[bufIdx].data() + (iBlk0 - g.iStartBlk) * b;
  const half16* uPtr = uHalf_[bufIdx].data() + (jBlk0 - g.jStartBlk) * b;
  float* cPtr = localA + iBlk0 * b + jBlk0 * b * lda;
  // C -= L * U^T (U was stored transposed by TRANS_CAST).
  shim_.gemmEx(blas::Trans::kNoTrans, blas::Trans::kTrans, m, n, b, -1.0f,
               lPtr, g.h, uPtr, g.w, 1.0f, cPtr, lda);
  if (config_.guardPanels) {
    guardTile(g.k, m, n, cPtr, lda);
  }
}

void DistLU::updateFull(const StepGeom& g, int bufIdx, float* localA,
                        index_t lda, IterationTrace* trace) {
  Timer t;
  updateRegion(g, bufIdx, localA, lda, g.iStartBlk, g.jStartBlk, -1, -1);
  if (trace != nullptr) {
    trace->gemmSeconds += t.seconds();
  }
}

void DistLU::updateStrips(const StepGeom& g, const StepGeom& next, int bufIdx,
                          float* localA, index_t lda) {
  // Row strip: the local rows of global block row k+1, across the full
  // trailing width — they are the first trailing block row on their owner.
  const bool ownNextRow = ctx_.myRow() == next.pir;
  const bool ownNextCol = ctx_.myCol() == next.pic;
  if (ownNextRow) {
    updateRegion(g, bufIdx, localA, lda, g.iStartBlk, g.jStartBlk, 1, -1);
  }
  if (ownNextCol) {
    // Skip the corner block if this rank owns both strips (it was covered
    // by the row strip above).
    const index_t iBlk0 = g.iStartBlk + (ownNextRow ? 1 : 0);
    updateRegion(g, bufIdx, localA, lda, iBlk0, g.jStartBlk, -1, 1);
  }
}

void DistLU::updateBulk(const StepGeom& g, const StepGeom& next, int bufIdx,
                        float* localA, index_t lda, IterationTrace* trace) {
  Timer t;
  const index_t iBlk0 =
      g.iStartBlk + (ctx_.myRow() == next.pir ? 1 : 0);
  const index_t jBlk0 =
      g.jStartBlk + (ctx_.myCol() == next.pic ? 1 : 0);
  updateRegion(g, bufIdx, localA, lda, iBlk0, jBlk0, -1, -1);
  if (trace != nullptr) {
    trace->gemmSeconds += t.seconds();
  }
}

bool DistLU::pollAbort(index_t k, double iterSeconds) {
  if (!progress_ && !rankProgress_) {
    return false;
  }
  // Rank 0 holds the monitor(s); its verdict is broadcast so every rank
  // stops at the same block step (the runs-at-scale early-termination
  // policy).
  std::uint8_t abort = 0;
  if (rankProgress_) {
    // Slow-rank detection: time how long each rank idles at a barrier. The
    // pacing (slowest) rank arrives last and waits ~0 while everyone else
    // waits for it, so max(waits) - waits[r] is rank r's lag this step.
    Timer waitTimer;
    ctx_.world().barrier();
    const double myWait = waitTimer.seconds();
    std::vector<double> waits(
        static_cast<std::size_t>(ctx_.world().size()), 0.0);
    ctx_.world().gather(0, &myWait, waits.data(), 1);
    if (ctx_.rank() == 0 && rankProgress_(k, waits)) {
      abort = 1;
    }
  }
  if (ctx_.rank() == 0 && progress_ && progress_(k, iterSeconds)) {
    abort = 1;
  }
  ctx_.world().bcast(0, &abort, 1);
  return abort != 0;
}

std::vector<IterationTrace> DistLU::factor(float* localA, index_t lda) {
  HPLMXP_REQUIRE(lda >= ctx_.localRows(), "lda too small for local matrix");
  aborted_ = false;
  stepsCompleted_ = 0;
  const index_t nb = ctx_.layout().globalBlocks();
  const bool tracing = config_.collectTrace && ctx_.rank() == 0;
  std::vector<IterationTrace> traces;
  if (tracing) {
    traces.resize(static_cast<std::size_t>(nb));
    for (index_t k = 0; k < nb; ++k) {
      traces[static_cast<std::size_t>(k)].k = k;
      traces[static_cast<std::size_t>(k)].trailingBlocks = nb - k - 1;
    }
  }
  auto traceAt = [&](index_t k) -> IterationTrace* {
    return tracing ? &traces[static_cast<std::size_t>(k)] : nullptr;
  };

  if (!config_.lookahead) {
    for (index_t k = 0; k < nb; ++k) {
      ctx_.world().barrier();  // Algorithm 1 line 5
      Timer iterTimer;
      const StepGeom g = geometry(k);
      panelsPhase(g, 0, localA, lda, traceAt(k));
      updateFull(g, 0, localA, lda, traceAt(k));
      ++stepsCompleted_;
      if (pollAbort(k, iterTimer.seconds())) {
        aborted_ = true;
        break;
      }
    }
    return traces;
  }

  // Look-ahead pipeline.
  StepGeom g = geometry(0);
  panelsPhase(g, 0, localA, lda, traceAt(0));
  for (index_t k = 0; k < nb; ++k) {
    Timer iterTimer;
    const int buf = static_cast<int>(k % 2);
    if (k + 1 < nb) {
      const StepGeom next = geometry(k + 1);
      updateStrips(g, next, buf, localA, lda);
      panelsPhase(next, 1 - buf, localA, lda, traceAt(k + 1));
      updateBulk(g, next, buf, localA, lda, traceAt(k));
      g = next;
    } else {
      updateFull(g, buf, localA, lda, traceAt(k));
    }
    ++stepsCompleted_;
    if (pollAbort(k, iterTimer.seconds())) {
      aborted_ = true;
      break;
    }
  }
  return traces;
}

}  // namespace hplmxp
