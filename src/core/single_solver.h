// Single-device mixed-precision solver: the one-GCD version of the
// benchmark (no grid, no communication). Used by the quickstart example,
// the slow-node mini-benchmark, and as a cross-check oracle for the
// distributed path in tests.
#pragma once

#include <vector>

#include "device/device.h"
#include "gen/matgen.h"
#include "util/common.h"

namespace hplmxp {

struct SingleSolveResult {
  index_t n = 0;
  index_t b = 0;
  double factorSeconds = 0.0;
  double irSeconds = 0.0;
  index_t irIterations = 0;
  bool converged = false;
  double residualInf = 0.0;
  double threshold = 0.0;
};

/// Solves A x = b for the generated problem with FP32/FP16 block LU plus
/// FP64 iterative refinement on one device. `x` receives the solution.
SingleSolveResult solveMixedSingle(const ProblemGenerator& gen, index_t b,
                                   Vendor vendor, std::vector<double>& x,
                                   index_t maxIrIterations = 50);

/// Factors an n x n FP32 matrix in place with the same mixed-precision
/// block algorithm (FP32 panels, FP16 GEMM): exposed for kernel-level
/// tests and the mini-benchmark scanner.
void factorMixedSingle(index_t n, index_t b, float* a, index_t lda,
                       Vendor vendor);

}  // namespace hplmxp
