// Single-device mixed-precision solver: the one-GCD version of the
// benchmark (no grid, no communication). Used by the quickstart example,
// the slow-node mini-benchmark, and as a cross-check oracle for the
// distributed path in tests.
//
// The factor and solve phases are split at the public API: the expensive
// FP32/FP16 block LU is captured in a reusable Factorization handle, and
// any number of right-hand sides can then be refined against it — one at a
// time (solveMixedSingle) or as a coalesced batch (solveManyMixedSingle).
// This factor-once/solve-many shape is what the serving subsystem
// (src/serve) builds its factor cache and request batching on.
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.h"
#include "gen/matgen.h"
#include "lowp/precision.h"
#include "util/buffer.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace hplmxp {

/// A completed mixed-precision factorization, ready for repeated solves.
///
/// Owns the in-place FP32 LU factors (unit-lower L and upper U share the
/// n x n panel array, lda == n) plus the scale metadata the HPL-AI
/// convergence criterion needs (||diag(A)||_inf). The FP16 panel casts are
/// factorization-transient on this single-device path — they exist only to
/// feed the trailing GEMM — so the handle retains the FP32 panels the
/// refinement solves actually read. Movable, not copyable: the cache hands
/// out shared ownership instead of duplicating panels.
struct Factorization {
  index_t n = 0;
  index_t b = 0;
  std::uint64_t seed = 0;  // problem seed the panels were generated from
  Vendor vendor = Vendor::kAmd;
  /// Storage precision the trailing-update GEMMs ran in. Factors at
  /// different rungs are different factors (different rounding), so this
  /// is part of the handle's identity — the serve-layer cache keys on it.
  lowp::StoragePrecision precision = lowp::StoragePrecision::kFp16;
  double factorSeconds = 0.0;
  double diagInfNorm = 0.0;  // max_i |A(i,i)| of the *unfactored* matrix
  Buffer<float> lu;          // n x n factors in place, lda == n

  /// Resident bytes of the handle (what the factor cache budgets).
  [[nodiscard]] std::size_t bytes() const {
    return sizeof(Factorization) + lu.bytes();
  }
};

struct SingleSolveResult {
  index_t n = 0;
  index_t b = 0;
  double factorSeconds = 0.0;
  double irSeconds = 0.0;
  index_t irIterations = 0;
  bool converged = false;
  double residualInf = 0.0;
  double threshold = 0.0;
};

/// Per-column outcome of a batched multi-RHS refinement.
struct SolveManyColumn {
  std::uint64_t rhsSeed = 0;
  index_t irIterations = 0;
  bool converged = false;
  double residualInf = 0.0;
  double threshold = 0.0;
  /// ||r||_inf after each residual evaluation (the IR trajectory); used by
  /// the equivalence tests and the serve report.
  std::vector<double> residualHistory;
};

/// Outcome of one batched multi-RHS refinement.
struct SolveManyResult {
  index_t n = 0;
  index_t b = 0;
  index_t k = 0;  // number of right-hand sides
  double solveSeconds = 0.0;
  std::vector<SolveManyColumn> columns;

  [[nodiscard]] bool allConverged() const {
    for (const SolveManyColumn& c : columns) {
      if (!c.converged) {
        return false;
      }
    }
    return true;
  }
};

/// Solves A x = b for the generated problem with FP32/FP16 block LU plus
/// FP64 iterative refinement on one device. `x` receives the solution.
SingleSolveResult solveMixedSingle(const ProblemGenerator& gen, index_t b,
                                   Vendor vendor, std::vector<double>& x,
                                   index_t maxIrIterations = 50);

/// Factors an n x n FP32 matrix in place with the same mixed-precision
/// block algorithm (FP32 panels, FP16 GEMM): exposed for kernel-level
/// tests and the mini-benchmark scanner. (The binary16 instantiation of
/// factorStorageSingle; bitwise-identical to the pre-ladder path.)
void factorMixedSingle(index_t n, index_t b, float* a, index_t lda,
                       Vendor vendor);

/// Precision-parameterized in-place factorization: FP32 panels + GETRF /
/// TRSM exactly as before, with the trailing update's CAST / TRANS_CAST /
/// GEMM running at the requested storage rung. The FP8 rungs go through
/// the per-tile-scaled casts, folding the two panel scales into the
/// GEMM's alpha (exact powers of two).
void factorStorageSingle(index_t n, index_t b, float* a, index_t lda,
                         Vendor vendor, lowp::StoragePrecision precision);

/// Factors the generated problem and returns the reusable handle: fills
/// the FP32 local matrix, runs the blocked mixed-precision factorization,
/// and caches the diagonal norm the convergence threshold needs. Callers
/// (and the serve-layer factor cache) can then solve any number of
/// right-hand sides without re-factoring or reaching into internals.
Factorization factorMixedSingle(const ProblemGenerator& gen, index_t b,
                                Vendor vendor);

/// Handle-returning flavor at an explicit storage rung.
Factorization factorStorageSingle(const ProblemGenerator& gen, index_t b,
                                  Vendor vendor,
                                  lowp::StoragePrecision precision);

/// Blocked multi-RHS iterative refinement against a completed
/// factorization. Right-hand side c is the rhs stream of
/// ProblemGenerator(rhsSeeds[c], n) — passing gen.seed() reproduces the
/// benchmark's own b vector. `xs` receives one solution vector per seed.
///
/// The correction solves go through the trsm-backed strsmMixed panel
/// kernel instead of a per-vector TRSV loop, and the FP64 residual rows
/// are regenerated once per iteration and shared across all still-active
/// columns. Convergence is tracked per column: a column that meets its
/// threshold is frozen (no further residuals or corrections) while its
/// batch-mates keep iterating. Every column's iteration count, residual
/// trajectory, and solution are bitwise identical to a k=1 solve of the
/// same rhs seed (tests/test_solve_many.cpp).
SolveManyResult solveManyMixedSingle(const Factorization& f,
                                     const ProblemGenerator& gen,
                                     const std::vector<std::uint64_t>& rhsSeeds,
                                     std::vector<std::vector<double>>& xs,
                                     index_t maxIrIterations = 50,
                                     ThreadPool* pool = nullptr);

}  // namespace hplmxp
