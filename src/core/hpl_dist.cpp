#include "core/hpl_dist.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "blas/gemm.h"
#include "blas/trsm.h"
#include "core/dist_context.h"
#include "core/dist_kernels.h"
#include "gen/matgen.h"
#include "simmpi/runtime.h"
#include "util/buffer.h"
#include "util/timer.h"

namespace hplmxp {

namespace {

constexpr simmpi::Tag kSwapTag = 900;

/// Per-rank engine for the pivoted FP64 factorization.
class DistHpl {
 public:
  DistHpl(DistContext& ctx, const HplDistConfig& cfg,
          const ProblemGenerator& gen)
      : ctx_(ctx), cfg_(cfg), gen_(gen), b_(cfg.b),
        lda_(std::max<index_t>(1, ctx.localRows())) {
    const BlockCyclic& layout = ctx_.layout();
    localA_.allocate(ctx_.localRows() * ctx_.localCols());
    for (index_t lj = 0; lj < ctx_.localCols() / b_; ++lj) {
      const index_t gj = layout.globalBlockCol(ctx_.myCol(), lj);
      for (index_t li = 0; li < ctx_.localRows() / b_; ++li) {
        const index_t gi = layout.globalBlockRow(ctx_.myRow(), li);
        gen_.fillTile<double>(gi * b_, gj * b_, b_, b_,
                              localA_.data() + li * b_ + lj * b_ * lda_,
                              lda_);
      }
    }
    diagBuf_.allocate(b_ * b_);
    lPanel_.allocate(ctx_.localRows() * b_);
    uPanel_.allocate(b_ * ctx_.localCols());
    pivots_.assign(static_cast<std::size_t>(cfg_.n), 0);
  }

  /// Factors P*A = L*U; returns the number of genuine row interchanges.
  index_t factor() {
    const index_t nb = cfg_.n / b_;
    index_t swaps = 0;
    for (index_t k = 0; k < nb; ++k) {
      std::vector<index_t> ipiv(static_cast<std::size_t>(b_), 0);
      const index_t pic = k % ctx_.layout().pc();
      if (ctx_.myCol() == pic) {
        panelFactor(k, ipiv);
      }
      // Everyone learns the panel's interchanges (HPL broadcasts ipiv with
      // the panel), then applies them to the columns outside the panel.
      ctx_.rowComm().bcast(pic, ipiv.data(), b_);
      for (index_t jj = 0; jj < b_; ++jj) {
        const index_t g = k * b_ + jj;
        pivots_[static_cast<std::size_t>(g)] = ipiv[static_cast<std::size_t>(jj)];
        swaps += ipiv[static_cast<std::size_t>(jj)] != g ? 1 : 0;
      }
      applySwapsOutsidePanel(k, ipiv);
      updateTrailing(k);
    }
    return swaps;
  }

  /// Solves A x = b using the factors and recorded interchanges.
  void solve(std::vector<double>& x) {
    const index_t n = cfg_.n;
    x.assign(static_cast<std::size_t>(n), 0.0);
    gen_.fillRhs<double>(0, n, x.data());
    for (index_t g = 0; g < n; ++g) {
      const index_t rp = pivots_[static_cast<std::size_t>(g)];
      if (rp != g) {
        std::swap(x[static_cast<std::size_t>(g)],
                  x[static_cast<std::size_t>(rp)]);
      }
    }
    distributedBlockTrsv<double>(ctx_, b_, blas::Uplo::kLower, localA_.data(),
                                 lda_, x);
    distributedBlockTrsv<double>(ctx_, b_, blas::Uplo::kUpper, localA_.data(),
                                 lda_, x);
  }

 private:
  [[nodiscard]] index_t ownerRowOfGlobal(index_t i) const {
    return (i / b_) % ctx_.layout().pr();
  }
  [[nodiscard]] index_t localRowOfGlobal(index_t i) const {
    return ((i / b_) / ctx_.layout().pr()) * b_ + i % b_;
  }

  /// Visits local element rows whose global row is > g, within the
  /// trailing area of step k (block rows >= k).
  template <typename Fn>
  void forEachLocalRowBelow(index_t k, index_t g, Fn&& fn) const {
    const BlockCyclic& layout = ctx_.layout();
    const index_t lbr = layout.localBlockRows(ctx_.myRow());
    for (index_t li = layout.firstLocalBlockRowAtOrAfter(ctx_.myRow(), k);
         li < lbr; ++li) {
      const index_t gi = layout.globalBlockRow(ctx_.myRow(), li);
      for (index_t r = 0; r < b_; ++r) {
        if (gi * b_ + r > g) {
          fn(li * b_ + r);
        }
      }
    }
  }

  /// Swaps global rows g <-> rp across local columns [col0, col0+width).
  /// Collective over the process column (grid rows exchange pairwise).
  void swapRows(index_t g, index_t rp, index_t col0, index_t width) {
    if (g == rp || width <= 0) {
      return;
    }
    const index_t gr1 = ownerRowOfGlobal(g);
    const index_t gr2 = ownerRowOfGlobal(rp);
    const bool own1 = ctx_.myRow() == gr1;
    const bool own2 = ctx_.myRow() == gr2;
    if (!own1 && !own2) {
      return;
    }
    auto packRow = [&](index_t lr, std::vector<double>& buf) {
      buf.resize(static_cast<std::size_t>(width));
      for (index_t c = 0; c < width; ++c) {
        buf[static_cast<std::size_t>(c)] = localA_[lr + (col0 + c) * lda_];
      }
    };
    auto unpackRow = [&](index_t lr, const std::vector<double>& buf) {
      for (index_t c = 0; c < width; ++c) {
        localA_[lr + (col0 + c) * lda_] = buf[static_cast<std::size_t>(c)];
      }
    };
    if (gr1 == gr2) {
      // Both rows local: plain swap.
      const index_t lr1 = localRowOfGlobal(g);
      const index_t lr2 = localRowOfGlobal(rp);
      for (index_t c = 0; c < width; ++c) {
        std::swap(localA_[lr1 + (col0 + c) * lda_],
                  localA_[lr2 + (col0 + c) * lda_]);
      }
      return;
    }
    // Exchange with the partner rank in the other grid row, same column.
    const index_t myGlobal = own1 ? g : rp;
    const index_t partnerGridRow = own1 ? gr2 : gr1;
    const index_t lr = localRowOfGlobal(myGlobal);
    std::vector<double> mine, theirs(static_cast<std::size_t>(width));
    packRow(lr, mine);
    ctx_.colComm().sendrecv(partnerGridRow, kSwapTag, mine.data(),
                            theirs.data(), width);
    unpackRow(lr, theirs);
  }

  /// Pivoted panel factorization of block column k (grid column k%Pc).
  void panelFactor(index_t k, std::vector<index_t>& ipiv) {
    const BlockCyclic& layout = ctx_.layout();
    const index_t lcol0 = layout.localBlockCol(k) * b_;
    std::vector<double> seg(static_cast<std::size_t>(b_));

    for (index_t jj = 0; jj < b_; ++jj) {
      const index_t g = k * b_ + jj;
      // Pivot search: max |A(i, g)| over i >= g (my local share).
      double best = -1.0;
      index_t bestRow = g;
      const double* colJ = localA_.data() + (lcol0 + jj) * lda_;
      forEachLocalRowBelow(k, g - 1, [&](index_t lr) {
        const double v = std::fabs(colJ[lr]);
        if (v > best) {
          best = v;
          bestRow = layout.globalBlockRow(ctx_.myRow(), lr / b_) * b_ +
                    lr % b_;
        }
      });
      const auto ml = ctx_.colComm().allreduceMaxLoc(best, bestRow);
      HPLMXP_REQUIRE(ml.value > 0.0, "HPL: singular matrix");
      ipiv[static_cast<std::size_t>(jj)] = ml.where;
      swapRows(g, ml.where, lcol0, b_);

      // Broadcast the pivot row's remaining panel segment (row g now holds
      // the pivot row) down the process column.
      const index_t ownerRow = ownerRowOfGlobal(g);
      const index_t segLen = b_ - jj;
      if (ctx_.myRow() == ownerRow) {
        const index_t lr = localRowOfGlobal(g);
        for (index_t c = 0; c < segLen; ++c) {
          seg[static_cast<std::size_t>(c)] =
              localA_[lr + (lcol0 + jj + c) * lda_];
        }
      }
      ctx_.colComm().bcast(ownerRow, seg.data(), segLen);
      const double pivot = seg[0];

      // Scale the multipliers and rank-1-update the rest of the panel.
      double* colMut = localA_.data() + (lcol0 + jj) * lda_;
      forEachLocalRowBelow(k, g, [&](index_t lr) {
        colMut[lr] /= pivot;
      });
      for (index_t c = 1; c < segLen; ++c) {
        double* colC = localA_.data() + (lcol0 + jj + c) * lda_;
        const double up = seg[static_cast<std::size_t>(c)];
        forEachLocalRowBelow(k, g, [&](index_t lr) {
          colC[lr] -= colMut[lr] * up;
        });
      }
    }
  }

  /// HPL's laswp: applies the panel's interchanges to every local column
  /// outside the panel itself.
  void applySwapsOutsidePanel(index_t k, const std::vector<index_t>& ipiv) {
    const BlockCyclic& layout = ctx_.layout();
    const bool ownPanel = ctx_.myCol() == k % layout.pc();
    const index_t lcol0 = ownPanel ? layout.localBlockCol(k) * b_ : 0;
    for (index_t jj = 0; jj < b_; ++jj) {
      const index_t g = k * b_ + jj;
      const index_t rp = ipiv[static_cast<std::size_t>(jj)];
      if (ownPanel) {
        swapRows(g, rp, 0, lcol0);
        swapRows(g, rp, lcol0 + b_, ctx_.localCols() - lcol0 - b_);
      } else {
        swapRows(g, rp, 0, ctx_.localCols());
      }
    }
  }

  /// TRSM + panel broadcasts + FP64 trailing GEMM of step k.
  void updateTrailing(index_t k) {
    const BlockCyclic& layout = ctx_.layout();
    const index_t pir = k % layout.pr();
    const index_t pic = k % layout.pc();
    const index_t iStartBlk =
        layout.firstLocalBlockRowAtOrAfter(ctx_.myRow(), k + 1);
    const index_t jStartBlk =
        layout.firstLocalBlockColAtOrAfter(ctx_.myCol(), k + 1);
    const index_t h = ctx_.localRows() - iStartBlk * b_;
    const index_t w = ctx_.localCols() - jStartBlk * b_;

    // Diagonal block to everyone in the owner's row (for the U TRSM).
    if (ctx_.myRow() == pir) {
      if (ctx_.myCol() == pic) {
        const double* src = localA_.data() + layout.localBlockRow(k) * b_ +
                            layout.localBlockCol(k) * b_ * lda_;
        for (index_t j = 0; j < b_; ++j) {
          std::memcpy(diagBuf_.data() + j * b_, src + j * lda_,
                      static_cast<std::size_t>(b_) * sizeof(double));
        }
      }
      ctx_.rowComm().bcast(pic, diagBuf_.data(), b_ * b_);
      if (w > 0) {
        double* panel = localA_.data() + layout.localBlockRow(k) * b_ +
                        jStartBlk * b_ * lda_;
        blas::dtrsm(blas::Side::kLeft, blas::Uplo::kLower, blas::Diag::kUnit,
                    b_, w, 1.0, diagBuf_.data(), b_, panel, lda_);
        // Pack U (b x w) contiguously for the broadcast.
        for (index_t c = 0; c < w; ++c) {
          std::memcpy(uPanel_.data() + c * b_,
                      panel + c * lda_,
                      static_cast<std::size_t>(b_) * sizeof(double));
        }
      }
    }
    if (w > 0) {
      simmpi::broadcast(ctx_.colComm(), cfg_.panelBcast, pir, uPanel_.data(),
                        w * b_);
    }

    // L panel (the freshly factored multipliers) along the rows.
    if (ctx_.myCol() == pic && h > 0) {
      const double* src = localA_.data() + iStartBlk * b_ +
                          layout.localBlockCol(k) * b_ * lda_;
      for (index_t c = 0; c < b_; ++c) {
        std::memcpy(lPanel_.data() + c * h, src + c * lda_,
                    static_cast<std::size_t>(h) * sizeof(double));
      }
    }
    if (h > 0) {
      simmpi::broadcast(ctx_.rowComm(), cfg_.panelBcast, pic, lPanel_.data(),
                        h * b_);
    }

    if (h > 0 && w > 0) {
      blas::dgemm(blas::Trans::kNoTrans, blas::Trans::kNoTrans, h, w, b_,
                  -1.0, lPanel_.data(), h, uPanel_.data(), b_, 1.0,
                  localA_.data() + iStartBlk * b_ + jStartBlk * b_ * lda_,
                  lda_);
    }
  }

  DistContext& ctx_;
  const HplDistConfig& cfg_;
  const ProblemGenerator& gen_;
  index_t b_;
  index_t lda_;
  Buffer<double> localA_;
  Buffer<double> diagBuf_;
  Buffer<double> lPanel_;
  Buffer<double> uPanel_;
  std::vector<index_t> pivots_;
};

}  // namespace

HplDistResult runHplDistOnComm(simmpi::Comm& world,
                               const HplDistConfig& config,
                               std::vector<double>* solutionOut) {
  config.validate();
  HplaiConfig layoutCfg;  // reuse the layout/context plumbing
  layoutCfg.n = config.n;
  layoutCfg.b = config.b;
  layoutCfg.pr = config.pr;
  layoutCfg.pc = config.pc;
  DistContext ctx(world, layoutCfg);
  const ProblemGenerator gen(config.seed, config.n, config.diagShift);

  DistHpl engine(ctx, config, gen);
  world.barrier();
  Timer timer;
  const index_t swaps = engine.factor();
  world.barrier();
  const double factorSeconds = timer.seconds();

  timer.reset();
  std::vector<double> x;
  engine.solve(x);
  world.barrier();
  const double solveSeconds = timer.seconds();

  // HPL validity check against the regenerated (unpermuted) system.
  std::vector<double> r;
  distributedResidual(ctx, gen, x, r);
  double rInf = 0.0;
  double xInf = 0.0;
  for (index_t i = 0; i < config.n; ++i) {
    rInf = std::max(rInf, std::fabs(r[static_cast<std::size_t>(i)]));
    xInf = std::max(xInf, std::fabs(x[static_cast<std::size_t>(i)]));
  }
  const double aInf = distributedMatrixInfNorm(ctx, gen);
  const double bInf = gen.rhsInfNorm();
  constexpr double kEps = std::numeric_limits<double>::epsilon();

  HplDistResult result;
  result.n = config.n;
  result.b = config.b;
  result.ranks = world.size();
  result.rowSwaps = swaps;
  result.residualInf = rInf;
  result.scaledResidual =
      rInf / (kEps * (aInf * xInf + bInf) * static_cast<double>(config.n));

  double times[2] = {factorSeconds, solveSeconds};
  world.bcast(0, times, 2);
  result.factorSeconds = times[0];
  result.solveSeconds = times[1];

  if (solutionOut != nullptr) {
    *solutionOut = std::move(x);
  }
  return result;
}

HplDistResult runHplDist(const HplDistConfig& config,
                         std::vector<double>* solutionOut) {
  HplDistResult rank0;
  std::vector<double> solution;
  simmpi::run(config.worldSize(), [&](simmpi::Comm& world) {
    std::vector<double> local;
    HplDistResult r = runHplDistOnComm(world, config, &local);
    if (world.rank() == 0) {
      rank0 = r;
      solution = std::move(local);
    }
  });
  if (solutionOut != nullptr) {
    *solutionOut = std::move(solution);
  }
  return rank0;
}

}  // namespace hplmxp
