// Distributed FP64 HPL baseline: right-looking block LU WITH partial
// pivoting over the same 2D block-cyclic layout and in-process runtime as
// the mixed-precision benchmark.
//
// This is the comparator the paper measures HPL-AI against (Summit:
// 1.411 EFLOPS HPL-AI vs 148.6 PFLOPS HPL = 9.5x). Functionally it differs
// from Algorithm 1 in exactly the ways HPL differs from HPL-AI:
//
//   * everything is FP64 (panels, trailing GEMM, solve),
//   * the panel factorization pivots: per elimination column, a MAXLOC
//     Allreduce down the process column finds the pivot row, the row swap
//     executes across the whole process row (panel immediately, remaining
//     columns after the panel via the recorded ipiv — HPL's laswp),
//   * the solution applies the recorded interchanges to b before the
//     distributed triangular solves,
//   * validity uses the classic HPL scaled residual
//     ||Ax-b||_inf / (eps * (||A||_inf ||x||_inf + ||b||_inf) * N) < 16.
#pragma once

#include <cstdint>
#include <vector>

#include "simmpi/comm.h"
#include "simmpi/ring_bcast.h"
#include "util/common.h"

namespace hplmxp {

struct HplDistConfig {
  index_t n = 0;
  index_t b = 0;
  index_t pr = 1;
  index_t pc = 1;
  std::uint64_t seed = 42;
  /// Diagonal shift of the generated matrix; the default (-1 => +N) gives
  /// the benchmark matrix (pivoting then never swaps); 0 gives a plain
  /// random matrix where interchanges genuinely engage.
  double diagShift = -1.0;
  simmpi::BcastStrategy panelBcast = simmpi::BcastStrategy::kBcast;

  [[nodiscard]] index_t worldSize() const { return pr * pc; }
  void validate() const {
    HPLMXP_REQUIRE(n > 0 && b > 0 && n % b == 0,
                   "N must be a positive multiple of B");
    HPLMXP_REQUIRE(pr > 0 && pc > 0, "grid dims must be positive");
    HPLMXP_REQUIRE(n / b >= std::max(pr, pc),
                   "need at least one block row/col per grid row/col");
  }
};

struct HplDistResult {
  index_t n = 0;
  index_t b = 0;
  index_t ranks = 0;
  double factorSeconds = 0.0;
  double solveSeconds = 0.0;
  index_t rowSwaps = 0;  // interchanges that actually moved rows
  double residualInf = 0.0;
  double scaledResidual = 0.0;
  [[nodiscard]] bool passed() const { return scaledResidual < 16.0; }
  /// HPL flop convention: (2/3) n^3 + 2 n^2 over factor+solve time.
  [[nodiscard]] double gflops() const {
    const double d = static_cast<double>(n);
    const double t = factorSeconds + solveSeconds;
    return t > 0.0 ? ((2.0 / 3.0) * d * d * d + 2.0 * d * d) / t / 1e9 : 0.0;
  }
};

/// Runs distributed FP64 HPL on an existing communicator (collective).
HplDistResult runHplDistOnComm(simmpi::Comm& world,
                               const HplDistConfig& config,
                               std::vector<double>* solutionOut = nullptr);

/// Spins up config.pr*config.pc ranks and runs the baseline.
HplDistResult runHplDist(const HplDistConfig& config,
                         std::vector<double>* solutionOut = nullptr);

}  // namespace hplmxp
