#include "core/precision_ladder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "blas/trsv.h"
#include "util/buffer.h"
#include "util/timer.h"

namespace hplmxp {

namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

/// HPL-AI convergence threshold (Algorithm 1, line 44).
double hplaiThreshold(index_t n, double diagInf, double xInf, double bInf) {
  return 8.0 * static_cast<double>(n) * kEps * (2.0 * diagInf * xInf + bInf);
}

/// FP64 residual r = b - A x by row regeneration; returns ||r||_inf and
/// fills xInf. Sequential accumulation: deterministic.
double residualInfNorm(const ProblemGenerator& gen,
                       const std::vector<double>& b,
                       const std::vector<double>& x, std::vector<double>& r,
                       double& xInf) {
  const index_t n = gen.n();
  Buffer<double> arow(n);
  double rInf = 0.0;
  xInf = 0.0;
  for (index_t i = 0; i < n; ++i) {
    gen.fillTile<double>(i, 0, 1, n, arow.data(), 1);
    double acc = b[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < n; ++j) {
      acc -= arow[j] * x[static_cast<std::size_t>(j)];
    }
    r[static_cast<std::size_t>(i)] = acc;
    rInf = std::max(rInf, std::fabs(acc));
    xInf = std::max(xInf, std::fabs(x[static_cast<std::size_t>(i)]));
  }
  return rInf;
}

/// Divergence classifier over an IR residual trajectory: non-finite
/// anywhere, or the final residual blew up well past the best one seen.
bool trajectoryDiverged(const std::vector<double>& history) {
  if (history.empty()) {
    return false;
  }
  double best = std::numeric_limits<double>::infinity();
  for (double h : history) {
    if (!std::isfinite(h)) {
      return true;
    }
    best = std::min(best, h);
  }
  return history.back() > 1e3 * best && history.back() > history.front();
}

}  // namespace

const char* toString(LadderRefiner r) {
  return r == LadderRefiner::kGmresIr ? "gmres-ir" : "ir";
}

ConditioningProbe probeConditioning(const ProblemGenerator& gen,
                                    index_t maxRows) {
  const index_t n = gen.n();
  ConditioningProbe probe;
  if (n <= 0 || maxRows <= 0) {
    return probe;
  }
  const index_t rows = std::min(maxRows, n);
  Buffer<double> arow(n);
  probe.minDominance = std::numeric_limits<double>::infinity();
  for (index_t s = 0; s < rows; ++s) {
    // Evenly spaced fixed sample: row floor(s * n / rows).
    const index_t i = (s * n) / rows;
    gen.fillTile<double>(i, 0, 1, n, arow.data(), 1);
    double diag = 0.0;
    double offSum = 0.0;
    for (index_t j = 0; j < n; ++j) {
      if (j == i) {
        diag = std::fabs(arow[j]);
      } else {
        offSum += std::fabs(arow[j]);
      }
    }
    const double ratio =
        offSum > 0.0 ? diag / offSum
                     : std::numeric_limits<double>::infinity();
    probe.minDominance = std::min(probe.minDominance, ratio);
  }
  probe.rowsSampled = rows;
  return probe;
}

LadderChoice chooseRung(const ConditioningProbe& probe) {
  // Thresholds calibrated on the generator family at n = 256..512 (see
  // tests/test_precision_ladder.cpp): measured convergence gives FP8
  // rungs converging down to dominance ~0.12, bf16 to ~0.06, fp16 to
  // ~0.06 fast / ~0.03 diverging. Each cut sits ~2x above the measured
  // cliff so the opening move rarely wastes a factorization. The
  // benchmark default (+N shift) probes ~3.9 and opens at fp8e5m2 — the
  // frontier configuration.
  const double d = probe.minDominance;
  LadderChoice choice;
  if (d >= 2.0) {
    choice.rung = lowp::StoragePrecision::kFp8E5M2;
  } else if (d >= 0.5) {
    choice.rung = lowp::StoragePrecision::kFp8E4M3;
  } else if (d >= 0.15) {
    choice.rung = lowp::StoragePrecision::kBf16;
  } else {
    choice.rung = lowp::StoragePrecision::kFp16;
    // Far below the fp16 IR cliff: classical IR on no-pivot factors is
    // at risk even at the top rung — schedule the GMRES-IR path, which
    // tolerates a worse preconditioner.
    if (d < 0.04) {
      choice.refiner = LadderRefiner::kGmresIr;
    }
  }
  return choice;
}

GmresSingleResult refineGmresSingle(const Factorization& f,
                                    const ProblemGenerator& gen,
                                    std::vector<double>& x, index_t restart,
                                    index_t maxOuter) {
  const index_t n = f.n;
  HPLMXP_REQUIRE(gen.n() == n, "factorization / generator order mismatch");
  HPLMXP_REQUIRE(gen.seed() == f.seed,
                 "factorization was built from a different problem seed");
  HPLMXP_REQUIRE(restart >= 1 && maxOuter >= 1,
                 "GMRES needs positive restart and outer budget");
  const index_t m = std::min(restart, n);

  GmresSingleResult result;
  std::vector<double> b(static_cast<std::size_t>(n));
  gen.fillRhs<double>(0, n, b.data());
  const double bInf = gen.rhsInfNorm();
  if (x.size() != static_cast<std::size_t>(n)) {
    x.assign(static_cast<std::size_t>(n), 0.0);
  }

  std::vector<double> r(static_cast<std::size_t>(n));
  Buffer<double> arow(n);
  // Krylov basis V (m+1 columns) and preconditioned directions Z (m
  // columns): Z[j] = M^{-1} V[j], solution update lives in span(Z).
  std::vector<std::vector<double>> V(
      static_cast<std::size_t>(m + 1),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  std::vector<std::vector<double>> Z(
      static_cast<std::size_t>(m),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  std::vector<double> h(static_cast<std::size_t>((m + 1) * m), 0.0);
  std::vector<double> cs(static_cast<std::size_t>(m), 0.0);
  std::vector<double> sn(static_cast<std::size_t>(m), 0.0);
  std::vector<double> g(static_cast<std::size_t>(m + 1), 0.0);
  auto H = [&](index_t i, index_t j) -> double& {
    return h[static_cast<std::size_t>(i + j * (m + 1))];
  };

  for (index_t outer = 0; outer < maxOuter; ++outer) {
    double xInf = 0.0;
    const double rInf = residualInfNorm(gen, b, x, r, xInf);
    result.residualInf = rInf;
    result.threshold = hplaiThreshold(n, f.diagInfNorm, xInf, bInf);
    result.residualHistory.push_back(rInf);
    if (rInf < result.threshold) {
      result.converged = true;
      return result;
    }

    double beta = 0.0;
    for (index_t i = 0; i < n; ++i) {
      beta += r[static_cast<std::size_t>(i)] *
              r[static_cast<std::size_t>(i)];
    }
    beta = std::sqrt(beta);
    if (!(beta > 0.0) || !std::isfinite(beta)) {
      return result;  // exact or broken residual: nothing GMRES can do
    }
    for (index_t i = 0; i < n; ++i) {
      V[0][static_cast<std::size_t>(i)] =
          r[static_cast<std::size_t>(i)] / beta;
    }
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    index_t steps = 0;
    for (index_t j = 0; j < m; ++j) {
      // z = M^{-1} v_j through the FP32 factors (the paper's TRSV pair).
      Z[static_cast<std::size_t>(j)] = V[static_cast<std::size_t>(j)];
      double* z = Z[static_cast<std::size_t>(j)].data();
      blas::strsvMixed(blas::Uplo::kLower, blas::Diag::kUnit, n,
                       f.lu.data(), n, z);
      blas::strsvMixed(blas::Uplo::kUpper, blas::Diag::kNonUnit, n,
                       f.lu.data(), n, z);
      // w = A z, FP64 row regeneration.
      std::vector<double>& w = V[static_cast<std::size_t>(j + 1)];
      for (index_t i = 0; i < n; ++i) {
        gen.fillTile<double>(i, 0, 1, n, arow.data(), 1);
        double acc = 0.0;
        for (index_t l = 0; l < n; ++l) {
          acc += arow[l] * z[static_cast<std::size_t>(l)];
        }
        w[static_cast<std::size_t>(i)] = acc;
      }
      // Modified Gram-Schmidt.
      for (index_t i = 0; i <= j; ++i) {
        double dot = 0.0;
        const double* vi = V[static_cast<std::size_t>(i)].data();
        for (index_t l = 0; l < n; ++l) {
          dot += vi[static_cast<std::size_t>(l)] *
                 w[static_cast<std::size_t>(l)];
        }
        H(i, j) = dot;
        for (index_t l = 0; l < n; ++l) {
          w[static_cast<std::size_t>(l)] -=
              dot * vi[static_cast<std::size_t>(l)];
        }
      }
      double wNorm = 0.0;
      for (index_t l = 0; l < n; ++l) {
        wNorm += w[static_cast<std::size_t>(l)] *
                 w[static_cast<std::size_t>(l)];
      }
      wNorm = std::sqrt(wNorm);
      H(j + 1, j) = wNorm;
      ++steps;
      ++result.iterations;
      const bool breakdown = !(wNorm > 0.0) || !std::isfinite(wNorm);
      if (!breakdown) {
        for (index_t l = 0; l < n; ++l) {
          w[static_cast<std::size_t>(l)] /= wNorm;
        }
      }
      // Apply the accumulated Givens rotations to the new column, then
      // form the one annihilating H(j+1, j).
      for (index_t i = 0; i < j; ++i) {
        const double t = cs[static_cast<std::size_t>(i)] * H(i, j) +
                         sn[static_cast<std::size_t>(i)] * H(i + 1, j);
        H(i + 1, j) = -sn[static_cast<std::size_t>(i)] * H(i, j) +
                      cs[static_cast<std::size_t>(i)] * H(i + 1, j);
        H(i, j) = t;
      }
      const double denom =
          std::sqrt(H(j, j) * H(j, j) + H(j + 1, j) * H(j + 1, j));
      if (denom > 0.0) {
        cs[static_cast<std::size_t>(j)] = H(j, j) / denom;
        sn[static_cast<std::size_t>(j)] = H(j + 1, j) / denom;
      } else {
        cs[static_cast<std::size_t>(j)] = 1.0;
        sn[static_cast<std::size_t>(j)] = 0.0;
      }
      H(j, j) = cs[static_cast<std::size_t>(j)] * H(j, j) +
                sn[static_cast<std::size_t>(j)] * H(j + 1, j);
      H(j + 1, j) = 0.0;
      g[static_cast<std::size_t>(j + 1)] =
          -sn[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] =
          cs[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      if (breakdown ||
          std::fabs(g[static_cast<std::size_t>(j + 1)]) < 1e-14 * beta) {
        break;
      }
    }

    // Back-substitute the least-squares system and update x in span(Z).
    std::vector<double> y(static_cast<std::size_t>(steps), 0.0);
    for (index_t i = steps - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (index_t l = i + 1; l < steps; ++l) {
        acc -= H(i, l) * y[static_cast<std::size_t>(l)];
      }
      const double hii = H(i, i);
      y[static_cast<std::size_t>(i)] = hii != 0.0 ? acc / hii : 0.0;
    }
    for (index_t jcol = 0; jcol < steps; ++jcol) {
      const double yj = y[static_cast<std::size_t>(jcol)];
      const double* z = Z[static_cast<std::size_t>(jcol)].data();
      for (index_t i = 0; i < n; ++i) {
        x[static_cast<std::size_t>(i)] +=
            yj * z[static_cast<std::size_t>(i)];
      }
    }
  }

  // Final check after the last outer cycle.
  double xInf = 0.0;
  const double rInf = residualInfNorm(gen, b, x, r, xInf);
  result.residualInf = rInf;
  result.threshold = hplaiThreshold(n, f.diagInfNorm, xInf, bInf);
  result.residualHistory.push_back(rInf);
  result.converged = rInf < result.threshold;
  return result;
}

LadderResult solveLadderSingle(const ProblemGenerator& gen, index_t b,
                               Vendor vendor, const LadderPolicy& policy) {
  LadderResult result;
  result.n = gen.n();
  result.b = b;
  result.probe = probeConditioning(gen, policy.probeRows);

  LadderChoice choice = chooseRung(result.probe);
  if (policy.forcedStart.has_value()) {
    choice.rung = *policy.forcedStart;
    choice.refiner = LadderRefiner::kIr;  // forced rungs start classical
  }
  if (!policy.allowGmres) {
    choice.refiner = LadderRefiner::kIr;
  }
  result.startRung = choice.rung;

  lowp::StoragePrecision rung = choice.rung;
  for (;;) {
    const Factorization f = factorStorageSingle(gen, b, vendor, rung);
    result.finalRung = rung;

    RungAttempt attempt;
    attempt.precision = rung;
    attempt.factorSeconds = f.factorSeconds;

    const bool topRung = rung == lowp::StoragePrecision::kFp16;
    const bool goStraightToGmres =
        topRung && choice.refiner == LadderRefiner::kGmresIr;

    if (!goStraightToGmres) {
      attempt.refiner = LadderRefiner::kIr;
      std::vector<std::vector<double>> xs;
      Timer timer;
      const SolveManyResult many = solveManyMixedSingle(
          f, gen, {gen.seed()}, xs, policy.maxIrIterationsPerRung);
      attempt.solveSeconds = timer.seconds();
      const SolveManyColumn& col = many.columns[0];
      attempt.irIterations = col.irIterations;
      attempt.converged = col.converged;
      attempt.residualInf = col.residualInf;
      attempt.threshold = col.threshold;
      attempt.residualHistory = col.residualHistory;
      attempt.diverged = !col.converged &&
                         trajectoryDiverged(col.residualHistory);
      result.x = std::move(xs[0]);
      if (attempt.converged) {
        result.converged = true;
        result.residualInf = attempt.residualInf;
        result.threshold = attempt.threshold;
        result.attempts.push_back(std::move(attempt));
        return result;
      }
      result.attempts.push_back(std::move(attempt));
    }

    if (!topRung) {
      rung = *lowp::nextRungUp(rung);
      ++result.escalations;
      continue;
    }

    // Top of the ladder. GMRES-IR on the same fp16 factors is the last
    // resort; a diverged classical trajectory restarts from zero rather
    // than polishing a blown-up iterate.
    if (policy.allowGmres) {
      RungAttempt ga;
      ga.precision = rung;
      ga.refiner = LadderRefiner::kGmresIr;
      ga.factorSeconds = goStraightToGmres ? f.factorSeconds : 0.0;
      if (result.x.empty() ||
          (!result.attempts.empty() && result.attempts.back().diverged)) {
        result.x.assign(static_cast<std::size_t>(result.n), 0.0);
      }
      Timer timer;
      const GmresSingleResult gr = refineGmresSingle(
          f, gen, result.x, policy.gmresRestart, policy.gmresMaxOuter);
      ga.solveSeconds = timer.seconds();
      ga.irIterations = gr.iterations;
      ga.converged = gr.converged;
      ga.residualInf = gr.residualInf;
      ga.threshold = gr.threshold;
      ga.residualHistory = gr.residualHistory;
      result.converged = gr.converged;
      result.residualInf = gr.residualInf;
      result.threshold = gr.threshold;
      result.usedGmres = true;
      result.attempts.push_back(std::move(ga));
    } else if (!result.attempts.empty()) {
      result.residualInf = result.attempts.back().residualInf;
      result.threshold = result.attempts.back().threshold;
    }
    return result;
  }
}

}  // namespace hplmxp
