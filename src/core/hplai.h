// The HPL-AI benchmark driver (Algorithm 1 end to end).
//
// Per rank: generate the local piece of A in FP64 by LCG regeneration,
// narrow it to FP32 ("copy to the GPU" — the whole local matrix is device
// resident, Finding 1), run the distributed mixed-precision block LU, then
// iterative refinement in FP64 until the HPL-AI criterion is met, and
// report effective FLOP/s using the HPL-AI flop convention
// (2/3 N^3 + 3/2 N^2 over the *total* wall time including refinement).
#pragma once

#include <vector>

#include "core/config.h"
#include "simmpi/comm.h"

namespace hplmxp {

/// Runs the full benchmark on an existing communicator (one call per rank;
/// collective). Every rank returns the same result (timings from rank 0).
/// If `solutionOut` is non-null it receives the FP64 solution vector.
HplaiResult runHplaiOnComm(simmpi::Comm& world, const HplaiConfig& config,
                           std::vector<double>* solutionOut = nullptr);

/// Convenience wrapper: spins up config.pr*config.pc ranks on the simmpi
/// runtime, runs the benchmark, and returns rank 0's result.
HplaiResult runHplai(const HplaiConfig& config,
                     std::vector<double>* solutionOut = nullptr);

}  // namespace hplmxp
