// Solution verification helpers shared by tests, examples and benches.
#pragma once

#include <vector>

#include "gen/matgen.h"
#include "util/common.h"

namespace hplmxp {

/// ||b - A x||_inf computed densely in FP64 by regeneration. O(N^2).
double residualInfDense(const ProblemGenerator& gen,
                        const std::vector<double>& x);

/// The HPL-AI line-44 threshold for the given problem and ||x||_inf.
double hplaiThreshold(const ProblemGenerator& gen, double xInf);

/// ||x||_inf.
double infNorm(const std::vector<double>& x);

/// True when x satisfies the HPL-AI convergence criterion.
bool hplaiValid(const ProblemGenerator& gen, const std::vector<double>& x);

}  // namespace hplmxp
