// Shared distributed kernels used by both the HPL-AI refinement path and
// the FP64 HPL baseline: the regenerate-and-Allreduce residual GEMV and
// the distributed block triangular solve.
#pragma once

#include <string>
#include <vector>

#include "blas/scan.h"
#include "blas/trsv.h"
#include "blas/types.h"
#include "core/dist_context.h"
#include "gen/matgen.h"
#include "util/buffer.h"

namespace hplmxp {

/// r = b - A*x in FP64 with A regenerated tile-by-tile from the generator;
/// each rank covers its owned blocks, one Allreduce sums the partials, and
/// every rank adds its regenerated copy of b. All ranks return the full r.
void distributedResidual(DistContext& ctx, const ProblemGenerator& gen,
                         const std::vector<double>& x,
                         std::vector<double>& r);

namespace detail {
/// acc[0:m) += block(m x n) * y with FP64 accumulation; TFactor is the
/// stored factor precision (float for HPL-AI, double for HPL).
template <typename TFactor>
void gemvAccum(index_t m, index_t n, const TFactor* block, index_t lda,
               const double* y, double* acc) {
  for (index_t j = 0; j < n; ++j) {
    const TFactor* col = block + j * lda;
    const double yj = y[j];
    for (index_t i = 0; i < m; ++i) {
      acc[i] += static_cast<double>(col[i]) * yj;
    }
  }
}

inline void trsvMixedDispatch(blas::Uplo uplo, blas::Diag diag, index_t n,
                              const float* a, index_t lda, double* x) {
  blas::strsvMixed(uplo, diag, n, a, lda, x);
}
inline void trsvMixedDispatch(blas::Uplo uplo, blas::Diag diag, index_t n,
                              const double* a, index_t lda, double* x) {
  blas::dtrsv(uplo, diag, n, a, lda, x);
}
}  // namespace detail

/// Distributed block TRSV: solves op(T) d = rhs in place, where T is the
/// unit-lower (kLower) or upper (kUpper) triangular factor stored
/// block-cyclically in `localLU` (precision TFactor; the vector and all
/// accumulation are FP64). `rhs` is replicated; every rank finishes with
/// the full solution.
///
/// Step k: partial off-diagonal contributions for block row k are summed
/// across the owning process row, the diagonal owner solves the B x B
/// triangle, the segment is broadcast world-wide, and owners of column k
/// push updates into their later rows — the communication pattern of
/// Algorithm 1's TRSV phase.
template <typename TFactor>
void distributedBlockTrsv(DistContext& ctx, index_t b, blas::Uplo uplo,
                          const TFactor* localLU, index_t lda,
                          std::vector<double>& rhs) {
  const BlockCyclic& layout = ctx.layout();
  const index_t n = layout.n();
  const index_t nb = layout.globalBlocks();
  HPLMXP_REQUIRE(static_cast<index_t>(rhs.size()) == n, "rhs size mismatch");
  HPLMXP_REQUIRE(b == layout.blockSize(), "block size mismatch");

  std::vector<double> pacc(static_cast<std::size_t>(n), 0.0);
  const bool lower = uplo == blas::Uplo::kLower;

  for (index_t step = 0; step < nb; ++step) {
    const index_t k = lower ? step : nb - 1 - step;
    const index_t pir = k % layout.pr();
    const index_t pic = k % layout.pc();

    if (ctx.myRow() == pir) {
      ctx.rowComm().allreduceSum(pacc.data() + k * b, b);
      if (ctx.myCol() == pic) {
        double* y = rhs.data() + k * b;
        const double* acc = pacc.data() + k * b;
        for (index_t i = 0; i < b; ++i) {
          y[i] -= acc[i];
        }
        const TFactor* diag = localLU + layout.localBlockRow(k) * b +
                              layout.localBlockCol(k) * b * lda;
        detail::trsvMixedDispatch(
            uplo, lower ? blas::Diag::kUnit : blas::Diag::kNonUnit, b, diag,
            lda, y);
      }
    }
    ctx.world().bcast(ctx.rankAt(pir, pic), rhs.data() + k * b, b);

    if (ctx.myCol() == pic) {
      const index_t lj = layout.localBlockCol(k);
      const index_t lbr = layout.localBlockRows(ctx.myRow());
      for (index_t li = 0; li < lbr; ++li) {
        const index_t gi = layout.globalBlockRow(ctx.myRow(), li);
        if ((lower && gi > k) || (!lower && gi < k)) {
          detail::gemvAccum(b, b, localLU + li * b + lj * b * lda, lda,
                            rhs.data() + k * b, pacc.data() + gi * b);
        }
      }
    }
  }
}

/// y = A*x (FP64, regenerated A) distributed over owned blocks with one
/// Allreduce: the matrix-vector product used by the GMRES refiner.
void distributedMatVec(DistContext& ctx, const ProblemGenerator& gen,
                       const std::vector<double>& x, std::vector<double>& y);

/// ||A||_inf computed by regeneration over owned blocks + one Allreduce
/// (row sums) — needed by the HPL validity check.
double distributedMatrixInfNorm(DistContext& ctx,
                                const ProblemGenerator& gen);

/// Guard scan for replicated FP64 vectors (residuals, corrections): throws
/// blas::AbnormalValueError naming `what` when any entry is non-finite or
/// exceeds `magnitudeLimit`. A corrupted residual poisons every rank
/// identically (the Allreduce replicates it), so one local scan suffices.
void guardVector(const char* what, const std::vector<double>& v,
                 double magnitudeLimit);

}  // namespace hplmxp
