// Distributed GPU-style block LU factorization without pivoting —
// part (1) of Algorithm 1.
//
// Each iteration k:
//   (1a) Diagonal Update: the owner of A(k,k) factors it with no-pivot
//        GETRF (FP32) and broadcasts the factors along its process row and
//        process column.
//   (1b) Panel Update: grid row k%Pr solves the U row panel with
//        TRSM_L_LOW; grid column k%Pc solves the L column panel with
//        TRSM_R_UP (both FP32). L is CAST to FP16; U is TRANS_CAST
//        (transpose + cast) so the trailing GEMM reads both panels with a
//        uniform fast layout. Panels are broadcast along columns/rows with
//        the configured strategy (Bcast/IBcast/Ring1/Ring1M/Ring2M).
//   (1c) Update Trailing Matrix: mixed-precision GEMM
//        A22 -= L21 * U12 with FP16 operands and FP32 accumulation.
//
// Look-ahead (Sec. IV-B): iteration k's trailing update is split so the
// strips needed by iteration k+1 (global block row/column k+1) are updated
// first, iteration k+1's diagonal/panel work and panel broadcast are
// started, and only then is the bulk of iteration k's GEMM performed —
// overlapping the panel broadcast with the dominant computation. The
// factored matrix is bitwise identical with look-ahead on or off (each
// element's update is a single dot product either way), which the test
// suite checks.
#pragma once

#include <functional>
#include <vector>

#include "blas/abft.h"
#include "core/config.h"
#include "core/dist_context.h"
#include "device/shim.h"
#include "fp16/half.h"
#include "simmpi/recovery.h"
#include "util/buffer.h"
#include "util/task_graph.h"
#include "util/thread_pool.h"

namespace hplmxp {

class DistLU {
 public:
  DistLU(DistContext& ctx, const HplaiConfig& config, BlasShim& shim);

  /// Arms crash-rank recovery (config.recovery.enabled must also be set):
  /// the bulk no-look-ahead loop checkpoints every `checkpointEveryK`
  /// steps and resurrects this rank from an InjectedCrashError by
  /// restoring the checkpoint and replaying forward. The manager is owned
  /// by the caller (one per rank thread) and must outlive factor().
  void setRecovery(simmpi::RecoveryManager* recovery) {
    recovery_ = recovery;
  }

  /// Progress hook, evaluated on rank 0 after each block step with
  /// (k, iteration seconds); returning true aborts the run collectively
  /// (all ranks stop at the same step). This is the paper's early-
  /// termination mechanism for hung/slow runs (Sec. VI-B); wire a
  /// trace::ProgressMonitor into it from the caller.
  using ProgressFn = std::function<bool(index_t k, double iterSeconds)>;
  void setProgressCallback(ProgressFn fn) { progress_ = std::move(fn); }

  /// Per-rank progress hook for mid-run slow-rank detection: after each
  /// block step the per-rank barrier-wait times are gathered and the hook
  /// runs on rank 0 with (k, waits). A persistently last-arriving rank
  /// waits ~0 while its peers idle, so `max(waits) - waits[r]` is rank r's
  /// lag behind the pipeline; wire a trace::SlowRankMonitor in. Returning
  /// true aborts collectively, like the progress hook. Costs one timed
  /// barrier + one small gather per step — only when set.
  using RankProgressFn =
      std::function<bool(index_t k, const std::vector<double>& waits)>;
  void setRankProgressCallback(RankProgressFn fn) {
    rankProgress_ = std::move(fn);
  }

  /// Factors the rank-local matrix (col-major FP32, leading dimension
  /// `lda` >= localRows) in place. Returns the rank-0 per-iteration trace
  /// when config.collectTrace is set (empty vector on other ranks).
  std::vector<IterationTrace> factor(float* localA, index_t lda);

  /// True when the last factor() was stopped early by the progress hook.
  [[nodiscard]] bool aborted() const { return aborted_; }
  /// Block steps completed by the last factor().
  [[nodiscard]] index_t stepsCompleted() const { return stepsCompleted_; }

  /// Per-task execution timeline of the last factor() under the dataflow
  /// scheduler (empty for the bulk scheduler). Feed it to
  /// trace::summarizeSchedTimeline for idle/steal/overlap attribution.
  [[nodiscard]] const TaskGraph::ExecStats& schedStats() const {
    return schedStats_;
  }

 private:
  /// Geometry of one block step, identical on every rank.
  struct StepGeom {
    index_t k = 0;
    index_t pir = 0, pic = 0;       // owner grid coordinates of A(k,k)
    index_t iStartBlk = 0;          // first trailing local block row
    index_t jStartBlk = 0;          // first trailing local block col
    index_t h = 0, w = 0;           // trailing local extents (elements)
    bool ownRow = false, ownCol = false, ownDiag = false;
    index_t lkRow = 0, lkCol = 0;   // local block indices of row/col k
  };

  [[nodiscard]] StepGeom geometry(index_t k) const;

  /// (1a) + (1b): factor/broadcast the diagonal, solve/cast/broadcast the
  /// panels of step k into panel buffer set `bufIdx`.
  void panelsPhase(const StepGeom& g, int bufIdx, float* localA, index_t lda,
                   IterationTrace* trace);

  /// (1c) restricted to a local block region: rows >= iBlk0, cols >= jBlk0,
  /// optionally clipped to `rowBlocks`/`colBlocks` blocks (-1 = to the end).
  void updateRegion(const StepGeom& g, int bufIdx, float* localA, index_t lda,
                    index_t iBlk0, index_t jBlk0, index_t rowBlocks,
                    index_t colBlocks);

  /// Full trailing update of step k (no look-ahead path).
  void updateFull(const StepGeom& g, int bufIdx, float* localA, index_t lda,
                  IterationTrace* trace);

  /// Look-ahead split: strips for step k+1, then the bulk.
  void updateStrips(const StepGeom& g, const StepGeom& next, int bufIdx,
                    float* localA, index_t lda);
  void updateBulk(const StepGeom& g, const StepGeom& next, int bufIdx,
                  float* localA, index_t lda, IterationTrace* trace);

  /// Collective abort poll: rank 0 evaluates the hook(s); everyone learns
  /// the verdict. Returns true when the run must stop.
  bool pollAbort(index_t k, double iterSeconds);

  /// Dataflow engine (config.scheduler == kDataflow): builds one
  /// whole-factorization task graph — every TRSM/CAST/GEMM tile a node,
  /// every collective a main-lane task in a globally consistent order —
  /// and runs it on the shared thread pool with work stealing. Bitwise
  /// identical results to the bulk path.
  std::vector<IterationTrace> factorDataflow(float* localA, index_t lda);

  /// ABFT panel protection (config.abftPanels): broadcast the root's
  /// checksums after each panel broadcast and verify/correct on every
  /// rank. Throws blas::AbnormalValueError on uncorrectable corruption.
  void abftProtectPanels(const StepGeom& g, int bufIdx,
                         IterationTrace* trace);
  void abftProtectU(const StepGeom& g, int bufIdx, IterationTrace* trace);
  void abftProtectL(const StepGeom& g, int bufIdx, IterationTrace* trace);
  void noteAbftOutcome(const StepGeom& g, const char* panel,
                       const blas::AbftOutcome& out, IterationTrace* trace);

  /// Rotating recovery checkpoint at step k: only tiles the factorization
  /// could have touched since the previous checkpoint are re-copied.
  void takeCheckpoint(index_t k, const float* localA, index_t lda);

  /// Self-healing guard scans (config.guardPanels): throw
  /// blas::AbnormalValueError with step context on corruption.
  void guardDiag(const StepGeom& g) const;
  void guardHalfU(const StepGeom& g, int bufIdx) const;
  void guardHalfL(const StepGeom& g, int bufIdx) const;
  void guardHalfPanels(const StepGeom& g, int bufIdx) const;
  void guardTile(index_t k, index_t m, index_t n, const float* tile,
                 index_t lda) const;

  DistContext& ctx_;
  const HplaiConfig& config_;
  BlasShim& shim_;
  ProgressFn progress_;
  RankProgressFn rankProgress_;
  simmpi::RecoveryManager* recovery_ = nullptr;
  bool aborted_ = false;
  index_t stepsCompleted_ = 0;

  std::vector<float> abftSums_;    // checksum bcast scratch (bulk path)
  std::vector<double> abftRow64_;  // GEMM carry-check scratch (bulk path)

  Buffer<float> diagBuf_;
  Buffer<half16> lHalf_[2];
  Buffer<half16> uHalf_[2];

  /// Caller-only pool handed to the per-tile kernels of the dataflow path:
  /// each tile is already one task of the graph, so nesting a parallelFor
  /// inside it would oversubscribe the shared pool.
  ThreadPool serialPool_{1};
  TaskGraph::ExecStats schedStats_;
};

}  // namespace hplmxp
