#include "core/hplai.h"

#include <atomic>
#include <optional>

#include "blas/cast.h"
#include "core/dist_context.h"
#include "core/gmres_ir.h"
#include "core/ir_dist.h"
#include "core/lu_dist.h"
#include "device/shim.h"
#include "gen/matgen.h"
#include "simmpi/runtime.h"
#include "util/buffer.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hplmxp {

HplaiConfig::Scheduler effectiveScheduler(HplaiConfig::Scheduler requested,
                                          index_t poolLanes) {
  if (requested == HplaiConfig::Scheduler::kDataflow && poolLanes < 2) {
    static std::atomic<bool> logged{false};
    if (!logged.exchange(true, std::memory_order_relaxed)) {
      logWarn("scheduler=dataflow needs >= 2 ThreadPool lanes to overlap "
              "anything (have ",
              poolLanes, "); falling back to bulk");
    }
    return HplaiConfig::Scheduler::kBulk;
  }
  return requested;
}

HplaiResult runHplaiOnComm(simmpi::Comm& world, const HplaiConfig& configIn,
                           std::vector<double>* solutionOut) {
  HplaiConfig config = configIn;
  config.scheduler = effectiveScheduler(configIn.scheduler,
                                        ThreadPool::global().laneCount());
  config.validate();
  HPLMXP_REQUIRE(config.n / config.b >= std::max(config.pr, config.pc),
                 "need at least one block row/col per grid row/col");
  DistContext ctx(world, config);
  const ProblemGenerator gen(config.seed, config.n);
  const index_t b = config.b;
  const index_t lr = ctx.localRows();
  const index_t lc = ctx.localCols();

  // Device memory accounting (Finding 1: the whole problem is GPU
  // resident — FP32 local matrix, FP16 panel + look-ahead buffers, and the
  // FP32 diagonal block all live in device memory).
  std::optional<Gcd> gcd;
  std::optional<DeviceAllocation> charge;
  if (config.deviceMemoryBytes > 0) {
    gcd.emplace(config.vendor, config.deviceMemoryBytes);
    const std::size_t matrixBytes =
        static_cast<std::size_t>(lr) * static_cast<std::size_t>(lc) *
        sizeof(float);
    const std::size_t panelSets =
        (config.lookahead ||
         config.scheduler == HplaiConfig::Scheduler::kDataflow)
            ? 2
            : 1;
    const std::size_t panelBytes =
        panelSets * static_cast<std::size_t>(lr + lc) *
        static_cast<std::size_t>(b) * sizeof(half16);
    const std::size_t diagBytes =
        static_cast<std::size_t>(b) * static_cast<std::size_t>(b) *
        sizeof(float);
    charge.emplace(*gcd, matrixBytes + panelBytes + diagBytes);
  }

  // Local matrix fill: FP64 entries from the LCG, narrowed to FP32 for the
  // device-resident factorization (fillTile<float> performs exactly the
  // generate-then-narrow conversion per element).
  Buffer<float> localA(lr * lc);
  const index_t lda = lr;
  {
    const BlockCyclic& layout = ctx.layout();
    for (index_t lj = 0; lj < lc / b; ++lj) {
      const index_t gj = layout.globalBlockCol(ctx.myCol(), lj);
      for (index_t li = 0; li < lr / b; ++li) {
        const index_t gi = layout.globalBlockRow(ctx.myRow(), li);
        gen.fillTile<float>(gi * b, gj * b, b, b,
                            localA.data() + li * b + lj * b * lda, lda);
      }
    }
  }

  BlasShim shim(config.vendor);
  DistLU lu(ctx, config, shim);
  std::optional<simmpi::RecoveryManager> recovery;
  if (config.recovery.enabled) {
    // The regenerator replays the exact fill loop above: a resurrected
    // rank's untouched tiles come back bit-identical from the LCG
    // jump-ahead, so the step-0 checkpoint stores no matrix at all.
    auto regen = [&gen, &ctx, b](float* a, index_t ld) {
      const BlockCyclic& layout = ctx.layout();
      const index_t cols = ctx.localCols();
      const index_t rows = ctx.localRows();
      for (index_t lj = 0; lj < cols / b; ++lj) {
        const index_t gj = layout.globalBlockCol(ctx.myCol(), lj);
        for (index_t li = 0; li < rows / b; ++li) {
          const index_t gi = layout.globalBlockRow(ctx.myRow(), li);
          gen.fillTile<float>(gi * b, gj * b, b, b, a + li * b + lj * b * ld,
                              ld);
        }
      }
    };
    simmpi::RecoveryGeometry geometry;
    geometry.localRows = lr;
    geometry.localCols = lc;
    geometry.blockB = b;
    geometry.panelSteps = config.n / config.b;
    recovery.emplace(world, config.recovery, geometry, config.recoveryStats,
                     std::move(regen));
    lu.setRecovery(&*recovery);
  }
  if (config.progressCallback) {
    lu.setProgressCallback(config.progressCallback);
  }
  if (config.rankProgressCallback) {
    lu.setRankProgressCallback(config.rankProgressCallback);
  }

  if (world.rank() == 0) {
    logInfo("hplai: N=", config.n, " B=", config.b, " grid=", config.pr,
            "x", config.pc, " bcast=", simmpi::toString(config.panelBcast),
            " lookahead=", config.lookahead ? "on" : "off",
            " scheduler=", toString(config.scheduler));
  }
  world.barrier();
  Timer timer;
  std::vector<IterationTrace> trace = lu.factor(localA.data(), lda);
  world.barrier();
  const double factorSeconds = timer.seconds();
  if (lu.aborted()) {
    // Early termination: report what we have; the factors are incomplete,
    // so refinement is skipped and the result is marked aborted.
    HplaiResult result;
    result.n = config.n;
    result.b = config.b;
    result.ranks = world.size();
    result.factorSeconds = factorSeconds;
    result.totalSeconds = factorSeconds;
    result.aborted = true;
    result.trace = std::move(trace);
    return result;
  }

  // "A_cpu <- A": the factored matrix moves back to the host for IR. In
  // this substrate host and device share memory, so the transfer is a
  // no-op; the algorithmic structure (IR reads the FP32 factors) is kept.
  timer.reset();
  std::vector<double> x(static_cast<std::size_t>(config.n));
  for (index_t i = 0; i < config.n; ++i) {
    // Algorithm 1 line 32: x = b / diag(A), a cheap Jacobi-style guess.
    x[static_cast<std::size_t>(i)] = gen.rhs(i) / gen.entry(i, i);
  }
  IrOutcome outcome;
  if (config.refiner == HplaiConfig::Refiner::kGmres) {
    outcome = refineGmres(ctx, config, gen, localA.data(), lda, x,
                          GmresConfig{.restart = config.gmresRestart,
                                      .maxOuter = config.maxIrIterations});
  } else {
    DistIR ir(ctx, config, gen);
    outcome = ir.refine(localA.data(), lda, x);
  }
  world.barrier();
  const double irSeconds = timer.seconds();
  if (world.rank() == 0) {
    logInfo("hplai: factor=", factorSeconds, "s refine=", irSeconds,
            "s iterations=", outcome.iterations,
            outcome.converged ? " converged" : " NOT converged");
  }

  HplaiResult result;
  result.n = config.n;
  result.b = config.b;
  result.ranks = world.size();
  result.factorSeconds = factorSeconds;
  result.irSeconds = irSeconds;
  result.totalSeconds = factorSeconds + irSeconds;
  result.irIterations = outcome.iterations;
  result.converged = outcome.converged;
  result.fellBackToGmres = outcome.fellBack;
  result.residualInf = outcome.residualInf;
  result.threshold = outcome.threshold;
  result.trace = std::move(trace);

  // Share rank 0's timings so every rank reports identical numbers.
  double times[2] = {result.factorSeconds, result.irSeconds};
  world.bcast(0, times, 2);
  result.factorSeconds = times[0];
  result.irSeconds = times[1];
  result.totalSeconds = times[0] + times[1];

  if (solutionOut != nullptr) {
    *solutionOut = std::move(x);
  }
  return result;
}

HplaiResult runHplai(const HplaiConfig& config,
                     std::vector<double>* solutionOut) {
  HplaiResult rank0;
  std::vector<double> solution;
  simmpi::RunOptions options;
  options.replayLog = config.recovery.enabled;
  simmpi::run(config.worldSize(), [&](simmpi::Comm& world) {
    std::vector<double> local;
    HplaiResult r = runHplaiOnComm(world, config, &local);
    if (world.rank() == 0) {
      rank0 = std::move(r);
      solution = std::move(local);
    }
  }, options);
  if (solutionOut != nullptr) {
    *solutionOut = std::move(solution);
  }
  return rank0;
}

}  // namespace hplmxp
