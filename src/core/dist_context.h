// Per-rank distributed context: grid coordinates, layout math, and the
// row/column sub-communicators that Algorithm 1 broadcasts over.
#pragma once

#include "core/config.h"
#include "grid/block_cyclic.h"
#include "grid/process_grid.h"
#include "simmpi/comm.h"

namespace hplmxp {

/// Everything a rank needs to know about "where it is" in the run.
class DistContext {
 public:
  DistContext(simmpi::Comm world, const HplaiConfig& config)
      : world_(world),
        grid_(config.gridOrder == GridOrder::kNodeLocal
                  ? ProcessGrid::nodeLocal(config.pr, config.pc, config.qr,
                                           config.qc)
                  : ProcessGrid::columnMajor(config.pr, config.pc,
                                             config.gcdsPerNode)),
        layout_(config.n, config.b, config.pr, config.pc),
        coord_(grid_.coordOf(world.rank())) {
    HPLMXP_REQUIRE(world.size() == config.worldSize(),
                   "world size must equal Pr*Pc");
    // Row communicator: all ranks in my grid row, ordered by column; rank
    // index within it equals my grid column (and vice versa for columns).
    rowComm_ = world_.split(coord_.row, coord_.col);
    colComm_ = world_.split(grid_.rows() + coord_.col, coord_.row);
    HPLMXP_CHECK(rowComm_.size() == grid_.cols());
    HPLMXP_CHECK(colComm_.size() == grid_.rows());
    HPLMXP_CHECK(rowComm_.rank() == coord_.col);
    HPLMXP_CHECK(colComm_.rank() == coord_.row);
  }

  [[nodiscard]] simmpi::Comm& world() { return world_; }
  [[nodiscard]] simmpi::Comm& rowComm() { return rowComm_; }
  [[nodiscard]] simmpi::Comm& colComm() { return colComm_; }

  [[nodiscard]] const ProcessGrid& grid() const { return grid_; }
  [[nodiscard]] const BlockCyclic& layout() const { return layout_; }

  [[nodiscard]] index_t myRow() const { return coord_.row; }
  [[nodiscard]] index_t myCol() const { return coord_.col; }
  [[nodiscard]] index_t rank() const { return world_.rank(); }

  /// World rank of grid coordinate (r, c).
  [[nodiscard]] index_t rankAt(index_t r, index_t c) const {
    return grid_.rankOf(r, c);
  }

  /// Local matrix extents for this rank.
  [[nodiscard]] index_t localRows() const {
    return layout_.localRows(coord_.row);
  }
  [[nodiscard]] index_t localCols() const {
    return layout_.localCols(coord_.col);
  }

 private:
  simmpi::Comm world_;
  ProcessGrid grid_;
  BlockCyclic layout_;
  GridCoord coord_;
  simmpi::Comm rowComm_;
  simmpi::Comm colComm_;
};

}  // namespace hplmxp
