// FP64 HPL-style baseline: LU with partial pivoting in double precision
// plus the classical HPL residual check. The paper contrasts HPL-AI with
// HPL throughout (Summit: 1.411 EFLOPS vs 148.6 PFLOPS => 9.5x); this
// module provides the functional FP64 comparator, and the scalesim module
// provides the at-scale performance comparison.
#pragma once

#include <vector>

#include "gen/matgen.h"
#include "util/common.h"

namespace hplmxp {

struct Hpl64Result {
  index_t n = 0;
  double factorSeconds = 0.0;
  double solveSeconds = 0.0;
  /// HPL flop convention: (2/3) n^3 + 2 n^2.
  [[nodiscard]] double flops() const {
    const double d = static_cast<double>(n);
    return (2.0 / 3.0) * d * d * d + 2.0 * d * d;
  }
  [[nodiscard]] double gflops() const {
    const double t = factorSeconds + solveSeconds;
    return t > 0.0 ? flops() / t / 1e9 : 0.0;
  }
  /// HPL scaled residual ||Ax-b||_inf / (eps * (||A||_inf ||x||_inf +
  /// ||b||_inf) * n); valid runs have it below 16.
  double scaledResidual = 0.0;
  [[nodiscard]] bool passed() const { return scaledResidual < 16.0; }
};

/// Solves the generated system entirely in FP64 with partial pivoting.
Hpl64Result runHpl64(const ProblemGenerator& gen, std::vector<double>& x);

}  // namespace hplmxp
