// LU-preconditioned GMRES refinement.
//
// The HPL-AI benchmark specification permits any refinement scheme that
// reaches FP64 accuracy; the reference implementation (and the Fugaku code
// this paper builds on) uses GMRES preconditioned with the low-precision
// LU factors, while the paper's Algorithm 1 shows classical iterative
// refinement. Both are provided here: classical IR in DistIR, and this
// module's restarted GMRES(m) on the left-preconditioned system
//
//     (LU)^{-1} A x = (LU)^{-1} b,
//
// with FP64 vectors throughout, the matrix applied by regeneration
// (distributedMatVec), and the preconditioner applied by the distributed
// block triangular solves. Krylov vectors are replicated, so inner
// products need no further communication.
#pragma once

#include <vector>

#include "core/config.h"
#include "core/dist_context.h"
#include "core/ir_dist.h"
#include "gen/matgen.h"

namespace hplmxp {

struct GmresConfig {
  index_t restart = 16;      // Krylov dimension m per cycle
  index_t maxOuter = 20;     // restart cycles
};

/// Refines x to FP64 accuracy (HPL-AI line-44 criterion) using
/// LU-preconditioned restarted GMRES. Returns the same outcome type as
/// classical IR; `iterations` counts total Krylov steps.
IrOutcome refineGmres(DistContext& ctx, const HplaiConfig& config,
                      const ProblemGenerator& gen, const float* localLU,
                      index_t lda, std::vector<double>& x,
                      const GmresConfig& gmres = {});

}  // namespace hplmxp
