#include "core/verify.h"

#include <cmath>
#include <limits>

#include "util/buffer.h"

namespace hplmxp {

double residualInfDense(const ProblemGenerator& gen,
                        const std::vector<double>& x) {
  const index_t n = gen.n();
  HPLMXP_REQUIRE(static_cast<index_t>(x.size()) == n, "x size mismatch");
  Buffer<double> row(n);
  double rInf = 0.0;
  for (index_t i = 0; i < n; ++i) {
    gen.fillTile<double>(i, 0, 1, n, row.data(), 1);
    double acc = gen.rhs(i);
    for (index_t j = 0; j < n; ++j) {
      acc -= row[j] * x[static_cast<std::size_t>(j)];
    }
    rInf = std::max(rInf, std::fabs(acc));
  }
  return rInf;
}

double hplaiThreshold(const ProblemGenerator& gen, double xInf) {
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  return 8.0 * static_cast<double>(gen.n()) * kEps *
         (2.0 * gen.diagInfNorm() * xInf + gen.rhsInfNorm());
}

double infNorm(const std::vector<double>& x) {
  double best = 0.0;
  for (double v : x) {
    best = std::max(best, std::fabs(v));
  }
  return best;
}

bool hplaiValid(const ProblemGenerator& gen, const std::vector<double>& x) {
  return residualInfDense(gen, x) < hplaiThreshold(gen, infNorm(x));
}

}  // namespace hplmxp
