#include "core/hpl64.h"

#include <cmath>
#include <limits>

#include "blas/blas.h"
#include "util/buffer.h"
#include "util/timer.h"

namespace hplmxp {

Hpl64Result runHpl64(const ProblemGenerator& gen, std::vector<double>& x) {
  const index_t n = gen.n();
  Hpl64Result result;
  result.n = n;

  Buffer<double> a(n * n);
  gen.fillTile<double>(0, 0, n, n, a.data(), n);
  Buffer<double> bvec(n);
  gen.fillRhs<double>(0, n, bvec.data());

  Timer timer;
  std::vector<index_t> ipiv;
  blas::dgetrf(n, a.data(), n, ipiv);
  result.factorSeconds = timer.seconds();

  timer.reset();
  x.assign(bvec.data(), bvec.data() + n);
  // Apply the row interchanges to the right-hand side, then L, U solves.
  for (index_t k = 0; k < n; ++k) {
    const index_t piv = ipiv[static_cast<std::size_t>(k)];
    if (piv != k) {
      std::swap(x[static_cast<std::size_t>(k)],
                x[static_cast<std::size_t>(piv)]);
    }
  }
  blas::dtrsv(blas::Uplo::kLower, blas::Diag::kUnit, n, a.data(), n, x.data());
  blas::dtrsv(blas::Uplo::kUpper, blas::Diag::kNonUnit, n, a.data(), n,
              x.data());
  result.solveSeconds = timer.seconds();

  // HPL residual check against regenerated A.
  Buffer<double> row(n);
  double rInf = 0.0;
  double xInf = 0.0;
  for (index_t i = 0; i < n; ++i) {
    gen.fillTile<double>(i, 0, 1, n, row.data(), 1);
    double acc = -bvec[i];
    for (index_t j = 0; j < n; ++j) {
      acc += row[j] * x[static_cast<std::size_t>(j)];
    }
    rInf = std::max(rInf, std::fabs(acc));
    xInf = std::max(xInf, std::fabs(x[static_cast<std::size_t>(i)]));
  }
  const double aInf = gen.matrixInfNorm();
  const double bInf = gen.rhsInfNorm();
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  result.scaledResidual =
      rInf / (kEps * (aInf * xInf + bInf) * static_cast<double>(n));
  return result;
}

}  // namespace hplmxp
