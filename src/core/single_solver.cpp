#include "core/single_solver.h"

#include <cmath>
#include <limits>

#include "blas/blas.h"
#include "device/shim.h"
#include "util/buffer.h"
#include "util/timer.h"

namespace hplmxp {

void factorMixedSingle(index_t n, index_t b, float* a, index_t lda,
                       Vendor vendor) {
  HPLMXP_REQUIRE(n > 0 && b > 0 && n % b == 0, "need N a multiple of B");
  BlasShim shim(vendor);
  Buffer<half16> lHalf(n * b);
  Buffer<half16> uHalf(n * b);

  for (index_t k = 0; k < n; k += b) {
    float* diag = a + k + k * lda;
    if (vendor == Vendor::kNvidia) {
      (void)shim.getrfBufferSize(b, lda);
    }
    shim.getrf(b, diag, lda);
    const index_t rest = n - k - b;
    if (rest == 0) {
      break;
    }
    // Panel solves in FP32.
    float* uPanel = a + k + (k + b) * lda;
    float* lPanel = a + (k + b) + k * lda;
    shim.trsm(blas::Side::kLeft, blas::Uplo::kLower, blas::Diag::kUnit, b,
              rest, 1.0f, diag, lda, uPanel, lda);
    shim.trsm(blas::Side::kRight, blas::Uplo::kUpper, blas::Diag::kNonUnit,
              rest, b, 1.0f, diag, lda, lPanel, lda);
    // CAST / TRANS_CAST to FP16, then the mixed trailing update.
    blas::castToHalf(rest, b, lPanel, lda, lHalf.data(), rest);
    blas::transCastToHalf(b, rest, uPanel, lda, uHalf.data(), rest);
    shim.gemmEx(blas::Trans::kNoTrans, blas::Trans::kTrans, rest, rest, b,
                -1.0f, lHalf.data(), rest, uHalf.data(), rest, 1.0f,
                a + (k + b) + (k + b) * lda, lda);
  }
}

SingleSolveResult solveMixedSingle(const ProblemGenerator& gen, index_t b,
                                   Vendor vendor, std::vector<double>& x,
                                   index_t maxIrIterations) {
  const index_t n = gen.n();
  SingleSolveResult result;
  result.n = n;
  result.b = b;

  Buffer<float> a(n * n);
  gen.fillTile<float>(0, 0, n, n, a.data(), n);

  Timer timer;
  factorMixedSingle(n, b, a.data(), n, vendor);
  result.factorSeconds = timer.seconds();

  timer.reset();
  // Initial guess x = b / diag(A), then FP64 refinement.
  x.assign(static_cast<std::size_t>(n), 0.0);
  Buffer<double> bvec(n);
  gen.fillRhs<double>(0, n, bvec.data());
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = bvec[i] / gen.entry(i, i);
  }

  const double diagInf = gen.diagInfNorm();
  const double bInf = gen.rhsInfNorm();
  constexpr double kEps = std::numeric_limits<double>::epsilon();

  Buffer<double> arow(n);  // one regenerated FP64 row at a time
  std::vector<double> r(static_cast<std::size_t>(n));
  for (index_t iter = 0; iter <= maxIrIterations; ++iter) {
    // r = b - A x with regenerated FP64 entries (row-wise tiles).
    double rInf = 0.0;
    double xInf = 0.0;
    for (index_t i = 0; i < n; ++i) {
      gen.fillTile<double>(i, 0, 1, n, arow.data(), 1);
      double acc = bvec[i];
      for (index_t j = 0; j < n; ++j) {
        acc -= arow[j] * x[static_cast<std::size_t>(j)];
      }
      r[static_cast<std::size_t>(i)] = acc;
      rInf = std::max(rInf, std::fabs(acc));
      xInf = std::max(xInf, std::fabs(x[static_cast<std::size_t>(i)]));
    }
    result.residualInf = rInf;
    result.threshold = 8.0 * static_cast<double>(n) * kEps *
                       (2.0 * diagInf * xInf + bInf);
    if (rInf < result.threshold) {
      result.converged = true;
      break;
    }
    if (iter == maxIrIterations) {
      break;
    }
    // d = U^{-1} (L^{-1} r), FP32 factors with FP64 accumulation.
    blas::strsvMixed(blas::Uplo::kLower, blas::Diag::kUnit, n, a.data(), n,
                     r.data());
    blas::strsvMixed(blas::Uplo::kUpper, blas::Diag::kNonUnit, n, a.data(), n,
                     r.data());
    for (index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] += r[static_cast<std::size_t>(i)];
    }
    ++result.irIterations;
  }
  result.irSeconds = timer.seconds();
  return result;
}

}  // namespace hplmxp
