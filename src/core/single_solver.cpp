#include "core/single_solver.h"

#include <cmath>
#include <limits>

#include "blas/blas.h"
#include "device/shim.h"
#include "lowp/traits.h"
#include "util/timer.h"

namespace hplmxp {

namespace {

/// The blocked factorization loop, templated on the trailing-update
/// storage type. The FP32 control flow (GETRF, the two TRSMs, the NVIDIA
/// workspace protocol) is rung-independent; only the CAST / TRANS_CAST /
/// GEMM trio changes. Rungs with kNeedsTileScale store panel/scale and
/// fold the two per-panel scales into the GEMM's alpha — exact powers of
/// two, so alpha itself is exact in FP32. The half16 instantiation is the
/// historical factorMixedSingle path, call for call.
template <typename TLow>
void factorLowpCore(index_t n, index_t b, float* a, index_t lda,
                    Vendor vendor) {
  HPLMXP_REQUIRE(n > 0 && b > 0 && n % b == 0, "need N a multiple of B");
  BlasShim shim(vendor);
  Buffer<TLow> lLow(n * b);
  Buffer<TLow> uLow(n * b);

  for (index_t k = 0; k < n; k += b) {
    float* diag = a + k + k * lda;
    if (vendor == Vendor::kNvidia) {
      (void)shim.getrfBufferSize(b, lda);
    }
    shim.getrf(b, diag, lda);
    const index_t rest = n - k - b;
    if (rest == 0) {
      break;
    }
    // Panel solves in FP32.
    float* uPanel = a + k + (k + b) * lda;
    float* lPanel = a + (k + b) + k * lda;
    shim.trsm(blas::Side::kLeft, blas::Uplo::kLower, blas::Diag::kUnit, b,
              rest, 1.0f, diag, lda, uPanel, lda);
    shim.trsm(blas::Side::kRight, blas::Uplo::kUpper, blas::Diag::kNonUnit,
              rest, b, 1.0f, diag, lda, lPanel, lda);
    // CAST / TRANS_CAST to the storage rung, then the mixed trailing
    // update.
    float alpha = -1.0f;
    if constexpr (lowp::StorageTraits<TLow>::kNeedsTileScale) {
      const float sL =
          blas::castToLowpScaled(rest, b, lPanel, lda, lLow.data(), rest);
      const float sU = blas::transCastToLowpScaled(b, rest, uPanel, lda,
                                                   uLow.data(), rest);
      alpha = -(sL * sU);
    } else {
      blas::castToLowp(rest, b, lPanel, lda, lLow.data(), rest);
      blas::transCastToLowp(b, rest, uPanel, lda, uLow.data(), rest);
    }
    shim.gemmExLowp(blas::Trans::kNoTrans, blas::Trans::kTrans, rest, rest,
                    b, alpha, lLow.data(), rest, uLow.data(), rest, 1.0f,
                    a + (k + b) + (k + b) * lda, lda);
  }
}

}  // namespace

void factorMixedSingle(index_t n, index_t b, float* a, index_t lda,
                       Vendor vendor) {
  factorLowpCore<half16>(n, b, a, lda, vendor);
}

void factorStorageSingle(index_t n, index_t b, float* a, index_t lda,
                         Vendor vendor, lowp::StoragePrecision precision) {
  switch (precision) {
    case lowp::StoragePrecision::kFp16:
      factorLowpCore<half16>(n, b, a, lda, vendor);
      return;
    case lowp::StoragePrecision::kBf16:
      factorLowpCore<lowp::bfloat16>(n, b, a, lda, vendor);
      return;
    case lowp::StoragePrecision::kFp8E4M3:
      factorLowpCore<lowp::fp8e4m3>(n, b, a, lda, vendor);
      return;
    case lowp::StoragePrecision::kFp8E5M2:
      factorLowpCore<lowp::fp8e5m2>(n, b, a, lda, vendor);
      return;
  }
  HPLMXP_REQUIRE(false, "unreachable: bad storage precision");
}

Factorization factorStorageSingle(const ProblemGenerator& gen, index_t b,
                                  Vendor vendor,
                                  lowp::StoragePrecision precision) {
  const index_t n = gen.n();
  Factorization f;
  f.n = n;
  f.b = b;
  f.seed = gen.seed();
  f.vendor = vendor;
  f.precision = precision;
  f.lu.allocate(n * n);
  gen.fillTile<float>(0, 0, n, n, f.lu.data(), n);

  Timer timer;
  factorStorageSingle(n, b, f.lu.data(), n, vendor, precision);
  f.factorSeconds = timer.seconds();
  f.diagInfNorm = gen.diagInfNorm();
  return f;
}

Factorization factorMixedSingle(const ProblemGenerator& gen, index_t b,
                                Vendor vendor) {
  return factorStorageSingle(gen, b, vendor, lowp::StoragePrecision::kFp16);
}

SolveManyResult solveManyMixedSingle(const Factorization& f,
                                     const ProblemGenerator& gen,
                                     const std::vector<std::uint64_t>& rhsSeeds,
                                     std::vector<std::vector<double>>& xs,
                                     index_t maxIrIterations,
                                     ThreadPool* pool) {
  const index_t n = f.n;
  HPLMXP_REQUIRE(gen.n() == n, "factorization / generator order mismatch");
  HPLMXP_REQUIRE(gen.seed() == f.seed,
                 "factorization was built from a different problem seed");
  const index_t k = static_cast<index_t>(rhsSeeds.size());
  SolveManyResult result;
  result.n = n;
  result.b = f.b;
  result.k = k;
  result.columns.resize(rhsSeeds.size());
  xs.assign(rhsSeeds.size(), {});
  if (k == 0) {
    return result;
  }

  Timer timer;
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  const double diagInf = f.diagInfNorm;

  // diag(A) once for every column's Jacobi-style initial guess — the same
  // per-element arithmetic as the single-RHS path, amortized across the
  // batch (entry() is an O(log N) LCG jump per element).
  std::vector<double> diag(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    diag[static_cast<std::size_t>(i)] = gen.entry(i, i);
  }

  // Per-column rhs, solution, residual, and scale. Column c's rhs is the
  // rhs stream of a generator seeded with rhsSeeds[c] over the same order.
  std::vector<std::vector<double>> bvecs(rhsSeeds.size());
  std::vector<double> bInf(rhsSeeds.size(), 0.0);
  std::vector<std::vector<double>> r(rhsSeeds.size());
  for (std::size_t c = 0; c < rhsSeeds.size(); ++c) {
    const ProblemGenerator rhsGen(rhsSeeds[c], n);
    bvecs[c].resize(static_cast<std::size_t>(n));
    rhsGen.fillRhs<double>(0, n, bvecs[c].data());
    bInf[c] = rhsGen.rhsInfNorm();
    result.columns[c].rhsSeed = rhsSeeds[c];
    xs[c].assign(static_cast<std::size_t>(n), 0.0);
    r[c].resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      xs[c][static_cast<std::size_t>(i)] =
          bvecs[c][static_cast<std::size_t>(i)] /
          diag[static_cast<std::size_t>(i)];
    }
  }

  std::vector<char> active(rhsSeeds.size(), 1);
  index_t activeCount = k;
  Buffer<double> arow(n);  // one regenerated FP64 row, shared by the batch
  // Correction panel: active columns' residuals packed contiguously for
  // the blocked strsmMixed solves.
  Buffer<double> panel(n * k);
  std::vector<std::size_t> panelCols(rhsSeeds.size());

  for (index_t iter = 0; iter <= maxIrIterations && activeCount > 0;
       ++iter) {
    // r = b - A x with regenerated FP64 rows, each row shared across every
    // still-active column (the batching win on the residual side).
    std::vector<double> rInf(rhsSeeds.size(), 0.0);
    std::vector<double> xInf(rhsSeeds.size(), 0.0);
    for (index_t i = 0; i < n; ++i) {
      gen.fillTile<double>(i, 0, 1, n, arow.data(), 1);
      for (std::size_t c = 0; c < rhsSeeds.size(); ++c) {
        if (!active[c]) {
          continue;
        }
        double acc = bvecs[c][static_cast<std::size_t>(i)];
        const double* xc = xs[c].data();
        for (index_t j = 0; j < n; ++j) {
          acc -= arow[j] * xc[static_cast<std::size_t>(j)];
        }
        r[c][static_cast<std::size_t>(i)] = acc;
        rInf[c] = std::max(rInf[c], std::fabs(acc));
        xInf[c] =
            std::max(xInf[c], std::fabs(xc[static_cast<std::size_t>(i)]));
      }
    }
    for (std::size_t c = 0; c < rhsSeeds.size(); ++c) {
      if (!active[c]) {
        continue;
      }
      SolveManyColumn& col = result.columns[c];
      col.residualInf = rInf[c];
      col.threshold = 8.0 * static_cast<double>(n) * kEps *
                      (2.0 * diagInf * xInf[c] + bInf[c]);
      col.residualHistory.push_back(rInf[c]);
      if (rInf[c] < col.threshold) {
        // Converged: freeze the column while its batch-mates iterate on.
        col.converged = true;
        active[c] = 0;
        --activeCount;
      }
    }
    if (iter == maxIrIterations || activeCount == 0) {
      break;
    }

    // d = U^{-1} (L^{-1} r) for every active column at once: pack the
    // residuals into a dense panel and run the blocked mixed TRSM pair.
    index_t packed = 0;
    for (std::size_t c = 0; c < rhsSeeds.size(); ++c) {
      if (!active[c]) {
        continue;
      }
      panelCols[static_cast<std::size_t>(packed)] = c;
      double* dst = panel.data() + packed * n;
      const double* src = r[c].data();
      for (index_t i = 0; i < n; ++i) {
        dst[i] = src[i];
      }
      ++packed;
    }
    blas::strsmMixed(blas::Uplo::kLower, blas::Diag::kUnit, n, packed,
                     f.lu.data(), n, panel.data(), n, pool);
    blas::strsmMixed(blas::Uplo::kUpper, blas::Diag::kNonUnit, n, packed,
                     f.lu.data(), n, panel.data(), n, pool);
    for (index_t p = 0; p < packed; ++p) {
      const std::size_t c = panelCols[static_cast<std::size_t>(p)];
      const double* d = panel.data() + p * n;
      double* xc = xs[c].data();
      for (index_t i = 0; i < n; ++i) {
        xc[static_cast<std::size_t>(i)] += d[i];
      }
      ++result.columns[c].irIterations;
    }
  }
  result.solveSeconds = timer.seconds();
  return result;
}

SingleSolveResult solveMixedSingle(const ProblemGenerator& gen, index_t b,
                                   Vendor vendor, std::vector<double>& x,
                                   index_t maxIrIterations) {
  // The single-RHS solve is the k=1 case of the batched engine: factor
  // into a handle, then refine the generator's own rhs stream against it.
  const Factorization f = factorMixedSingle(gen, b, vendor);
  std::vector<std::vector<double>> xs;
  const SolveManyResult many =
      solveManyMixedSingle(f, gen, {gen.seed()}, xs, maxIrIterations);
  x = std::move(xs[0]);

  SingleSolveResult result;
  result.n = f.n;
  result.b = b;
  result.factorSeconds = f.factorSeconds;
  result.irSeconds = many.solveSeconds;
  result.irIterations = many.columns[0].irIterations;
  result.converged = many.columns[0].converged;
  result.residualInf = many.columns[0].residualInf;
  result.threshold = many.columns[0].threshold;
  return result;
}

}  // namespace hplmxp
