#include "core/ir_dist.h"

#include <cmath>
#include <limits>

#include "core/dist_kernels.h"
#include "core/gmres_ir.h"
#include "util/logging.h"

namespace hplmxp {

DistIR::DistIR(DistContext& ctx, const HplaiConfig& config,
               const ProblemGenerator& gen)
    : ctx_(ctx), config_(config), gen_(gen) {
  // Norm terms of the line-44 criterion; every rank regenerates them
  // identically (O(N) LCG jumps).
  diagInf_ = gen_.diagInfNorm();
  bInf_ = gen_.rhsInfNorm();
}

double DistIR::threshold(double xInf) const {
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  return 8.0 * static_cast<double>(config_.n) * kEps *
         (2.0 * diagInf_ * xInf + bInf_);
}

void DistIR::residual(const std::vector<double>& x, std::vector<double>& r) {
  distributedResidual(ctx_, gen_, x, r);
}

void DistIR::blockTrsv(blas::Uplo uplo, const float* localLU, index_t lda,
                       std::vector<double>& rhs) {
  distributedBlockTrsv<float>(ctx_, config_.b, uplo, localLU, lda, rhs);
}

IrOutcome DistIR::refine(const float* localLU, index_t lda,
                         std::vector<double>& x) {
  const index_t n = config_.n;
  IrOutcome out;
  std::vector<double> r;
  std::vector<double> d;

  // Divergence guard state: the best iterate seen so far and how many
  // consecutive iterations failed to improve on it.
  double bestR = std::numeric_limits<double>::infinity();
  std::vector<double> xBest;
  index_t badStreak = 0;

  for (index_t iter = 0; iter <= config_.maxIrIterations; ++iter) {
    residual(x, r);
    double rInf = 0.0;
    double xInf = 0.0;
    for (index_t i = 0; i < n; ++i) {
      rInf = std::max(rInf, std::fabs(r[static_cast<std::size_t>(i)]));
      xInf = std::max(xInf, std::fabs(x[static_cast<std::size_t>(i)]));
    }
    out.residualInf = rInf;
    out.threshold = threshold(xInf);
    if (rInf < out.threshold) {
      out.converged = true;
      break;
    }
    if (iter == config_.maxIrIterations) {
      break;  // budget exhausted without convergence
    }

    if (config_.irDivergenceStrikes > 0) {
      if (std::isfinite(rInf) && rInf < bestR) {
        bestR = rInf;
        xBest = x;
        badStreak = 0;
      } else {
        ++badStreak;
      }
      if (badStreak >= config_.irDivergenceStrikes) {
        // Classical IR is a stationary iteration; with a damaged
        // preconditioner its error operator has spectral radius >= 1 and
        // the residual only grows. Restore the best iterate and hand the
        // remaining budget to GMRES, which minimizes the residual over the
        // Krylov space and tolerates far worse preconditioners.
        if (!xBest.empty()) {
          x = xBest;
        }
        if (ctx_.rank() == 0) {
          logInfo("ir: residual stagnant/divergent for ", badStreak,
                  " iterations (best ", bestR, ", now ", rInf,
                  ") - falling back to GMRES refinement");
        }
        const index_t remaining =
            std::max<index_t>(1, config_.maxIrIterations - iter);
        IrOutcome g = refineGmres(ctx_, config_, gen_, localLU, lda, x,
                                  GmresConfig{.restart = config_.gmresRestart,
                                              .maxOuter = remaining});
        g.iterations += out.iterations;
        g.fellBack = true;
        return g;
      }
    }

    // Correction solve: L*(U*d) = r with FP32 factors, FP64 vectors.
    d = r;
    blockTrsv(blas::Uplo::kLower, localLU, lda, d);
    blockTrsv(blas::Uplo::kUpper, localLU, lda, d);
    for (index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] += d[static_cast<std::size_t>(i)];
    }
    ++out.iterations;
  }
  return out;
}

}  // namespace hplmxp
