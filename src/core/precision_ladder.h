// Adaptive precision controller: the "ladder" over the storage formats.
//
// HPL-MxP admits any storage precision whose iterative refinement recovers
// FP64 accuracy, which turns precision selection into a scheduling problem:
// cheaper rungs (FP8) double GEMM throughput but only pay off when IR still
// converges. This controller (a) estimates the conditioning of a request
// with a cheap deterministic probe, (b) picks the cheapest storage rung and
// refinement path (classical IR vs LU-preconditioned GMRES-IR) expected to
// converge, and (c) *falls up the ladder* — re-factors at the next more
// accurate rung — whenever refinement diverges or stalls. At the top rung
// (fp16) the escape hatch is GMRES-IR on the same factors, the reference
// HPL-AI fallback.
//
// Everything here is deterministic: the probe samples fixed rows, the
// per-rung solves inherit the kernels' thread-count-independent
// accumulation contract, and escalation decisions are pure functions of
// the residual trajectories — so the chosen rung sequence, iteration
// counts, and final residual are reproducible bit-for-bit across thread
// counts (tests/test_precision_ladder.cpp).
//
// Scope: the ladder drives the single-device solver (and through it the
// serve engine and the chaos scenario matrix). The distributed
// factorization stays binary16 — doc/PRECISION.md records that boundary.
#pragma once

#include <optional>
#include <vector>

#include "core/single_solver.h"
#include "gen/matgen.h"
#include "lowp/precision.h"
#include "util/common.h"

namespace hplmxp {

/// Deterministic conditioning estimate: min over sampled rows of the
/// diagonal-dominance ratio |a_ii| / sum_{j != i} |a_ij|. > 1 means the
/// sampled rows are strictly dominant; the benchmark default (+N shift)
/// probes around 4. Rows are sampled at fixed, evenly spaced indices, so
/// the probe is a pure function of (seed, n, diagShift).
struct ConditioningProbe {
  double minDominance = 0.0;
  index_t rowsSampled = 0;
};

ConditioningProbe probeConditioning(const ProblemGenerator& gen,
                                    index_t maxRows = 8);

/// Refinement path the controller schedules at a rung.
enum class LadderRefiner { kIr, kGmresIr };

[[nodiscard]] const char* toString(LadderRefiner r);

/// The controller's opening move: cheapest rung + refiner expected to
/// converge for the probed conditioning. Thresholds are calibrated on the
/// generator family (see doc/PRECISION.md): stronger dominance tolerates
/// coarser storage.
struct LadderChoice {
  lowp::StoragePrecision rung = lowp::StoragePrecision::kFp16;
  LadderRefiner refiner = LadderRefiner::kIr;
};

[[nodiscard]] LadderChoice chooseRung(const ConditioningProbe& probe);

/// Controller knobs (conf/CLI keys: precision, max-ir, gmres,
/// gmres-restart, gmres-outer — see doc/PRECISION.md).
struct LadderPolicy {
  index_t probeRows = 8;
  /// IR budget per rung; past it an unconverged rung escalates.
  index_t maxIrIterationsPerRung = 25;
  /// Allow the top-rung GMRES-IR fallback.
  bool allowGmres = true;
  index_t gmresRestart = 30;
  index_t gmresMaxOuter = 8;
  /// Pin the starting rung (conf `precision` = fp16|bf16|fp8e4m3|fp8e5m2)
  /// instead of probing; nullopt = adaptive ("auto").
  std::optional<lowp::StoragePrecision> forcedStart;
};

/// One rung's factor + refine attempt.
struct RungAttempt {
  lowp::StoragePrecision precision = lowp::StoragePrecision::kFp16;
  LadderRefiner refiner = LadderRefiner::kIr;
  double factorSeconds = 0.0;
  double solveSeconds = 0.0;
  index_t irIterations = 0;
  bool converged = false;
  /// Residual grew past the divergence guard (vs merely running out of
  /// budget) — both escalate, but the distinction is reported.
  bool diverged = false;
  double residualInf = 0.0;
  double threshold = 0.0;
  std::vector<double> residualHistory;
};

/// Full ladder outcome for one problem.
struct LadderResult {
  index_t n = 0;
  index_t b = 0;
  ConditioningProbe probe;
  lowp::StoragePrecision startRung = lowp::StoragePrecision::kFp16;
  lowp::StoragePrecision finalRung = lowp::StoragePrecision::kFp16;
  index_t escalations = 0;
  bool converged = false;
  bool usedGmres = false;
  double residualInf = 0.0;
  double threshold = 0.0;
  std::vector<RungAttempt> attempts;
  std::vector<double> x;  // final iterate (converged or best effort)
};

/// Runs the full adaptive ladder for the generated problem: probe, choose,
/// factor + refine, escalate until convergence or the ladder is exhausted.
LadderResult solveLadderSingle(const ProblemGenerator& gen, index_t b,
                               Vendor vendor,
                               const LadderPolicy& policy = {});

/// Single-device LU-preconditioned restarted GMRES refinement: solves
/// A x = b(gen) to the HPL-AI criterion using the FP32 factors of `f` as
/// the right preconditioner (strsvMixed pair) and FP64 row-regenerated
/// matvecs, starting from iterate `x` (improved in place). This is the
/// top-rung fallback when classical IR on fp16 factors stalls; unlike
/// core/gmres_ir.h it needs no grid or communicator.
struct GmresSingleResult {
  bool converged = false;
  index_t iterations = 0;  // total Krylov steps across outer cycles
  double residualInf = 0.0;
  double threshold = 0.0;
  std::vector<double> residualHistory;  // outer ||r||_inf trajectory
};

GmresSingleResult refineGmresSingle(const Factorization& f,
                                    const ProblemGenerator& gen,
                                    std::vector<double>& x,
                                    index_t restart = 30,
                                    index_t maxOuter = 8);

}  // namespace hplmxp
