#include "core/dist_kernels.h"

#include <cmath>

namespace hplmxp {

namespace {

/// Shared core of residual/matvec: out = sign * A*x (+ b if addRhs), all
/// via regeneration and one Allreduce.
void regenApply(DistContext& ctx, const ProblemGenerator& gen,
                const std::vector<double>& x, std::vector<double>& out,
                double sign, bool addRhs) {
  const BlockCyclic& layout = ctx.layout();
  const index_t n = layout.n();
  const index_t b = layout.blockSize();
  HPLMXP_REQUIRE(static_cast<index_t>(x.size()) == n, "x size mismatch");
  out.assign(static_cast<std::size_t>(n), 0.0);

  Buffer<double> tile(b * b);
  const index_t lbr = layout.localBlockRows(ctx.myRow());
  const index_t lbc = layout.localBlockCols(ctx.myCol());
  for (index_t lj = 0; lj < lbc; ++lj) {
    const index_t gj = layout.globalBlockCol(ctx.myCol(), lj);
    for (index_t li = 0; li < lbr; ++li) {
      const index_t gi = layout.globalBlockRow(ctx.myRow(), li);
      gen.fillTile<double>(gi * b, gj * b, b, b, tile.data(), b);
      double* seg = out.data() + gi * b;
      for (index_t j = 0; j < b; ++j) {
        const double xj =
            sign * x[static_cast<std::size_t>(gj * b + j)];
        const double* col = tile.data() + j * b;
        for (index_t i = 0; i < b; ++i) {
          seg[i] += col[i] * xj;
        }
      }
    }
  }

  ctx.world().allreduceSum(out.data(), n);
  if (addRhs) {
    Buffer<double> bvec(n);
    gen.fillRhs<double>(0, n, bvec.data());
    for (index_t i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] += bvec[i];
    }
  }
}

}  // namespace

void distributedResidual(DistContext& ctx, const ProblemGenerator& gen,
                         const std::vector<double>& x,
                         std::vector<double>& r) {
  regenApply(ctx, gen, x, r, /*sign=*/-1.0, /*addRhs=*/true);
}

void distributedMatVec(DistContext& ctx, const ProblemGenerator& gen,
                       const std::vector<double>& x, std::vector<double>& y) {
  regenApply(ctx, gen, x, y, /*sign=*/1.0, /*addRhs=*/false);
}

double distributedMatrixInfNorm(DistContext& ctx,
                                const ProblemGenerator& gen) {
  const BlockCyclic& layout = ctx.layout();
  const index_t n = layout.n();
  const index_t b = layout.blockSize();
  std::vector<double> rowSums(static_cast<std::size_t>(n), 0.0);

  Buffer<double> tile(b * b);
  const index_t lbr = layout.localBlockRows(ctx.myRow());
  const index_t lbc = layout.localBlockCols(ctx.myCol());
  for (index_t lj = 0; lj < lbc; ++lj) {
    const index_t gj = layout.globalBlockCol(ctx.myCol(), lj);
    for (index_t li = 0; li < lbr; ++li) {
      const index_t gi = layout.globalBlockRow(ctx.myRow(), li);
      gen.fillTile<double>(gi * b, gj * b, b, b, tile.data(), b);
      double* seg = rowSums.data() + gi * b;
      for (index_t j = 0; j < b; ++j) {
        const double* col = tile.data() + j * b;
        for (index_t i = 0; i < b; ++i) {
          seg[i] += std::fabs(col[i]);
        }
      }
    }
  }
  ctx.world().allreduceSum(rowSums.data(), n);
  double best = 0.0;
  for (double v : rowSums) {
    best = std::max(best, v);
  }
  return best;
}

void guardVector(const char* what, const std::vector<double>& v,
                 double magnitudeLimit) {
  const blas::AbnormalScan s =
      blas::scanAbnormal(static_cast<index_t>(v.size()), 1, v.data(),
                         std::max<index_t>(1, static_cast<index_t>(v.size())),
                         magnitudeLimit);
  if (s) {
    throw blas::AbnormalValueError(std::string(what) + ": " + s.describe());
  }
}

}  // namespace hplmxp
