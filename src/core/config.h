// Benchmark configuration and result types.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "device/device.h"
#include "grid/process_grid.h"
#include "simmpi/recovery.h"
#include "simmpi/ring_bcast.h"
#include "util/common.h"

namespace hplmxp {

/// Input parameters of Algorithm 1 plus the tuning knobs of Sec. IV.
struct HplaiConfig {
  index_t n = 0;    // global matrix order (must be a multiple of b)
  index_t b = 0;    // block size B
  index_t pr = 1;   // process rows
  index_t pc = 1;   // process cols
  std::uint64_t seed = 42;

  /// Panel broadcast strategy (Bcast / IBcast / Ring1 / Ring1M / Ring2M).
  simmpi::BcastStrategy panelBcast = simmpi::BcastStrategy::kBcast;

  /// Rank-to-grid-coordinate mapping (Finding 8). Column-major is the
  /// default; node-local mapping places each node's `qr x qc` GCDs as a
  /// contiguous subgrid (requires qr | pr, qc | pc). The factorization is
  /// mapping-invariant — the same mathematical ranks just live at
  /// different coordinates — which the tests exploit; at machine scale the
  /// mapping changes which traffic crosses NICs (Eqs. 4-5).
  GridOrder gridOrder = GridOrder::kColumnMajor;
  index_t qr = 1;  // node-local grid rows (used when gridOrder==kNodeLocal)
  index_t qc = 1;  // node-local grid cols
  index_t gcdsPerNode = 1;  // node size for the column-major mapping

  /// Look-ahead: overlap next iteration's diag/panel work with the bulk
  /// trailing update (Sec. IV-B).
  bool lookahead = true;

  /// LU step execution engine. kBulk is the barriered reference schedule
  /// (GETRF -> TRSM -> CAST -> GEMM as bulk kernels, optionally with the
  /// look-ahead split). kDataflow runs the same step as a tile-granular
  /// task graph (util/task_graph.h): every TRSM/CAST/GEMM tile is a node
  /// with atomic dependency counters, so a GEMM tile fires the moment its
  /// L-tile, U-tile and C-tile predecessors retire — no inter-kernel
  /// barriers, and the next steps' panel tasks interleave with the current
  /// trailing update. The factored matrix is bitwise identical between the
  /// two engines (tests/test_sched_equiv.cpp); `lookahead` is ignored by
  /// kDataflow, whose whole-factorization graph subsumes it.
  enum class Scheduler { kBulk, kDataflow };
  Scheduler scheduler = Scheduler::kBulk;

  /// Which vendor dispatch path the shim takes (Table II).
  Vendor vendor = Vendor::kAmd;

  /// Refinement scheme: Algorithm 1's classical iterative refinement, or
  /// the LU-preconditioned GMRES used by the reference HPL-AI code.
  enum class Refiner { kClassicIr, kGmres };
  Refiner refiner = Refiner::kClassicIr;

  /// Iterative refinement controls (classical IR iteration budget; GMRES
  /// uses gmresRestart Krylov steps per cycle under the same budget).
  index_t maxIrIterations = 50;
  index_t gmresRestart = 16;

  /// Record a per-iteration timing breakdown on rank 0 (Fig. 10).
  bool collectTrace = false;

  /// Optional progress hook, evaluated on rank 0 after every block step
  /// with (k, iteration seconds); returning true aborts the factorization
  /// collectively (the Sec. VI-B early-termination mechanism). Wire a
  /// trace::ProgressMonitor into it, typically against a recorded
  /// reference trace (trace/reference.h).
  std::function<bool(index_t, double)> progressCallback;

  /// Optional per-rank progress hook for mid-run slow-rank detection:
  /// after each block step every rank's time-to-barrier wait is gathered
  /// and the hook runs on rank 0 with (k, per-rank barrier-wait seconds).
  /// A rank that arrives persistently last (near-zero wait while peers
  /// idle) is the pipeline's pacing rank; wire a trace::SlowRankMonitor in
  /// and return true to terminate early. Costs one gather + (with
  /// look-ahead) one extra barrier per step — only when set.
  std::function<bool(index_t, const std::vector<double>&)>
      rankProgressCallback;

  /// Self-healing guards (the fail-fast half of Sec. VI-B): scan the
  /// factored diagonal block, the FP16 panels after cast/broadcast, and
  /// the trailing tiles after GEMM for non-finite or abnormally large
  /// entries, raising blas::AbnormalValueError instead of letting silent
  /// corruption reach verification. Off by default (zero cost).
  bool guardPanels = false;

  /// ABFT panel protection (blas/abft.h): checksum every FP16 panel at its
  /// broadcast root, broadcast the checksums alongside, and verify on every
  /// receiver — a single in-flight bit flip is located and corrected in
  /// place bit-exactly instead of aborting the run. Off by default.
  bool abftPanels = false;

  /// ABFT trailing-update carry check: verify the row-sum invariant of
  /// C -= L * U^T after each local GEMM region (catches corruption arising
  /// during the update, not just in flight). Off by default.
  bool abftGemm = false;

  /// Crash-rank recovery (simmpi/recovery.h): rotating in-memory
  /// checkpoints plus comm-replay resurrection. Requires the bulk
  /// scheduler without look-ahead and RunOptions.replayLog.
  simmpi::RecoveryConfig recovery;

  /// Shared sink for recovery/ABFT tallies (checkpoint, replay, flip
  /// detection/correction counts). Optional; allocated by the caller that
  /// wants the report (e.g. `hplmxp recover`).
  std::shared_ptr<simmpi::RecoveryStats> recoveryStats;

  /// Classical-IR divergence guard: when the residual fails to improve for
  /// this many consecutive iterations, automatically fall back to the
  /// GMRES refiner from the best iterate seen (Algorithm 1's safeguard
  /// spirit). 0 disables the fallback.
  index_t irDivergenceStrikes = 4;

  /// Device memory per GCD in bytes for the memory-accounting model;
  /// 0 disables accounting (tests on tiny problems).
  std::size_t deviceMemoryBytes = 0;

  /// Total number of ranks.
  [[nodiscard]] index_t worldSize() const { return pr * pc; }

  /// Throws CheckError when inconsistent.
  void validate() const {
    HPLMXP_REQUIRE(n > 0 && b > 0, "N and B must be positive");
    HPLMXP_REQUIRE(n % b == 0, "N must be a multiple of B");
    HPLMXP_REQUIRE(pr > 0 && pc > 0, "grid dims must be positive");
    HPLMXP_REQUIRE(n / b >= 1, "need at least one block");
    HPLMXP_REQUIRE(maxIrIterations >= 1, "need at least one IR iteration");
    recovery.validate();
    HPLMXP_REQUIRE(!recovery.enabled ||
                       (!lookahead && scheduler == Scheduler::kBulk),
                   "crash recovery requires the bulk scheduler without "
                   "look-ahead (deterministic step replay)");
  }
};

[[nodiscard]] constexpr const char* toString(HplaiConfig::Scheduler s) {
  return s == HplaiConfig::Scheduler::kDataflow ? "dataflow" : "bulk";
}

/// Scheduler a run should actually use given the pool's lane count: the
/// dataflow engine needs at least two execution lanes (the caller plus one
/// worker it can borrow) to overlap anything — on a single-lane pool its
/// task graph degenerates to bulk order while still paying graph-build
/// overhead (observed in PR 2's breakdown bench), so requests for dataflow
/// fall back to bulk there. The override is logged once per process.
[[nodiscard]] HplaiConfig::Scheduler effectiveScheduler(
    HplaiConfig::Scheduler requested, index_t poolLanes);

/// Parses "bulk" / "dataflow"; throws CheckError on anything else.
[[nodiscard]] inline HplaiConfig::Scheduler schedulerFromString(
    const std::string& s) {
  if (s == "bulk") {
    return HplaiConfig::Scheduler::kBulk;
  }
  if (s == "dataflow") {
    return HplaiConfig::Scheduler::kDataflow;
  }
  throw CheckError("unknown scheduler '" + s + "' (want bulk|dataflow)");
}

/// Adjusts a requested problem size the way the paper does (Sec. III-C:
/// "The size of A is determined by N and adjusted to a multiple of Pr, Pc
/// and B"): the returned N is the nearest positive multiple of
/// B * lcm(Pr, Pc), so every rank owns full blocks and equal-sized local
/// matrices with no padding.
constexpr index_t adjustProblemSize(index_t n, index_t b, index_t pr,
                                    index_t pc) {
  // gcd/lcm without <numeric> to stay constexpr-friendly everywhere.
  index_t a = pr, y = pc;
  while (y != 0) {
    const index_t t = a % y;
    a = y;
    y = t;
  }
  const index_t lcm = pr / a * pc;
  const index_t unit = b * lcm;
  const index_t down = (n / unit) * unit;
  const index_t up = down + unit;
  if (down <= 0) {
    return up;
  }
  return (n - down <= up - n) ? down : up;
}

/// Per-iteration timing breakdown (rank 0), the functional analogue of the
/// paper's Fig. 10 progress output.
struct IterationTrace {
  index_t k = 0;             // iteration (block step)
  index_t trailingBlocks = 0;  // remaining trailing extent in blocks
  double diagSeconds = 0.0;    // GETRF + diag broadcast
  double trsmSeconds = 0.0;    // panel solves
  double castSeconds = 0.0;    // CAST / TRANS_CAST
  double bcastSeconds = 0.0;   // panel broadcasts (includes wait time)
  double gemmSeconds = 0.0;    // trailing update
  index_t abftEvents = 0;      // ABFT corrections applied this step (rank 0)
};

/// Outcome of a benchmark run (the numbers HPL-AI reports).
struct HplaiResult {
  index_t n = 0;
  index_t b = 0;
  index_t ranks = 0;

  double factorSeconds = 0.0;
  double irSeconds = 0.0;
  double totalSeconds = 0.0;

  /// Effective flop count per the HPL-AI submission rules:
  /// (2/3) N^3 + (3/2) N^2, regardless of precision used.
  [[nodiscard]] double effectiveFlops() const {
    const double d = static_cast<double>(n);
    return (2.0 / 3.0) * d * d * d + 1.5 * d * d;
  }
  [[nodiscard]] double gflopsTotal() const {
    return totalSeconds > 0.0 ? effectiveFlops() / totalSeconds / 1e9 : 0.0;
  }
  [[nodiscard]] double gflopsPerRank() const {
    return ranks > 0 ? gflopsTotal() / static_cast<double>(ranks) : 0.0;
  }

  index_t irIterations = 0;
  bool converged = false;
  /// True when the run was stopped early by the progress hook.
  bool aborted = false;
  /// True when classical IR diverged and the run self-healed by falling
  /// back to the GMRES refiner (irDivergenceStrikes guard).
  bool fellBackToGmres = false;
  double residualInf = 0.0;   // final ||b - A x||_inf in FP64
  double threshold = 0.0;     // the line-44 convergence threshold
  /// residualInf / threshold; < 1 means HPL-AI-valid solution.
  [[nodiscard]] double scaledResidual() const {
    return threshold > 0.0 ? residualInf / threshold : 0.0;
  }

  std::vector<IterationTrace> trace;  // non-empty iff collectTrace
};

}  // namespace hplmxp
