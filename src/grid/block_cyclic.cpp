#include "grid/block_cyclic.h"

namespace hplmxp {

BlockCyclic::BlockCyclic(index_t n, index_t b, index_t pr, index_t pc)
    : n_(n), b_(b), nb_(n / b), pr_(pr), pc_(pc) {
  HPLMXP_REQUIRE(n > 0 && b > 0, "layout dims must be positive");
  HPLMXP_REQUIRE(n % b == 0, "N must be a multiple of B (pad the problem)");
  HPLMXP_REQUIRE(pr > 0 && pc > 0, "grid dims must be positive");
}

}  // namespace hplmxp
