// 2D process grid with node-local GCD mapping.
//
// The paper maps one MPI rank per GCD onto a Pr x Pc grid. How ranks are
// numbered matters because consecutive ranks share a node (and therefore
// NICs): a node holds Q = Qr x Qc GCDs arranged as a Qr x Qc subgrid, which
// tiles the process grid into a Kr x Kc layout of nodes (Kr = Pr/Qr,
// Kc = Pc/Qc). Section IV-B derives the per-node communication volume
// (Eq. 4) and shared-NIC communication time (Eq. 5) from this mapping;
// Finding 8 reports the best grids (3x2 on Summit, 2x4 on Frontier).
#pragma once

#include <string>

#include "util/common.h"

namespace hplmxp {

/// Rank numbering scheme over the grid.
enum class GridOrder {
  kColumnMajor,  // rank = pr + pc * Pr (the paper's "column-major" mapping)
  kNodeLocal,    // nodes tile the grid; GCDs tile the node (Qr x Qc)
};

struct GridCoord {
  index_t row = 0;
  index_t col = 0;
  friend bool operator==(const GridCoord&, const GridCoord&) = default;
};

/// Immutable description of the process grid and its node-local layout.
class ProcessGrid {
 public:
  /// Column-major grid; node boundaries fall every `gcdsPerNode` ranks.
  static ProcessGrid columnMajor(index_t pr, index_t pc, index_t gcdsPerNode);

  /// Node-local-grid mapping: requires Qr | Pr and Qc | Pc.
  static ProcessGrid nodeLocal(index_t pr, index_t pc, index_t qr, index_t qc);

  [[nodiscard]] index_t rows() const { return pr_; }
  [[nodiscard]] index_t cols() const { return pc_; }
  [[nodiscard]] index_t size() const { return pr_ * pc_; }
  [[nodiscard]] GridOrder order() const { return order_; }
  [[nodiscard]] index_t nodeRows() const { return kr_; }   // Kr
  [[nodiscard]] index_t nodeCols() const { return kc_; }   // Kc
  [[nodiscard]] index_t gcdRows() const { return qr_; }    // Qr
  [[nodiscard]] index_t gcdCols() const { return qc_; }    // Qc
  [[nodiscard]] index_t gcdsPerNode() const { return qr_ * qc_; }
  [[nodiscard]] index_t nodeCount() const;

  /// Grid coordinate of `rank`.
  [[nodiscard]] GridCoord coordOf(index_t rank) const;

  /// Rank at grid coordinate (row, col).
  [[nodiscard]] index_t rankOf(index_t row, index_t col) const;

  /// Node hosting `rank`.
  [[nodiscard]] index_t nodeOf(index_t rank) const;

  /// Number of ranks of `rank`'s node that share its process-grid *row*
  /// (including itself): the NIC-sharing multiplier Qc in Eq. 5 for
  /// row-directional traffic (and Qr for column-directional).
  [[nodiscard]] index_t rowSharersPerNode() const { return qc_; }
  [[nodiscard]] index_t colSharersPerNode() const { return qr_; }

  /// Per-node panel traffic from Eq. 4: 2*N^2/Kr + 2*N^2/Kc (bytes, FP16
  /// panels of total size 2*N^2 bytes in each direction).
  [[nodiscard]] double nodeTrafficBytes(double n) const;

  [[nodiscard]] std::string describe() const;

 private:
  ProcessGrid(GridOrder order, index_t pr, index_t pc, index_t qr, index_t qc);

  GridOrder order_;
  index_t pr_, pc_;  // process grid
  index_t qr_, qc_;  // node-local grid
  index_t kr_, kc_;  // node layout (only meaningful for kNodeLocal)
};

}  // namespace hplmxp
