// 2D block-cyclic distribution of an N x N matrix in B x B blocks over a
// Pr x Pc process grid (Sec. III-C of the paper). Global block (I, J) is
// owned by grid coordinate (I mod Pr, J mod Pc); each rank stores its
// blocks contiguously in one local col-major matrix whose leading dimension
// is fixed for the whole run (LDA = local row count).
#pragma once

#include "grid/process_grid.h"
#include "util/common.h"

namespace hplmxp {

/// Index math for one rank's view of the block-cyclic layout.
class BlockCyclic {
 public:
  /// Requires N to be a multiple of B (the driver pads N up front, as the
  /// paper does when adjusting N to a multiple of Pr, Pc and B).
  BlockCyclic(index_t n, index_t b, index_t pr, index_t pc);

  [[nodiscard]] index_t n() const { return n_; }
  [[nodiscard]] index_t blockSize() const { return b_; }
  [[nodiscard]] index_t globalBlocks() const { return nb_; }
  [[nodiscard]] index_t pr() const { return pr_; }
  [[nodiscard]] index_t pc() const { return pc_; }

  /// Owner grid coordinate of global block (bi, bj).
  [[nodiscard]] GridCoord ownerOf(index_t bi, index_t bj) const {
    HPLMXP_REQUIRE(bi >= 0 && bi < nb_ && bj >= 0 && bj < nb_,
                   "block index out of range");
    return GridCoord{bi % pr_, bj % pc_};
  }

  /// Number of global block-rows owned by grid row `prow`.
  [[nodiscard]] index_t localBlockRows(index_t prow) const {
    return (nb_ - prow + pr_ - 1) / pr_;
  }
  /// Number of global block-cols owned by grid col `pcol`.
  [[nodiscard]] index_t localBlockCols(index_t pcol) const {
    return (nb_ - pcol + pc_ - 1) / pc_;
  }

  /// Local matrix extent in rows/cols for a rank at (prow, pcol).
  [[nodiscard]] index_t localRows(index_t prow) const {
    return localBlockRows(prow) * b_;
  }
  [[nodiscard]] index_t localCols(index_t pcol) const {
    return localBlockCols(pcol) * b_;
  }

  /// Local block-row index of global block-row bi on its owner.
  [[nodiscard]] index_t localBlockRow(index_t bi) const { return bi / pr_; }
  [[nodiscard]] index_t localBlockCol(index_t bj) const { return bj / pc_; }

  /// Global block-row of local block-row lbi on grid row prow.
  [[nodiscard]] index_t globalBlockRow(index_t prow, index_t lbi) const {
    return lbi * pr_ + prow;
  }
  [[nodiscard]] index_t globalBlockCol(index_t pcol, index_t lbj) const {
    return lbj * pc_ + pcol;
  }

  /// First local block-row >= the one holding global block-row `bi` for a
  /// rank on grid row prow (i.e. the start of its trailing rows at step bi).
  [[nodiscard]] index_t firstLocalBlockRowAtOrAfter(index_t prow,
                                                    index_t bi) const {
    // Smallest l with l*pr + prow >= bi.
    if (bi <= prow) {
      return 0;
    }
    return (bi - prow + pr_ - 1) / pr_;
  }
  [[nodiscard]] index_t firstLocalBlockColAtOrAfter(index_t pcol,
                                                    index_t bj) const {
    if (bj <= pcol) {
      return 0;
    }
    return (bj - pcol + pc_ - 1) / pc_;
  }

  /// Owner and local offset of global element row i (block + remainder).
  struct ElementLoc {
    index_t gridIndex;   // owning grid row (or col)
    index_t localIndex;  // local element row (or col) on the owner
  };
  [[nodiscard]] ElementLoc locateRow(index_t i) const {
    HPLMXP_REQUIRE(i >= 0 && i < n_, "row index out of range");
    const index_t bi = i / b_;
    return ElementLoc{bi % pr_, (bi / pr_) * b_ + (i % b_)};
  }
  [[nodiscard]] ElementLoc locateCol(index_t j) const {
    HPLMXP_REQUIRE(j >= 0 && j < n_, "col index out of range");
    const index_t bj = j / b_;
    return ElementLoc{bj % pc_, (bj / pc_) * b_ + (j % b_)};
  }

 private:
  index_t n_, b_, nb_, pr_, pc_;
};

}  // namespace hplmxp
