#include "grid/process_grid.h"

#include <sstream>

namespace hplmxp {

ProcessGrid::ProcessGrid(GridOrder order, index_t pr, index_t pc, index_t qr,
                         index_t qc)
    : order_(order), pr_(pr), pc_(pc), qr_(qr), qc_(qc) {
  HPLMXP_REQUIRE(pr > 0 && pc > 0, "grid dims must be positive");
  HPLMXP_REQUIRE(qr > 0 && qc > 0, "node-local grid dims must be positive");
  kr_ = ceilDiv(pr_, qr_);
  kc_ = ceilDiv(pc_, qc_);
}

ProcessGrid ProcessGrid::columnMajor(index_t pr, index_t pc,
                                     index_t gcdsPerNode) {
  HPLMXP_REQUIRE(gcdsPerNode > 0, "gcdsPerNode must be positive");
  // Column-major numbering walks down columns, so a node's GCDs form a
  // (gcdsPerNode x 1) strip: Qr = Q, Qc = 1 in the Eq. 4/5 sense.
  return ProcessGrid(GridOrder::kColumnMajor, pr, pc, gcdsPerNode, 1);
}

ProcessGrid ProcessGrid::nodeLocal(index_t pr, index_t pc, index_t qr,
                                   index_t qc) {
  HPLMXP_REQUIRE(qr > 0 && pr % qr == 0, "node-local grid: Qr must divide Pr");
  HPLMXP_REQUIRE(qc > 0 && pc % qc == 0, "node-local grid: Qc must divide Pc");
  return ProcessGrid(GridOrder::kNodeLocal, pr, pc, qr, qc);
}

index_t ProcessGrid::nodeCount() const {
  return ceilDiv(size(), gcdsPerNode());
}

GridCoord ProcessGrid::coordOf(index_t rank) const {
  HPLMXP_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
  if (order_ == GridOrder::kColumnMajor) {
    return GridCoord{rank % pr_, rank / pr_};
  }
  const index_t q = gcdsPerNode();
  const index_t node = rank / q;
  const index_t local = rank % q;
  const index_t kr = node % kr_;
  const index_t kc = node / kr_;
  const index_t lr = local % qr_;
  const index_t lc = local / qr_;
  return GridCoord{kr * qr_ + lr, kc * qc_ + lc};
}

index_t ProcessGrid::rankOf(index_t row, index_t col) const {
  HPLMXP_REQUIRE(row >= 0 && row < pr_ && col >= 0 && col < pc_,
                 "grid coordinate out of range");
  if (order_ == GridOrder::kColumnMajor) {
    return row + col * pr_;
  }
  const index_t kr = row / qr_;
  const index_t kc = col / qc_;
  const index_t lr = row % qr_;
  const index_t lc = col % qc_;
  const index_t node = kr + kc * kr_;
  const index_t local = lr + lc * qr_;
  return node * gcdsPerNode() + local;
}

index_t ProcessGrid::nodeOf(index_t rank) const {
  HPLMXP_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
  return rank / gcdsPerNode();
}

double ProcessGrid::nodeTrafficBytes(double n) const {
  // Eq. 4: Data_Size = 2*N^2/Kr + 2*N^2/Kc, with 2 bytes per FP16 entry.
  const double panelBytes = 2.0 * n * n;
  return panelBytes / static_cast<double>(kr_) +
         panelBytes / static_cast<double>(kc_);
}

std::string ProcessGrid::describe() const {
  std::ostringstream os;
  os << pr_ << "x" << pc_ << " grid, ";
  if (order_ == GridOrder::kColumnMajor) {
    os << "column-major, " << gcdsPerNode() << " GCDs/node";
  } else {
    os << qr_ << "x" << qc_ << " node-local grid (" << kr_ << "x" << kc_
       << " nodes)";
  }
  return os.str();
}

}  // namespace hplmxp
