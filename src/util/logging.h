// Minimal leveled logging. Thread-safe; used by the runtime and the
// progress monitor. Output format mirrors the style of large-run progress
// reports described in Sec. VI-B of the paper.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace hplmxp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global logging configuration.
class Log {
 public:
  static void setLevel(LogLevel level);
  static LogLevel level();

  /// Emits one line at `level` if enabled. Thread-safe.
  static void write(LogLevel level, const std::string& message);

 private:
  static std::mutex& mutex();
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void logDebug(Args&&... args) {
  Log::write(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void logInfo(Args&&... args) {
  Log::write(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void logWarn(Args&&... args) {
  Log::write(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void logError(Args&&... args) {
  Log::write(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace hplmxp
