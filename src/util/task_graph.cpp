#include "util/task_graph.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/timer.h"
#include "util/work_steal.h"

namespace hplmxp {

const char* toString(TaskKind kind) {
  switch (kind) {
    case TaskKind::kGeneric:
      return "generic";
    case TaskKind::kGetrf:
      return "getrf";
    case TaskKind::kDiagBcast:
      return "diag-bcast";
    case TaskKind::kTrsm:
      return "trsm";
    case TaskKind::kCast:
      return "cast";
    case TaskKind::kPanelBcast:
      return "panel-bcast";
    case TaskKind::kGemm:
      return "gemm";
    case TaskKind::kPoll:
      return "poll";
  }
  return "unknown";
}

TaskGraph::TaskId TaskGraph::add(TaskKind kind, index_t step,
                                 std::function<void()> fn) {
  const TaskId id = static_cast<TaskId>(nodes_.size());
  Node node;
  node.fn = std::move(fn);
  node.kind = kind;
  node.step = step;
  nodes_.push_back(std::move(node));
  ++computeTasks_;
  return id;
}

TaskGraph::TaskId TaskGraph::addMain(TaskKind kind, index_t step,
                                     std::function<void()> fn) {
  const TaskId id = add(kind, step, std::move(fn));
  nodes_[static_cast<std::size_t>(id)].mainOnly = true;
  --computeTasks_;
  mainFifo_.push_back(id);
  return id;
}

void TaskGraph::addDep(TaskId before, TaskId after) {
  HPLMXP_REQUIRE(before >= 0 && before < size() && after >= 0 &&
                     after < size() && before != after,
                 "TaskGraph::addDep: invalid task ids");
  nodes_[static_cast<std::size_t>(before)].successors.push_back(after);
  ++nodes_[static_cast<std::size_t>(after)].depCount;
}

index_t TaskGraph::dependencyCount(TaskId id) const {
  HPLMXP_REQUIRE(id >= 0 && id < size(), "TaskGraph: invalid task id");
  return nodes_[static_cast<std::size_t>(id)].depCount;
}

index_t TaskGraph::successorCount(TaskId id) const {
  HPLMXP_REQUIRE(id >= 0 && id < size(), "TaskGraph: invalid task id");
  return static_cast<index_t>(
      nodes_[static_cast<std::size_t>(id)].successors.size());
}

bool TaskGraph::isMainOnly(TaskId id) const {
  HPLMXP_REQUIRE(id >= 0 && id < size(), "TaskGraph: invalid task id");
  return nodes_[static_cast<std::size_t>(id)].mainOnly;
}

TaskKind TaskGraph::kindOf(TaskId id) const {
  HPLMXP_REQUIRE(id >= 0 && id < size(), "TaskGraph: invalid task id");
  return nodes_[static_cast<std::size_t>(id)].kind;
}

bool TaskGraph::acyclic() const {
  std::vector<std::int32_t> pending(nodes_.size());
  std::vector<TaskId> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    pending[i] = nodes_[i].depCount;
    if (pending[i] == 0) {
      ready.push_back(static_cast<TaskId>(i));
    }
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const TaskId id = ready.back();
    ready.pop_back();
    ++visited;
    for (const TaskId s : nodes_[static_cast<std::size_t>(id)].successors) {
      if (--pending[static_cast<std::size_t>(s)] == 0) {
        ready.push_back(s);
      }
    }
  }
  return visited == nodes_.size();
}

/// Per-execute() shared state, heap-held via shared_ptr so pool runner
/// closures can never observe a dangling frame even if execute() returns
/// while a late-scheduled runner is still winding down.
struct TaskGraph::ExecState {
  ExecState(std::size_t tasks, std::size_t laneCount,
            const ClockSource& clockSource)
      : pending(tasks), records(tasks), lanes(laneCount),
        source(&clockSource), clock(clockSource) {
    deques.reserve(laneCount);
    for (std::size_t i = 0; i < laneCount; ++i) {
      deques.push_back(
          std::make_unique<WorkStealDeque<TaskId>>(std::max<std::size_t>(
              tasks, 1)));
    }
  }

  std::vector<std::atomic<std::int32_t>> pending;
  std::vector<std::unique_ptr<WorkStealDeque<TaskId>>> deques;
  std::vector<TaskRecord> records;
  std::vector<LaneStats> lanes;

  const ClockSource* source;  // all timeline stamps read this source
  Timer clock;                // shared time base for the timeline
  index_t spinsBeforeYield = 64;

  std::atomic<index_t> retired{0};
  std::atomic<index_t> computeRemaining{0};  // unretired non-main tasks
  std::atomic<index_t> activeRunners{0};

  std::atomic<bool> failed{false};
  std::mutex excMutex;
  std::exception_ptr exc;
};

void TaskGraph::runTask(ExecState& st, TaskId id, std::int32_t lane,
                        bool stolen) {
  Node& node = nodes_[static_cast<std::size_t>(id)];
  TaskRecord& rec = st.records[static_cast<std::size_t>(id)];
  rec.kind = node.kind;
  rec.step = node.step;
  rec.lane = lane;
  rec.mainOnly = node.mainOnly;
  rec.stolen = stolen;
  rec.beginSeconds = st.clock.seconds();
  const bool skip = st.failed.load(std::memory_order_acquire) ||
                    cancelled_.load(std::memory_order_acquire);
  if (skip) {
    rec.skipped = true;
  } else {
    try {
      node.fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(st.excMutex);
      if (!st.exc) {
        st.exc = std::current_exception();
      }
      st.failed.store(true, std::memory_order_release);
    }
  }
  rec.endSeconds = st.clock.seconds();

  LaneStats& ls = st.lanes[static_cast<std::size_t>(lane)];
  ++ls.tasksRun;
  ls.busySeconds += rec.seconds();
  if (stolen) {
    ++ls.steals;
  }

  // Retire: wake successors. Ready compute tasks go to this lane's deque
  // (hot data); ready main-only tasks are picked up by lane 0's FIFO scan.
  for (const TaskId s : node.successors) {
    if (st.pending[static_cast<std::size_t>(s)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      if (!nodes_[static_cast<std::size_t>(s)].mainOnly) {
        const bool pushed =
            st.deques[static_cast<std::size_t>(lane)]->push(s);
        HPLMXP_REQUIRE(pushed, "TaskGraph: work deque overflow");
      }
    }
  }
  if (!node.mainOnly) {
    st.computeRemaining.fetch_sub(1, std::memory_order_acq_rel);
  }
  st.retired.fetch_add(1, std::memory_order_acq_rel);
}

void TaskGraph::runLane(ExecState& st, std::int32_t lane) {
  const Timer laneClock(*st.source);
  const std::size_t laneCount = st.deques.size();
  index_t spins = 0;
  // Worker lanes stay until every compute task in the whole graph has
  // retired — not merely until their deque drains: a main-lane broadcast
  // may still release compute successors. They spin-then-yield while idle
  // so a rank blocked in a collective does not starve sibling ranks
  // sharing the pool.
  while (st.computeRemaining.load(std::memory_order_acquire) > 0) {
    TaskId id = kNoTask;
    if (st.deques[static_cast<std::size_t>(lane)]->tryPop(id)) {
      runTask(st, id, lane, /*stolen=*/false);
      spins = 0;
      continue;
    }
    bool stole = false;
    for (std::size_t i = 1; i < laneCount && !stole; ++i) {
      const std::size_t victim =
          (static_cast<std::size_t>(lane) + i) % laneCount;
      stole = st.deques[victim]->trySteal(id);
    }
    if (stole) {
      runTask(st, id, lane, /*stolen=*/true);
      spins = 0;
      continue;
    }
    if (++spins > st.spinsBeforeYield) {
      std::this_thread::yield();
    }
  }
  LaneStats& ls = st.lanes[static_cast<std::size_t>(lane)];
  ls.idleSeconds = std::max(0.0, laneClock.seconds() - ls.busySeconds);
}

TaskGraph::ExecStats TaskGraph::execute(ThreadPool& pool) {
  return execute(pool, ExecOptions{});
}

TaskGraph::ExecStats TaskGraph::execute(ThreadPool& pool,
                                        const ExecOptions& opts) {
  const index_t total = size();
  ExecStats out;
  if (total == 0) {
    out.lanes.resize(1);
    return out;
  }
  HPLMXP_REQUIRE(acyclic(), "TaskGraph::execute: dependency cycle");

  index_t laneCount = opts.lanes;
  if (laneCount <= 0) {
    laneCount = std::min<index_t>(
        static_cast<index_t>(pool.threadCount()) + 1, 16);
  }
  laneCount = std::max<index_t>(laneCount, 1);

  cancelled_.store(false, std::memory_order_release);
  const ClockSource& clockSource =
      opts.clock != nullptr ? *opts.clock : steadyClock();
  auto st = std::make_shared<ExecState>(static_cast<std::size_t>(total),
                                        static_cast<std::size_t>(laneCount),
                                        clockSource);
  st->spinsBeforeYield = std::max<index_t>(opts.spinsBeforeYield, 1);
  st->computeRemaining.store(computeTasks_, std::memory_order_relaxed);

  // Seed ready tasks round-robin across the lanes. No lane is running yet,
  // so pushing into non-owned deques here is race-free.
  index_t seedLane = 0;
  for (TaskId id = 0; id < total; ++id) {
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    st->pending[static_cast<std::size_t>(id)].store(
        node.depCount, std::memory_order_relaxed);
    if (node.depCount == 0 && !node.mainOnly) {
      const bool pushed =
          st->deques[static_cast<std::size_t>(seedLane)]->push(id);
      HPLMXP_REQUIRE(pushed, "TaskGraph: work deque overflow");
      seedLane = (seedLane + 1) % laneCount;
    }
  }

  // Worker lanes run as plain pool tasks; the caller is lane 0.
  for (index_t lane = 1; lane < laneCount; ++lane) {
    st->activeRunners.fetch_add(1, std::memory_order_acq_rel);
    TaskGraph* self = this;
    pool.enqueue([self, st, lane] {
      self->runLane(*st, static_cast<std::int32_t>(lane));
      st->activeRunners.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  // Lane 0: prefer the main-lane FIFO head (head-of-line blocking keeps
  // the cross-rank collective order identical to submission order), then
  // own deque, then steal.
  {
    const Timer laneClock(*st->source);
    std::size_t mainHead = 0;
    index_t spins = 0;
    while (st->retired.load(std::memory_order_acquire) < total) {
      if (mainHead < mainFifo_.size()) {
        const TaskId head = mainFifo_[mainHead];
        if (st->pending[static_cast<std::size_t>(head)].load(
                std::memory_order_acquire) == 0) {
          runTask(*st, head, /*lane=*/0, /*stolen=*/false);
          ++mainHead;
          spins = 0;
          continue;
        }
      }
      TaskId id = kNoTask;
      if (st->deques[0]->tryPop(id)) {
        runTask(*st, id, /*lane=*/0, /*stolen=*/false);
        spins = 0;
        continue;
      }
      bool stole = false;
      for (index_t i = 1; i < laneCount && !stole; ++i) {
        stole = st->deques[static_cast<std::size_t>(i)]->trySteal(id);
      }
      if (stole) {
        runTask(*st, id, /*lane=*/0, /*stolen=*/true);
        spins = 0;
        continue;
      }
      if (++spins > st->spinsBeforeYield) {
        std::this_thread::yield();
      }
    }
    st->lanes[0].idleSeconds =
        std::max(0.0, laneClock.seconds() - st->lanes[0].busySeconds);
  }

  // Wait for runner closures to wind down before harvesting lane stats
  // (they only observe computeRemaining == 0 after all compute retired,
  // so this wait is short).
  while (st->activeRunners.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }

  out.makespanSeconds = st->clock.seconds();
  out.lanes = std::move(st->lanes);
  out.records = std::move(st->records);
  out.cancelled = cancelled_.load(std::memory_order_acquire);
  for (const TaskRecord& rec : out.records) {
    if (rec.skipped) {
      ++out.tasksSkipped;
    } else {
      ++out.tasksRun;
    }
    if (rec.stolen) {
      ++out.steals;
    }
  }
  if (st->exc) {
    std::rethrow_exception(st->exc);
  }
  return out;
}

}  // namespace hplmxp
