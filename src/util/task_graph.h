// Dataflow task-graph execution engine for the tile scheduler.
//
// A TaskGraph is a DAG of closures. Each node carries an atomic dependency
// counter; when the last predecessor retires, the node becomes ready and is
// pushed onto the retiring lane's work-stealing deque, so a GEMM tile fires
// the moment its L-tile, U-tile, and C-tile predecessors retire — no
// inter-kernel barriers. Execution borrows lanes from a util::ThreadPool:
// the caller is lane 0 and `lanes - 1` runner closures are enqueued on the
// pool; idle lanes steal from each other (util/work_steal.h).
//
// Main-lane tasks (addMain) are the communication discipline: they run
// ONLY on lane 0 — the caller's thread — and in exact submission order,
// with head-of-line blocking. In the distributed LU this keeps every
// collective on the rank's own thread (the simmpi fault injector's op
// counters are per-rank-thread) and in an identical order on all ranks, so
// the dataflow scheduler cannot introduce cross-rank collective-order
// deadlocks that the bulk schedule did not have.
//
// Failure semantics mirror ThreadPool::parallelFor: the first exception
// wins, every not-yet-started body after it is skipped, the graph drains
// (skipped tasks still retire their successors), and execute() rethrows on
// the caller. cancel() is the cooperative variant used by the collective
// abort poll: it skips remaining bodies without an error.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/clock.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace hplmxp {

/// Task kinds, used for trace attribution (src/trace/sched_timeline.h)
/// and per-iteration breakdown folding; kGeneric for anything else.
enum class TaskKind : std::uint8_t {
  kGeneric,
  kGetrf,
  kDiagBcast,
  kTrsm,
  kCast,
  kPanelBcast,
  kGemm,
  kPoll,
};

[[nodiscard]] const char* toString(TaskKind kind);

class TaskGraph {
 public:
  using TaskId = std::int32_t;
  static constexpr TaskId kNoTask = -1;

  /// One executed (or skipped) task in the timeline, stamped by the lane
  /// that ran it. Times are seconds since execute() began.
  struct TaskRecord {
    TaskKind kind = TaskKind::kGeneric;
    index_t step = 0;
    std::int32_t lane = -1;
    bool mainOnly = false;
    bool skipped = false;
    bool stolen = false;
    double beginSeconds = 0.0;
    double endSeconds = 0.0;
    [[nodiscard]] double seconds() const { return endSeconds - beginSeconds; }
  };

  struct LaneStats {
    std::int64_t tasksRun = 0;  // bodies executed on this lane (incl. skipped)
    std::int64_t steals = 0;    // tasks this lane stole from another deque
    double busySeconds = 0.0;   // sum of task durations on this lane
    double idleSeconds = 0.0;   // lane wall time minus busy time
  };

  struct ExecStats {
    std::vector<LaneStats> lanes;
    std::vector<TaskRecord> records;  // indexed by TaskId
    double makespanSeconds = 0.0;
    std::int64_t tasksRun = 0;
    std::int64_t tasksSkipped = 0;
    std::int64_t steals = 0;
    bool cancelled = false;
  };

  struct ExecOptions {
    /// Total lanes including the caller; 0 = min(pool workers + 1, 16).
    index_t lanes = 0;
    /// Failed pop/steal attempts before an idle lane yields the CPU.
    index_t spinsBeforeYield = 64;
    /// Time base for the timeline stamps and lane idle accounting
    /// (util/clock.h); null = the process wall clock. The fleet simulator
    /// passes its virtual clock here so simulated schedules fold through
    /// trace/sched_timeline unchanged.
    const ClockSource* clock = nullptr;
  };

  /// Adds a task runnable on any lane. Returns its id (dense, 0-based).
  TaskId add(TaskKind kind, index_t step, std::function<void()> fn);

  /// Adds a main-lane task: runs only on the caller's thread (lane 0), in
  /// submission order relative to every other main-lane task.
  TaskId addMain(TaskKind kind, index_t step, std::function<void()> fn);

  /// Declares that `before` must retire before `after` may start.
  /// Duplicate edges are allowed (counted consistently on both sides).
  void addDep(TaskId before, TaskId after);

  [[nodiscard]] index_t size() const {
    return static_cast<index_t>(nodes_.size());
  }
  [[nodiscard]] index_t dependencyCount(TaskId id) const;
  [[nodiscard]] index_t successorCount(TaskId id) const;
  [[nodiscard]] bool isMainOnly(TaskId id) const;
  [[nodiscard]] TaskKind kindOf(TaskId id) const;

  /// Kahn's-algorithm cycle check; execute() requires this to hold.
  [[nodiscard]] bool acyclic() const;

  /// Cooperative abort, callable from inside a task: every body not yet
  /// started is skipped, the graph drains, execute() returns with
  /// stats.cancelled == true (no exception).
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelRequested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Runs the whole graph to quiescence and returns the timeline. Reusable:
  /// each call resets the execution state (the graph shape is immutable).
  /// Rethrows the first task exception after the graph drains.
  ExecStats execute(ThreadPool& pool, const ExecOptions& opts);
  ExecStats execute(ThreadPool& pool);

 private:
  struct Node {
    std::function<void()> fn;
    std::vector<TaskId> successors;
    TaskKind kind = TaskKind::kGeneric;
    index_t step = 0;
    std::int32_t depCount = 0;
    bool mainOnly = false;
  };

  struct ExecState;  // defined in task_graph.cpp

  void runLane(ExecState& st, std::int32_t lane);
  void runTask(ExecState& st, TaskId id, std::int32_t lane, bool stolen);

  std::vector<Node> nodes_;
  std::vector<TaskId> mainFifo_;  // main-lane tasks in submission order
  index_t computeTasks_ = 0;      // nodes with mainOnly == false
  std::atomic<bool> cancelled_{false};
};

}  // namespace hplmxp
