// Fixed-capacity work-stealing deque (Chase-Lev shape) for the dataflow
// tile scheduler. One owner thread pushes/pops at the bottom (LIFO, good
// locality: a retired tile's successors are hot); any number of thieves
// steal from the top (FIFO, oldest-first, which tends to steal large
// untouched subtrees).
//
// Memory-order note: every atomic access is seq_cst on purpose. The
// classic Chase-Lev formulation uses acquire/release plus a standalone
// atomic_thread_fence in tryPop; ThreadSanitizer does not model standalone
// fences and reports false races on it. The deque holds 4-byte task ids
// and each operation is O(1), so the seq_cst cost is noise next to a tile
// kernel, and the structure stays provably correct under plain sequential
// consistency (see doc/SCHEDULER.md for the argument).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/common.h"

namespace hplmxp {

template <typename T>
class WorkStealDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WorkStealDeque elements must be trivially copyable");

 public:
  /// Capacity is fixed at construction (rounded up to a power of two). The
  /// scheduler sizes it to the total task count of the graph, so push can
  /// never observe a full deque there.
  explicit WorkStealDeque(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    buf_ = std::vector<std::atomic<T>>(cap);
    mask_ = static_cast<std::int64_t>(cap) - 1;
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Owner only. Returns false when the deque is full.
  bool push(T value) {
    const std::int64_t b = bottom_.load();
    const std::int64_t t = top_.load();
    if (b - t > mask_) {
      return false;  // full
    }
    buf_[static_cast<std::size_t>(b & mask_)].store(value);
    bottom_.store(b + 1);
    return true;
  }

  /// Owner only. Pops the most recently pushed element (LIFO).
  bool tryPop(T& out) {
    const std::int64_t b = bottom_.load() - 1;
    bottom_.store(b);
    std::int64_t t = top_.load();
    if (t > b) {
      bottom_.store(t);  // empty: restore canonical state
      return false;
    }
    out = buf_[static_cast<std::size_t>(b & mask_)].load();
    if (t == b) {
      // Last element: race with concurrent steals for it via top.
      const bool won = top_.compare_exchange_strong(t, t + 1);
      bottom_.store(b + 1);
      return won;
    }
    return true;
  }

  /// Any thread. Steals the oldest element (FIFO). A false return means
  /// "nothing stolen" (empty or lost a race), not "deque is empty" —
  /// callers must loop.
  bool trySteal(T& out) {
    std::int64_t t = top_.load();
    const std::int64_t b = bottom_.load();
    if (t >= b) {
      return false;
    }
    out = buf_[static_cast<std::size_t>(t & mask_)].load();
    return top_.compare_exchange_strong(t, t + 1);
  }

  /// Approximate (racy) size; exact when quiescent.
  [[nodiscard]] std::int64_t sizeApprox() const {
    const std::int64_t b = bottom_.load();
    const std::int64_t t = top_.load();
    return b > t ? b - t : 0;
  }

 private:
  std::vector<std::atomic<T>> buf_;
  std::int64_t mask_ = 0;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
};

}  // namespace hplmxp
