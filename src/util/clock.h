// Monotonic clock-source abstraction.
//
// Everything that stamps time — Timer, the task-graph timeline the
// sched_timeline idle accounting folds, the simmpi Request poll backoff —
// reads seconds through a ClockSource instead of calling
// std::chrono::steady_clock::now() directly. That indirection is what lets
// the fleet co-simulator (src/fleetsim) re-run the same machinery on a
// *virtual* clock: a simulated run advances ManualClock with its event
// heap, and every reused component observes simulated time instead of
// wall time. Real executions pay one virtual call per stamp.
#pragma once

#include <atomic>
#include <chrono>

#include "util/common.h"

namespace hplmxp {

/// Source of monotonic time in seconds. Implementations must be
/// monotonic (nowSeconds() never decreases) and thread-safe.
class ClockSource {
 public:
  virtual ~ClockSource() = default;
  [[nodiscard]] virtual double nowSeconds() const = 0;
};

namespace detail {
/// The process wall clock; the only place in the library that touches
/// std::chrono::steady_clock directly.
class SteadyClockSource final : public ClockSource {
 public:
  [[nodiscard]] double nowSeconds() const override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};
}  // namespace detail

/// Process-wide steady_clock-backed source (the default everywhere).
inline const ClockSource& steadyClock() {
  static const detail::SteadyClockSource source;
  return source;
}

/// Manually advanced monotonic clock — the fleet simulator's virtual time
/// base. advanceTo() rejects travel into the past, so any component
/// holding a Timer over this source keeps its monotonicity contract.
/// Reads and advances are atomic (relaxed): a concurrent reader sees
/// either the old or the new instant, never a torn value.
class ManualClock final : public ClockSource {
 public:
  [[nodiscard]] double nowSeconds() const override {
    return now_.load(std::memory_order_relaxed);
  }

  void advanceTo(double seconds) {
    HPLMXP_REQUIRE(seconds >= now_.load(std::memory_order_relaxed),
                   "ManualClock cannot move backwards");
    now_.store(seconds, std::memory_order_relaxed);
  }

  void advanceBy(double seconds) {
    HPLMXP_REQUIRE(seconds >= 0.0, "ManualClock advance must be >= 0");
    now_.store(now_.load(std::memory_order_relaxed) + seconds,
               std::memory_order_relaxed);
  }

 private:
  std::atomic<double> now_{0.0};
};

}  // namespace hplmxp
