#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/common.h"

namespace hplmxp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HPLMXP_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::addRow(std::vector<std::string> row) {
  HPLMXP_REQUIRE(row.size() == header_.size(),
                 "row arity must match header arity");
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emitRow(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    emitRow(row);
  }
  return os.str();
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, v);
  return buf;
}

std::string Table::num(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace hplmxp
