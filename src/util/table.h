// ASCII table formatting for the benchmark harnesses. Every figure/table
// reproduction prints its rows/series through this so outputs are uniform
// and diffable.
#pragma once

#include <string>
#include <vector>

namespace hplmxp {

/// Simple right-padded ASCII table. Columns are sized to content.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void addRow(std::vector<std::string> row);

  /// Renders the table with a header separator.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

  /// Formats a double with `digits` significant decimals.
  static std::string num(double v, int digits = 2);
  /// Formats a double in scientific notation.
  static std::string sci(double v, int digits = 3);
  /// Formats an integer.
  static std::string num(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hplmxp
