#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace hplmxp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    unsigned hc = std::thread::hardware_concurrency();
    threads = hc == 0 ? 1 : hc;
  }
  // The caller of parallelFor also executes chunks, so a pool of size N
  // gives N+1 lanes; spawn threads-1 workers to match the requested width.
  const std::size_t spawn = threads > 0 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) {
      return;
    }
    runOneTask(lock);
  }
}

bool ThreadPool::runOneTask(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) {
    return false;
  }
  Task task = std::move(queue_.front());
  queue_.pop();
  lock.unlock();
  task.fn();
  lock.lock();
  return true;
}

namespace {

/// Shared state of one parallelFor invocation.
struct ForState {
  std::atomic<index_t> nextChunk{0};
  std::atomic<index_t> remainingChunks;
  index_t totalChunks = 0;
  index_t begin = 0;
  index_t end = 0;
  index_t chunkSize = 0;
  const std::function<void(index_t)>* fn = nullptr;

  std::mutex doneMutex;
  std::condition_variable doneCv;

  std::mutex excMutex;
  std::exception_ptr exc;
  std::atomic<bool> failed{false};

  void runChunks() {
    while (true) {
      const index_t c = nextChunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= totalChunks) {
        return;
      }
      const index_t lo = begin + c * chunkSize;
      const index_t hi = std::min(end, lo + chunkSize);
      if (!failed.load(std::memory_order_relaxed)) {
        // Fast-path skip once a failure is seen; the flag is atomic so the
        // check is race-free (the exception_ptr itself stays under lock).
        try {
          for (index_t i = lo; i < hi; ++i) {
            (*fn)(i);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(excMutex);
          if (!exc) {
            exc = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
        }
      }
      if (remainingChunks.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(doneMutex);
        doneCv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallelFor(index_t begin, index_t end,
                             const std::function<void(index_t)>& fn,
                             index_t chunks) {
  if (begin >= end) {
    return;
  }
  const index_t n = end - begin;
  const index_t lanes = static_cast<index_t>(workers_.size()) + 1;
  if (chunks <= 0) {
    chunks = lanes * 4;  // mild over-decomposition to absorb imbalance
  }
  chunks = std::min(chunks, n);

  auto state = std::make_shared<ForState>();
  state->totalChunks = chunks;
  state->remainingChunks.store(chunks, std::memory_order_relaxed);
  state->begin = begin;
  state->end = end;
  state->chunkSize = ceilDiv(n, chunks);
  state->fn = &fn;

  // One helper task per worker; each drains chunks until exhausted.
  const index_t helpers =
      std::min<index_t>(static_cast<index_t>(workers_.size()), chunks);
  if (helpers > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (index_t i = 0; i < helpers; ++i) {
      queue_.push(Task{[state] { state->runChunks(); }});
    }
  }
  cv_.notify_all();

  state->runChunks();

  std::unique_lock<std::mutex> lock(state->doneMutex);
  state->doneCv.wait(lock, [&] {
    return state->remainingChunks.load(std::memory_order_acquire) == 0;
  });
  if (state->exc) {
    std::rethrow_exception(state->exc);
  }
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(Task{std::move(fn)});
  }
  cv_.notify_one();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("HPLMXP_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) {
        return static_cast<std::size_t>(v);
      }
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace hplmxp
