#include "util/thread_pool.h"

#include <cstdlib>

namespace hplmxp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    unsigned hc = std::thread::hardware_concurrency();
    threads = hc == 0 ? 1 : hc;
  }
  // The caller of parallelFor also executes chunks, so a pool of size N
  // gives N+1 lanes; spawn threads-1 workers to match the requested width.
  const std::size_t spawn = threads > 0 ? threads - 1 : 0;
  ring_.resize(kTaskRingCapacity);
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queueEmpty(); });
    if (stop_ && queueEmpty()) {
      return;
    }
    runOneTask(lock);
  }
}

bool ThreadPool::runOneTask(std::unique_lock<std::mutex>& lock) {
  if (queueEmpty()) {
    return false;
  }
  Task task = queuePop();
  lock.unlock();
  task.fn();
  lock.lock();
  return true;
}

void ThreadPool::queuePush(Task t) {
  if (ringCount_ == ring_.size()) {
    std::vector<Task> grown(std::max<std::size_t>(16, ring_.size() * 2));
    for (std::size_t i = 0; i < ringCount_; ++i) {
      grown[i] = std::move(ring_[(ringHead_ + i) % ring_.size()]);
    }
    ring_ = std::move(grown);
    ringHead_ = 0;
  }
  ring_[(ringHead_ + ringCount_) % ring_.size()] = std::move(t);
  ++ringCount_;
}

ThreadPool::Task ThreadPool::queuePop() {
  Task t = std::move(ring_[ringHead_]);
  ringHead_ = (ringHead_ + 1) % ring_.size();
  --ringCount_;
  return t;
}

std::uint64_t ThreadPool::postHelpers(void (*run)(void*), void* arg,
                                      index_t count) {
  int slot = -1;
  for (int s = 0; s < kJobSlots; ++s) {
    bool expected = false;
    if (slots_[s].inUse.compare_exchange_strong(expected, true,
                                                std::memory_order_acquire)) {
      slot = s;
      break;
    }
  }
  if (slot < 0) {
    return kNoJob;  // every slot busy: caller runs the range alone
  }
  JobSlot& js = slots_[slot];
  js.run = run;
  js.arg = arg;
  const std::uint64_t id =
      (js.epoch.load(std::memory_order_relaxed) << 8) |
      static_cast<std::uint64_t>(slot);
  {
    // The queue mutex publishes run/arg to whichever worker pops a helper.
    std::lock_guard<std::mutex> lock(mutex_);
    for (index_t i = 0; i < count && !queueFull(); ++i) {
      // [this, id] is 16 trivially-copyable bytes: it fits std::function's
      // small-buffer storage, so posting helpers does not allocate. A full
      // ring means every worker already has a backlog of hints to drain;
      // posting fewer (or zero) helpers only costs parallelism, never
      // correctness — the caller runs every chunk itself if need be.
      queuePush(Task{[this, id] { runJob(id); }});
    }
  }
  cv_.notify_all();
  return id;
}

void ThreadPool::runJob(std::uint64_t id) {
  JobSlot& js = slots_[id & 0xFF];
  const std::uint64_t epoch = id >> 8;
  js.active.fetch_add(1, std::memory_order_acq_rel);
  if (js.epoch.load(std::memory_order_acquire) == epoch) {
    js.run(js.arg);
  }
  js.active.fetch_sub(1, std::memory_order_release);
}

void ThreadPool::retireJob(std::uint64_t id) {
  JobSlot& js = slots_[id & 0xFF];
  // Invalidate first so helpers that have not started yet become no-ops;
  // then wait out the ones already inside run(). All chunks are done, so
  // an active helper is at most finishing its (empty) claim loop.
  js.epoch.fetch_add(1, std::memory_order_release);
  while (js.active.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  js.inUse.store(false, std::memory_order_release);
}

void ThreadPool::parallelFor(index_t begin, index_t end,
                             const std::function<void(index_t)>& fn,
                             index_t chunks) {
  parallelForChunked(
      begin, end,
      [&fn](index_t lo, index_t hi) {
        for (index_t i = lo; i < hi; ++i) {
          fn(i);
        }
      },
      chunks);
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queuePush(Task{std::move(fn)});
  }
  cv_.notify_one();
}

ThreadPool::ScratchLease::~ScratchLease() {
  if (pool_ != nullptr) {
    pool_->returnScratch(arena_);
  }
}

ThreadPool::ScratchLease ThreadPool::scratch() {
  std::lock_guard<std::mutex> lock(scratchMutex_);
  if (scratchFree_.empty()) {
    scratchOwned_.push_back(std::make_unique<Arena>());
    scratchFree_.reserve(scratchOwned_.capacity());
    scratchFree_.push_back(scratchOwned_.back().get());
  }
  Arena* arena = scratchFree_.back();
  scratchFree_.pop_back();
  return ScratchLease(this, arena);
}

void ThreadPool::returnScratch(Arena* arena) {
  std::lock_guard<std::mutex> lock(scratchMutex_);
  scratchFree_.push_back(arena);
}

std::size_t ThreadPool::scratchArenaCount() const {
  std::lock_guard<std::mutex> lock(scratchMutex_);
  return scratchOwned_.size();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("HPLMXP_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) {
        return static_cast<std::size_t>(v);
      }
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace hplmxp
