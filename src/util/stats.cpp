#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace hplmxp {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = static_cast<index_t>(values.size());
  if (values.empty()) {
    return s;
  }
  RunningStats rs;
  for (double v : values) {
    rs.add(v);
  }
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  return s;
}

double percentile(std::vector<double> values, double p) {
  HPLMXP_REQUIRE(!values.empty(), "percentile of empty sample");
  HPLMXP_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

double relativeSpreadPercent(const std::vector<double>& values) {
  const Summary s = summarize(values);
  if (s.count == 0 || s.mean == 0.0) {
    return 0.0;
  }
  return (s.max - s.min) / s.mean * 100.0;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace hplmxp
