#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace hplmxp {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::setLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Log::level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::mutex& Log::mutex() {
  static std::mutex m;
  return m;
}

void Log::write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex());
  std::fprintf(stderr, "[hplmxp %-5s] %s\n", levelName(level),
               message.c_str());
}

}  // namespace hplmxp
