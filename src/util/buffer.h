// Cache-line-aligned heap buffers for matrix storage. GPU-resident matrices
// in the paper live in HBM allocations; here the analogue is an aligned,
// non-initializing allocation that the device model charges against its
// memory budget.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "util/common.h"

namespace hplmxp {

inline constexpr std::size_t kBufferAlignment = 64;

/// Owning aligned buffer of trivially-copyable elements. Contents are
/// uninitialized on construction (matching the semantics of a device
/// allocation).
template <typename T>
class Buffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "Buffer only holds trivially copyable element types");

 public:
  Buffer() = default;

  explicit Buffer(index_t count) { allocate(count); }

  Buffer(Buffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  ~Buffer() { release(); }

  /// Reallocates to `count` elements; contents are uninitialized.
  void allocate(index_t count) {
    HPLMXP_REQUIRE(count >= 0, "buffer size must be non-negative");
    release();
    if (count == 0) {
      return;
    }
    const std::size_t bytes =
        roundUp(static_cast<index_t>(count * sizeof(T)), kBufferAlignment);
    data_ = static_cast<T*>(std::aligned_alloc(kBufferAlignment, bytes));
    if (data_ == nullptr) {
      throw std::bad_alloc();
    }
    size_ = count;
  }

  void release() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] index_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  T& operator[](index_t i) { return data_[i]; }
  const T& operator[](index_t i) const { return data_[i]; }

  [[nodiscard]] std::size_t bytes() const { return size_ * sizeof(T); }

 private:
  T* data_ = nullptr;
  index_t size_ = 0;
};

}  // namespace hplmxp
