// Small statistics helpers used by the variability study (Fig. 12), the
// slow-node scanner, and the benchmark reports.
#pragma once

#include <vector>

#include "util/common.h"

namespace hplmxp {

/// Summary statistics of a sample.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  index_t count = 0;
};

/// Computes mean/stddev/min/max of `values`. Empty input yields zeros.
Summary summarize(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::vector<double> values, double p);

/// Relative spread (max-min)/mean in percent; 0 for empty/zero-mean input.
double relativeSpreadPercent(const std::vector<double>& values);

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] index_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  index_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hplmxp
