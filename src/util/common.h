// Common utilities: error checking, integer helpers shared by all modules.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <source_location>
#include <stdexcept>
#include <string>

namespace hplmxp {

using index_t = std::int64_t;

/// Thrown by HPLMXP_CHECK / HPLMXP_REQUIRE on contract violations.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& msg) : std::runtime_error(msg) {}
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* expr, const char* what,
                                     const std::source_location& loc) {
  std::string msg = std::string(loc.file_name()) + ":" +
                    std::to_string(loc.line()) + ": check failed: " + expr;
  if (what != nullptr && what[0] != '\0') {
    msg += " (";
    msg += what;
    msg += ")";
  }
  throw CheckError(msg);
}
}  // namespace detail

/// Internal invariant check. Active in all build types: this library's
/// correctness claims are the point of the reproduction, so we never
/// compile checks out.
#define HPLMXP_CHECK(expr)                                                  \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::hplmxp::detail::checkFailed(#expr, "",                              \
                                    std::source_location::current());       \
    }                                                                       \
  } while (false)

/// Precondition check with an explanatory message.
#define HPLMXP_REQUIRE(expr, what)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::hplmxp::detail::checkFailed(#expr, (what),                          \
                                    std::source_location::current());       \
    }                                                                       \
  } while (false)

/// Ceiling division for non-negative integers.
constexpr index_t ceilDiv(index_t a, index_t b) { return (a + b - 1) / b; }

/// Rounds `a` up to the next multiple of `b` (b > 0).
constexpr index_t roundUp(index_t a, index_t b) { return ceilDiv(a, b) * b; }

/// Rounds `a` down to a multiple of `b` (b > 0).
constexpr index_t roundDown(index_t a, index_t b) { return (a / b) * b; }

}  // namespace hplmxp
