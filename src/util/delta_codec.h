// Delta codec for the incremental checkpoint store (simmpi/recovery.h).
//
// A checkpoint generation stores the XOR of the rank's dirty tile bytes
// against the previous generation. The factorization's updates are small
// relative to the values they touch (the generated matrix is diagonally
// dominant, so trailing updates subtract products of ~1/N-sized L
// entries), which makes the sign/exponent byte planes of the XOR almost
// entirely zero. The codec exploits exactly that:
//
//   XOR delta  ->  byte-plane transposition (all byte-p's of the FP16/FP32
//   elements grouped together)  ->  zero-run RLE with varint run lengths,
//   chunked, with a CRC32 over every stored chunk payload.
//
// The CRC is the integrity half of the story: a corrupted checkpoint is
// *detected* at decode time and reported as a status — never silently
// applied — so recovery can fall back to the previous intact generation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hplmxp::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). `seed` chains
/// incremental computations: pass a previous result to continue it.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t bytes,
                                  std::uint32_t seed = 0);

struct DeltaCodecConfig {
  /// Element width for the byte-plane transposition: 2 for FP16 payloads,
  /// 4 for FP32. A trailing partial element is stored verbatim.
  std::size_t elemSize = 4;
  /// When false the XOR delta is stored raw (still chunked + CRC'd) —
  /// the `recovery.compress off` escape hatch.
  bool compress = true;
  /// Uncompressed bytes per chunk. Each chunk fails or verifies alone, so
  /// smaller chunks localize corruption at the cost of header overhead.
  std::size_t chunkBytes = 64u << 10;
};

/// One encoded chunk: `payload` is either the RLE stream of the
/// plane-transposed XOR delta (`compressed`) or the raw delta bytes.
struct DeltaChunk {
  std::uint32_t rawBytes = 0;  // uncompressed size of this chunk
  bool compressed = false;
  std::uint32_t crc = 0;       // crc32 of `payload`
  std::vector<std::uint8_t> payload;
};

/// A full encoded delta: the on-"wire" body of one checkpoint generation.
struct DeltaBlob {
  std::size_t rawBytes = 0;   // total uncompressed delta size
  std::size_t elemSize = 4;   // plane width the encoder used
  std::vector<DeltaChunk> chunks;

  /// Stored footprint: payload bytes plus the per-chunk header fields
  /// (raw size, flags, CRC) a serialized layout would carry.
  [[nodiscard]] std::size_t storedBytes() const;
};

enum class DeltaDecodeStatus {
  kOk,
  kCrcMismatch,  // a chunk payload fails its CRC — corruption detected
  kMalformed,    // sizes/stream structure inconsistent (also corruption)
};

/// Encodes `cur XOR prev` (`bytes` long). `prev == nullptr` means a
/// zero base, i.e. the blob stores `cur` itself.
[[nodiscard]] DeltaBlob encodeDelta(const std::uint8_t* cur,
                                    const std::uint8_t* prev,
                                    std::size_t bytes,
                                    const DeltaCodecConfig& config);

/// Applies `blob` onto `dst`: on entry `dst` holds the previous
/// generation's bytes, on kOk return it holds the current generation's.
/// Every chunk is CRC-verified (unless `verify` is false) and fully
/// decoded BEFORE `dst` is touched: on any non-kOk status `dst` is
/// unchanged, so the caller can fall back to an older generation.
[[nodiscard]] DeltaDecodeStatus decodeDelta(const DeltaBlob& blob,
                                            std::uint8_t* dst,
                                            std::size_t bytes,
                                            bool verify = true);

}  // namespace hplmxp::util
