// Wall-clock timing helpers used by the benchmark driver and trace module.
//
// Timers read time through util/clock.h's ClockSource abstraction (wall
// clock by default), so timing-dependent machinery can be re-run under the
// fleet simulator's virtual clock without code changes.
#pragma once

#include "util/clock.h"

namespace hplmxp {

/// Monotonic stopwatch with double-precision seconds. Defaults to the
/// process wall clock; pass a ClockSource (which must outlive the Timer)
/// to run on another time base, e.g. fleetsim's ManualClock.
class Timer {
 public:
  Timer() : Timer(steadyClock()) {}
  explicit Timer(const ClockSource& source)
      : source_(&source), startSeconds_(source.nowSeconds()) {}

  /// Restarts the stopwatch.
  void reset() { startSeconds_ = source_->nowSeconds(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return source_->nowSeconds() - startSeconds_;
  }

  /// Milliseconds elapsed since construction or last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  const ClockSource* source_;
  double startSeconds_;
};

/// Accumulates time over multiple start/stop intervals, e.g. the per-phase
/// timers in the per-iteration breakdown (paper Fig. 10).
class AccumTimer {
 public:
  void start() { t_.reset(); running_ = true; }

  void stop() {
    if (running_) {
      total_ += t_.seconds();
      ++count_;
      running_ = false;
    }
  }

  [[nodiscard]] double totalSeconds() const { return total_; }
  [[nodiscard]] long count() const { return count_; }

  void reset() {
    total_ = 0.0;
    count_ = 0;
    running_ = false;
  }

 private:
  Timer t_;
  double total_ = 0.0;
  long count_ = 0;
  bool running_ = false;
};

}  // namespace hplmxp
