// Wall-clock timing helpers used by the benchmark driver and trace module.
#pragma once

#include <chrono>

namespace hplmxp {

/// Monotonic wall-clock stopwatch with double-precision seconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time over multiple start/stop intervals, e.g. the per-phase
/// timers in the per-iteration breakdown (paper Fig. 10).
class AccumTimer {
 public:
  void start() { t_.reset(); running_ = true; }

  void stop() {
    if (running_) {
      total_ += t_.seconds();
      ++count_;
      running_ = false;
    }
  }

  [[nodiscard]] double totalSeconds() const { return total_; }
  [[nodiscard]] long count() const { return count_; }

  void reset() {
    total_ = 0.0;
    count_ = 0;
    running_ = false;
  }

 private:
  Timer t_;
  double total_ = 0.0;
  long count_ = 0;
  bool running_ = false;
};

}  // namespace hplmxp
