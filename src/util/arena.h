// Persistent bump-allocator scratch arenas for kernel pack buffers.
//
// The GEMM hot loop must never touch the system allocator: a pack arena is
// reserved once (growing geometrically while the working set is still
// warming up) and then recycled with reset() on every kernel invocation.
// Pointers handed out by alloc() stay valid until the next reset() or
// reserve(); reserve() never runs between alloc() calls of one kernel
// invocation, so the hot path sees a fixed block of memory.
//
// Growth events are counted both per arena and process-wide so regression
// tests can assert the steady state performs zero allocations.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "util/common.h"

namespace hplmxp {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Ensures at least `bytes` of capacity and resets the bump cursor.
  /// Reallocates (and invalidates prior alloc() pointers) only when the
  /// request exceeds the current capacity.
  void reserve(std::size_t bytes) {
    if (bytes > capacity_) {
      std::size_t grown = capacity_ < kMinBytes ? kMinBytes : capacity_;
      while (grown < bytes) {
        grown *= 2;
      }
      raw_ = std::make_unique<std::byte[]>(grown + kAlign - 1);
      auto addr = reinterpret_cast<std::uintptr_t>(raw_.get());
      base_ = raw_.get() + (kAlign - addr % kAlign) % kAlign;
      capacity_ = grown;
      ++growths_;
      totalGrowths_.fetch_add(1, std::memory_order_relaxed);
    }
    used_ = 0;
  }

  /// Restarts bump allocation from the front; capacity is retained.
  void reset() { used_ = 0; }

  /// Bump-allocates `count` elements of T, 64-byte aligned. The caller
  /// must have reserve()d enough capacity up front: running out here is a
  /// programming error, not a growth trigger (growth would invalidate the
  /// pointers already handed out this cycle).
  template <typename T>
  T* alloc(index_t count) {
    HPLMXP_REQUIRE(count >= 0, "Arena::alloc: negative count");
    const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
    used_ = (used_ + kAlign - 1) / kAlign * kAlign;
    HPLMXP_REQUIRE(used_ + bytes <= capacity_,
                   "Arena::alloc exceeds reserved capacity");
    T* p = reinterpret_cast<T*>(base_ + used_);
    used_ += bytes;
    return p;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t used() const { return used_; }

  /// Number of times this arena had to (re)allocate its block.
  [[nodiscard]] long growths() const { return growths_; }

  /// Process-wide growth count across all arenas; a steady-state kernel
  /// loop must leave this constant.
  static long long totalGrowths() {
    return totalGrowths_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kAlign = 64;  // cache-line / SIMD friendly
  static constexpr std::size_t kMinBytes = 1 << 16;

  std::unique_ptr<std::byte[]> raw_;
  std::byte* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  long growths_ = 0;

  inline static std::atomic<long long> totalGrowths_{0};
};

}  // namespace hplmxp
