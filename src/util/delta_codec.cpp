#include "util/delta_codec.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace hplmxp::util {

namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  return table;
}

void putVarint(std::vector<std::uint8_t>& out, std::size_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Returns false on a truncated/overlong varint.
bool getVarint(const std::uint8_t* data, std::size_t size, std::size_t& pos,
               std::size_t& v) {
  v = 0;
  int shift = 0;
  while (pos < size && shift <= 56) {
    const std::uint8_t byte = data[pos++];
    v |= static_cast<std::size_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      return true;
    }
    shift += 7;
  }
  return false;
}

/// Byte-plane transposition: byte p of every `elemSize`-wide element is
/// grouped into plane p. A trailing partial element is appended verbatim.
void transposePlanes(const std::uint8_t* in, std::size_t bytes,
                     std::size_t elemSize, std::uint8_t* out) {
  const std::size_t elems = bytes / elemSize;
  for (std::size_t p = 0; p < elemSize; ++p) {
    std::uint8_t* plane = out + p * elems;
    for (std::size_t i = 0; i < elems; ++i) {
      plane[i] = in[i * elemSize + p];
    }
  }
  std::memcpy(out + elems * elemSize, in + elems * elemSize,
              bytes - elems * elemSize);
}

void untransposePlanes(const std::uint8_t* in, std::size_t bytes,
                       std::size_t elemSize, std::uint8_t* out) {
  const std::size_t elems = bytes / elemSize;
  for (std::size_t p = 0; p < elemSize; ++p) {
    const std::uint8_t* plane = in + p * elems;
    for (std::size_t i = 0; i < elems; ++i) {
      out[i * elemSize + p] = plane[i];
    }
  }
  std::memcpy(out + elems * elemSize, in + elems * elemSize,
              bytes - elems * elemSize);
}

/// Zero-run RLE: a repeated pair [varint zeroRun][varint literalRun]
/// followed by the literal bytes, until `bytes` input bytes are consumed.
void rleEncode(const std::uint8_t* in, std::size_t bytes,
               std::vector<std::uint8_t>& out) {
  std::size_t i = 0;
  while (i < bytes) {
    std::size_t zeros = 0;
    while (i + zeros < bytes && in[i + zeros] == 0) {
      ++zeros;
    }
    i += zeros;
    // A literal run ends at the next zero run worth breaking for: a lone
    // zero inside noise costs more as a run header than as a literal.
    std::size_t lit = 0;
    while (i + lit < bytes) {
      if (in[i + lit] == 0) {
        std::size_t z = 1;
        while (i + lit + z < bytes && in[i + lit + z] == 0) {
          ++z;
        }
        if (z >= 4 || i + lit + z == bytes) {
          break;
        }
        lit += z;
        continue;
      }
      ++lit;
    }
    putVarint(out, zeros);
    putVarint(out, lit);
    out.insert(out.end(), in + i, in + i + lit);
    i += lit;
  }
}

bool rleDecode(const std::uint8_t* in, std::size_t inBytes, std::uint8_t* out,
               std::size_t outBytes) {
  std::size_t pos = 0;
  std::size_t produced = 0;
  while (produced < outBytes) {
    std::size_t zeros = 0;
    std::size_t lit = 0;
    if (!getVarint(in, inBytes, pos, zeros) ||
        !getVarint(in, inBytes, pos, lit)) {
      return false;
    }
    if (zeros > outBytes - produced || lit > outBytes - produced - zeros ||
        lit > inBytes - pos) {
      return false;
    }
    std::memset(out + produced, 0, zeros);
    produced += zeros;
    std::memcpy(out + produced, in + pos, lit);
    produced += lit;
    pos += lit;
  }
  return pos == inBytes && produced == outBytes;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto& table = crcTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::size_t DeltaBlob::storedBytes() const {
  // 4B raw size + 1B flags + 4B CRC of header per chunk.
  std::size_t total = chunks.size() * 9;
  for (const DeltaChunk& c : chunks) {
    total += c.payload.size();
  }
  return total;
}

DeltaBlob encodeDelta(const std::uint8_t* cur, const std::uint8_t* prev,
                      std::size_t bytes, const DeltaCodecConfig& config) {
  const std::size_t elemSize = std::max<std::size_t>(1, config.elemSize);
  const std::size_t chunkBytes =
      std::max<std::size_t>(elemSize, config.chunkBytes);
  DeltaBlob blob;
  blob.rawBytes = bytes;
  blob.elemSize = elemSize;
  std::vector<std::uint8_t> delta;
  std::vector<std::uint8_t> planes;
  for (std::size_t off = 0; off < bytes || (bytes == 0 && off == 0);
       off += chunkBytes) {
    const std::size_t len = std::min(chunkBytes, bytes - off);
    delta.resize(len);
    if (prev != nullptr) {
      for (std::size_t i = 0; i < len; ++i) {
        delta[i] = cur[off + i] ^ prev[off + i];
      }
    } else {
      std::memcpy(delta.data(), cur + off, len);
    }
    DeltaChunk chunk;
    chunk.rawBytes = static_cast<std::uint32_t>(len);
    if (config.compress) {
      planes.resize(len);
      transposePlanes(delta.data(), len, elemSize, planes.data());
      chunk.payload.reserve(len / 4);
      rleEncode(planes.data(), len, chunk.payload);
      chunk.compressed = true;
    }
    if (!config.compress || chunk.payload.size() >= len) {
      chunk.payload.assign(delta.begin(), delta.end());
      chunk.compressed = false;
    }
    chunk.crc = crc32(chunk.payload.data(), chunk.payload.size());
    blob.chunks.push_back(std::move(chunk));
    if (bytes == 0) {
      break;
    }
  }
  return blob;
}

DeltaDecodeStatus decodeDelta(const DeltaBlob& blob, std::uint8_t* dst,
                              std::size_t bytes, bool verify) {
  if (blob.rawBytes != bytes || blob.elemSize == 0) {
    return DeltaDecodeStatus::kMalformed;
  }
  std::size_t total = 0;
  for (const DeltaChunk& c : blob.chunks) {
    total += c.rawBytes;
  }
  if (total != bytes) {
    return DeltaDecodeStatus::kMalformed;
  }
  // Fully decode into a scratch delta before touching dst: a corrupt chunk
  // must leave the caller's previous-generation bytes intact.
  std::vector<std::uint8_t> delta(bytes);
  std::vector<std::uint8_t> planes;
  std::size_t off = 0;
  for (const DeltaChunk& c : blob.chunks) {
    if (verify &&
        crc32(c.payload.data(), c.payload.size()) != c.crc) {
      return DeltaDecodeStatus::kCrcMismatch;
    }
    if (c.compressed) {
      planes.resize(c.rawBytes);
      if (!rleDecode(c.payload.data(), c.payload.size(), planes.data(),
                     c.rawBytes)) {
        return DeltaDecodeStatus::kMalformed;
      }
      untransposePlanes(planes.data(), c.rawBytes, blob.elemSize,
                        delta.data() + off);
    } else {
      if (c.payload.size() != c.rawBytes) {
        return DeltaDecodeStatus::kMalformed;
      }
      std::memcpy(delta.data() + off, c.payload.data(), c.rawBytes);
    }
    off += c.rawBytes;
  }
  for (std::size_t i = 0; i < bytes; ++i) {
    dst[i] ^= delta[i];
  }
  return DeltaDecodeStatus::kOk;
}

}  // namespace hplmxp::util
