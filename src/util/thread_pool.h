// A small work-stealing-free thread pool with a parallel-for primitive.
// The BLAS kernels use it the way a GPU kernel uses its thread blocks:
// a flat 1-D range of independent tile tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/common.h"

namespace hplmxp {

/// Fixed-size thread pool. Construction spawns `threads` workers; tasks are
/// closures pushed to a shared queue. `parallelFor` blocks the caller until
/// the whole range is processed (the caller participates in the work).
class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding callers of parallelFor).
  [[nodiscard]] std::size_t threadCount() const { return workers_.size(); }

  /// Runs fn(i) for i in [begin, end), partitioned into `chunks` contiguous
  /// chunks (0 = one chunk per worker + caller). Blocks until complete.
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  void parallelFor(index_t begin, index_t end,
                   const std::function<void(index_t)>& fn,
                   index_t chunks = 0);

  /// Pushes one fire-and-forget closure onto the shared queue (the same
  /// mechanism parallelFor uses for its helpers). The closure must not
  /// throw; it owns its own completion signalling. TaskGraph::execute uses
  /// this to borrow workers as scheduler lanes.
  void enqueue(std::function<void()> fn);

  /// Process-wide shared pool, sized from HPLMXP_THREADS or hardware
  /// concurrency. Kernels default to this instance.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void workerLoop();
  bool runOneTask(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hplmxp
