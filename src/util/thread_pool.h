// A small work-stealing-free thread pool with parallel-for primitives.
// The BLAS kernels use it the way a GPU kernel uses its thread blocks:
// a flat 1-D range of independent tile tasks.
//
// Two range primitives are offered:
//   * parallelForChunked(begin, end, fn) — templated, fn(lo, hi) is called
//     once per contiguous chunk with zero type erasure inside the range,
//     so kernel inner loops pay no indirect call per index. The shared
//     loop state lives on the caller's stack and helper tasks are posted
//     through fixed job slots, so steady-state invocations perform no
//     heap allocation.
//   * parallelFor(begin, end, std::function fn) — the legacy per-index
//     form, now a thin wrapper over the chunked primitive.
//
// The pool also owns persistent scratch arenas (util/arena.h) that kernels
// lease for pack buffers: scratch() hands out an arena from a free list
// and the RAII lease returns it, so concurrent kernel invocations get
// distinct arenas and the hot loop never touches the allocator.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/arena.h"
#include "util/common.h"

namespace hplmxp {

namespace detail {

/// Shared state of one chunked parallel-for invocation. Lives on the
/// caller's stack: the job-slot protocol in ThreadPool guarantees no
/// helper dereferences it after the invocation retires.
template <typename F>
struct ChunkJob {
  std::atomic<index_t> nextChunk{0};
  std::atomic<index_t> remainingChunks{0};
  index_t totalChunks = 0;
  index_t begin = 0;
  index_t end = 0;
  index_t chunkSize = 0;
  F* fn = nullptr;

  std::mutex doneMutex;
  std::condition_variable doneCv;

  std::mutex excMutex;
  std::exception_ptr exc;
  std::atomic<bool> failed{false};

  void runChunks() {
    while (true) {
      const index_t c = nextChunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= totalChunks) {
        return;
      }
      const index_t lo = begin + c * chunkSize;
      const index_t hi = std::min(end, lo + chunkSize);
      if (!failed.load(std::memory_order_relaxed)) {
        // Fast-path skip once a failure is seen; the flag is atomic so the
        // check is race-free (the exception_ptr itself stays under lock).
        try {
          (*fn)(lo, hi);
        } catch (...) {
          std::lock_guard<std::mutex> lock(excMutex);
          if (!exc) {
            exc = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
        }
      }
      if (remainingChunks.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(doneMutex);
        doneCv.notify_all();
      }
    }
  }

  static void trampoline(void* self) {
    static_cast<ChunkJob*>(self)->runChunks();
  }
};

}  // namespace detail

/// Fixed-size thread pool. Construction spawns `threads` workers; tasks are
/// closures pushed to a shared queue. The parallel-for primitives block the
/// caller until the whole range is processed (the caller participates in
/// the work).
class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding callers of parallelFor).
  [[nodiscard]] std::size_t threadCount() const { return workers_.size(); }

  /// Execution lanes a parallel-for can occupy: workers + the caller.
  [[nodiscard]] index_t laneCount() const {
    return static_cast<index_t>(workers_.size()) + 1;
  }

  /// Runs fn(lo, hi) over contiguous chunks covering [begin, end),
  /// partitioned into `chunks` chunks (0 = mild over-decomposition of one
  /// chunk per lane x4). Blocks until complete; the caller participates.
  /// fn is invoked directly (no type erasure per index). Exceptions thrown
  /// by fn propagate to the caller (first one wins; remaining chunks are
  /// skipped).
  template <typename F>
  void parallelForChunked(index_t begin, index_t end, F&& fn,
                          index_t chunks = 0) {
    if (begin >= end) {
      return;
    }
    const index_t n = end - begin;
    if (chunks <= 0) {
      chunks = laneCount() * 4;  // absorb imbalance
    }
    chunks = std::min(chunks, n);

    using Fn = std::remove_reference_t<F>;
    detail::ChunkJob<Fn> job;
    job.totalChunks = chunks;
    job.remainingChunks.store(chunks, std::memory_order_relaxed);
    job.begin = begin;
    job.end = end;
    job.chunkSize = ceilDiv(n, chunks);
    job.fn = &fn;

    const index_t helperCount =
        std::min<index_t>(static_cast<index_t>(workers_.size()), chunks - 1);
    std::uint64_t id = kNoJob;
    if (helperCount > 0) {
      id = postHelpers(&detail::ChunkJob<Fn>::trampoline, &job, helperCount);
    }

    job.runChunks();

    if (id != kNoJob) {
      std::unique_lock<std::mutex> lock(job.doneMutex);
      job.doneCv.wait(lock, [&] {
        return job.remainingChunks.load(std::memory_order_acquire) == 0;
      });
      lock.unlock();
      retireJob(id);
    }
    if (job.exc) {
      std::rethrow_exception(job.exc);
    }
  }

  /// Runs fn(i) for i in [begin, end); legacy per-index form implemented
  /// on top of parallelForChunked.
  void parallelFor(index_t begin, index_t end,
                   const std::function<void(index_t)>& fn,
                   index_t chunks = 0);

  /// Pushes one fire-and-forget closure onto the shared queue (the same
  /// mechanism parallelFor uses for its helpers). The closure must not
  /// throw; it owns its own completion signalling. TaskGraph::execute uses
  /// this to borrow workers as scheduler lanes.
  void enqueue(std::function<void()> fn);

  /// RAII lease of one persistent scratch arena. Returning the lease puts
  /// the arena (capacity intact) back on the pool's free list, so repeated
  /// kernel invocations reuse warmed-up buffers allocation-free.
  class ScratchLease {
   public:
    ScratchLease(ScratchLease&& o) noexcept : pool_(o.pool_), arena_(o.arena_) {
      o.pool_ = nullptr;
      o.arena_ = nullptr;
    }
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    ScratchLease& operator=(ScratchLease&&) = delete;
    ~ScratchLease();

    [[nodiscard]] Arena& arena() { return *arena_; }

   private:
    friend class ThreadPool;
    ScratchLease(ThreadPool* pool, Arena* arena)
        : pool_(pool), arena_(arena) {}
    ThreadPool* pool_;
    Arena* arena_;
  };

  /// Leases a scratch arena; safe to call from concurrent kernel
  /// invocations (each caller gets a distinct arena).
  [[nodiscard]] ScratchLease scratch();

  /// Number of scratch arenas ever created by this pool (diagnostics).
  [[nodiscard]] std::size_t scratchArenaCount() const;

  /// Process-wide shared pool, sized from HPLMXP_THREADS or hardware
  /// concurrency. Kernels default to this instance.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  /// One in-flight chunked job. Helpers are enqueued carrying only
  /// (slot, epoch); a stale helper that pops after the job retired sees a
  /// bumped epoch and returns without touching the caller's stack state.
  /// This also means a parallel-for never has to wait for queued-but-
  /// unstarted helpers (they may sit behind long-running scheduler lanes),
  /// so stack-allocated job state cannot deadlock the pool.
  struct JobSlot {
    std::atomic<bool> inUse{false};
    std::atomic<std::uint64_t> epoch{1};
    std::atomic<int> active{0};  // helpers currently inside run()
    void (*run)(void*) = nullptr;
    void* arg = nullptr;
  };
  static constexpr int kJobSlots = 64;
  static constexpr std::uint64_t kNoJob = ~std::uint64_t{0};

  void workerLoop();
  bool runOneTask(std::unique_lock<std::mutex>& lock);

  /// Claims a job slot and enqueues `count` helper tasks for it. Returns
  /// the packed (slot, epoch) id, or kNoJob when every slot is busy (the
  /// caller then just runs all chunks itself).
  std::uint64_t postHelpers(void (*run)(void*), void* arg, index_t count);

  /// Invalidates the job id and waits for helpers already inside run() to
  /// step out (bounded: all chunks are done by the time this is called).
  void retireJob(std::uint64_t id);

  /// Helper-task entry: revalidates (slot, epoch) before touching arg.
  void runJob(std::uint64_t id);

  void returnScratch(Arena* arena);

  // Pending-task ring (guarded by mutex_), pre-sized at construction.
  // Helper posting is best-effort and never grows it: a helper task is a
  // hint that directs a worker at a (slot, epoch), and once every worker
  // has been pointed at pending work, extra hints are redundant (workers
  // drain the ring in a loop; stale hints no-op). Only enqueue() — the
  // fire-and-forget API, where dropping would lose work — may grow the
  // ring, and it does so geometrically. std::queue's deque would instead
  // allocate and free a node block every few dozen operations as its
  // cursor walks forward; keeping the steady state allocation-free is
  // what lets the zero-alloc GEMM regression test assert a strict zero.
  static constexpr std::size_t kTaskRingCapacity = 256;
  [[nodiscard]] bool queueEmpty() const { return ringCount_ == 0; }
  [[nodiscard]] bool queueFull() const { return ringCount_ == ring_.size(); }
  void queuePush(Task t);
  Task queuePop();

  std::vector<std::thread> workers_;
  std::vector<Task> ring_;
  std::size_t ringHead_ = 0;
  std::size_t ringCount_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;

  JobSlot slots_[kJobSlots];

  mutable std::mutex scratchMutex_;
  std::vector<std::unique_ptr<Arena>> scratchOwned_;
  std::vector<Arena*> scratchFree_;
};

}  // namespace hplmxp
