// Iteration-level simulator of Algorithm 1 at full machine scale.
//
// Walks every block step k of the factorization and prices each phase with
// the calibrated kernel models (perfmodel) and communication models
// (netsim), honouring the paper's scheduling structure:
//
//   T_iter = T_GETRF + T_diag_bcast + max(T_TRSM_row, T_TRSM_col) + T_cast
//            + { max(T_panel_bcast, T_GEMM)   with look-ahead
//              { T_panel_bcast + T_GEMM        without }
//
// This is the machinery behind the at-scale figures: B sweeps (Fig. 4),
// communication-strategy and node-grid comparisons (Fig. 8), memory weak
// scaling (Fig. 9), per-iteration breakdowns (Fig. 10), the exascale
// achievement runs (Fig. 11), and — combined with machine/warmup — the
// run-to-run variability study (Fig. 12). An FP64 mode prices the HPL
// comparison (pivoting, FP64 rates, FP64 panel traffic).
//
// Substitution note (DESIGN.md): on the authors' testbed these numbers are
// measured; here they are modelled. The model is calibrated to reproduce
// the paper's orderings and approximate magnitudes, and its structure
// (critical path, NIC sharing, pipelined rings, look-ahead overlap) is the
// same as the real code's.
#pragma once

#include <vector>

#include "grid/process_grid.h"
#include "machine/machine.h"
#include "machine/variability.h"
#include "machine/warmup.h"
#include "netsim/bcast_model.h"
#include "perfmodel/kernel_model.h"
#include "simmpi/ring_bcast.h"
#include "util/common.h"

namespace hplmxp {

struct ScaleSimConfig {
  MachineKind machine = MachineKind::kFrontier;
  index_t nl = 0;  // local matrix dimension per GCD; N = nl * pr
  index_t b = 0;   // block size
  index_t pr = 0;
  index_t pc = 0;

  /// Node-local grid (Finding 8). Column-major uses Qr = gcdsPerNode,
  /// Qc = 1 in the sharing model.
  GridOrder gridOrder = GridOrder::kNodeLocal;
  index_t qr = 0;  // 0 = machine default (gcdsPerNode x 1)
  index_t qc = 0;

  simmpi::BcastStrategy strategy = simmpi::BcastStrategy::kBcast;
  bool lookahead = true;
  bool portBinding = true;   // Summit knob
  bool gpuAwareMpi = true;   // Frontier knob

  /// Throughput multipliers: slowest GCD in the fleet (pipeline stall,
  /// Sec. VI-B) and the warm-up run factor (Fig. 12).
  double slowestGcdMultiplier = 1.0;
  double runFactor = 1.0;

  bool recordIterations = false;  // keep the per-iteration breakdown
  bool fp64 = false;              // HPL mode (FP64, partial pivoting)

  [[nodiscard]] index_t n() const { return nl * pr; }
  [[nodiscard]] index_t ranks() const { return pr * pc; }
  void validate() const;
};

struct SimIteration {
  index_t k = 0;
  double getrfSeconds = 0.0;
  double diagBcastSeconds = 0.0;
  double trsmSeconds = 0.0;
  double castSeconds = 0.0;
  double panelBcastSeconds = 0.0;
  double gemmSeconds = 0.0;
  double iterSeconds = 0.0;
  bool commBound = false;  // panel bcast exceeded the GEMM
};

struct ScaleSimResult {
  index_t n = 0;
  index_t ranks = 0;
  double factorSeconds = 0.0;
  double irSeconds = 0.0;
  double totalSeconds = 0.0;
  /// Effective rate per GCD (HPL-AI flop convention; HPL convention in
  /// fp64 mode), FLOP/s.
  double ratePerGcd = 0.0;
  /// Whole-run rate in EFLOP/s.
  double exaflops = 0.0;
  /// Fraction of iterations that were communication bound (Fig. 10's
  /// "computation bounded until the final trailing iterations").
  double commBoundFraction = 0.0;
  std::vector<SimIteration> iterations;  // iff recordIterations
};

/// Simulates one full benchmark run.
ScaleSimResult simulateRun(const ScaleSimConfig& config);

/// Simulates `runs` consecutive runs in one batch job (Fig. 12), applying
/// the warm-up model; returns per-run effective rates per GCD (FLOP/s).
std::vector<double> simulateRunSequence(const ScaleSimConfig& config,
                                        index_t runs, bool preWarmed);

/// Builds the ProcessGrid implied by a config (for Eq. 4/5 reporting).
ProcessGrid gridFor(const ScaleSimConfig& config);

}  // namespace hplmxp
