#include "scalesim/scale_sim.h"

#include <algorithm>
#include <cmath>

namespace hplmxp {

void ScaleSimConfig::validate() const {
  HPLMXP_REQUIRE(nl > 0 && b > 0, "N_L and B must be positive");
  HPLMXP_REQUIRE(n() % b == 0, "N_L * Pr must be a multiple of B");
  HPLMXP_REQUIRE(pr > 0 && pc > 0, "grid dims must be positive");
  HPLMXP_REQUIRE(slowestGcdMultiplier > 0.0 && runFactor > 0.0,
                 "throughput multipliers must be positive");
}

ProcessGrid gridFor(const ScaleSimConfig& config) {
  const MachineSpec& spec = machineSpec(config.machine);
  if (config.gridOrder == GridOrder::kColumnMajor) {
    return ProcessGrid::columnMajor(config.pr, config.pc, spec.gcdsPerNode);
  }
  const index_t qr = config.qr > 0 ? config.qr : spec.gcdsPerNode;
  const index_t qc = config.qc > 0 ? config.qc : 1;
  HPLMXP_REQUIRE(qr * qc == spec.gcdsPerNode,
                 "node-local grid must cover the node's GCDs");
  return ProcessGrid::nodeLocal(config.pr, config.pc, qr, qc);
}

namespace {

/// Look-ahead overlap efficiency as a function of the block-step count.
/// Short pipelines (small nb at small scale) leave fill/drain bubbles and
/// per-step strip-update stalls unhidden; long runs overlap essentially
/// everything. Calibrated to the weak-scaling rise of Fig. 9 ("smaller
/// fraction of run time in the serial section" at scale).
double overlapEfficiency(index_t nb) {
  constexpr double kFill = 60.0;
  const double nbd = static_cast<double>(nb);
  return nbd / (nbd + kFill);
}

/// Interconnect contention factor in (0, 1]: effective fabric bandwidth
/// decays slowly with the number of nodes in the job. The paper suspects
/// exactly this for the Frontier parallel-efficiency drop at 16384 GCDs
/// (Sec. VI-A); Summit's mature fat tree decays more slowly.
double fabricEfficiency(MachineKind machine, index_t nodes) {
  const double lg = std::log2(std::max<double>(2.0,
                                               static_cast<double>(nodes)));
  if (machine == MachineKind::kSummit) {
    // Mature fat tree: mild, gradual decay.
    return 1.0 / (1.0 + 0.025 * lg);
  }
  // Early Slingshot dragonfly: contention appears once the job spans many
  // switch groups (~256 nodes), then grows quickly — matching the paper's
  // "drop ... due to the interconnect fabric" at high GCD counts.
  const double over = std::max(0.0, lg - 8.0);
  return 1.0 / (1.0 + 0.25 * over);
}

/// Host-side iterative-refinement cost model: residual GEMV over
/// regenerated FP64 entries plus the distributed block TRSV chain.
double refinementSeconds(const ScaleSimConfig& cfg) {
  if (cfg.fp64) {
    return 0.0;  // HPL solves directly; its solve term is priced separately
  }
  const double n = static_cast<double>(cfg.n());
  const double p = static_cast<double>(cfg.ranks());
  const double nb = n / static_cast<double>(cfg.b);
  // The paper observes a handful of IR iterations at scale.
  const double irIters = 3.0;
  // CPU share per GCD: a few hundred FP64 GFLOP/s of host compute divided
  // among the node's GCD-bound ranks.
  const double cpuRate = 120e9;
  const double residual = 2.0 * n * n / p / cpuRate;
  // TRSV chain: nb sequential steps of (reduce + B x B solve + bcast).
  const double hop = cfg.machine == MachineKind::kSummit ? 6e-6 : 4e-6;
  const double bd = static_cast<double>(cfg.b);
  const double trsv =
      2.0 * nb *
      (hop * std::ceil(std::log2(std::max(2.0, p))) + bd * bd / cpuRate);
  return irIters * (residual + trsv);
}

}  // namespace

ScaleSimResult simulateRun(const ScaleSimConfig& config) {
  config.validate();
  const MachineSpec& spec = machineSpec(config.machine);
  const KernelModel kernels(config.machine);
  const BcastModel net(NetworkConfig{.machine = config.machine,
                                     .portBinding = config.portBinding,
                                     .gpuAwareMpi = config.gpuAwareMpi});
  const ProcessGrid grid = gridFor(config);

  const index_t n = config.n();
  const index_t b = config.b;
  const index_t nb = n / b;
  const double bd = static_cast<double>(b);
  const double prd = static_cast<double>(config.pr);
  const double pcd = static_cast<double>(config.pc);
  // Bytes per matrix element travelling in the panels.
  const double panelElemBytes = config.fp64 ? 8.0 : 2.0;
  const double fp32Bytes = config.fp64 ? 8.0 : 4.0;

  ScaleSimResult result;
  result.n = n;
  result.ranks = config.ranks();
  if (config.recordIterations) {
    result.iterations.reserve(static_cast<std::size_t>(nb));
  }

  const double fabricEff = fabricEfficiency(config.machine, grid.nodeCount());
  const double overlapEff = overlapEfficiency(nb);

  double total = 0.0;
  index_t commBound = 0;
  for (index_t k = 0; k < nb; ++k) {
    const double ntr = static_cast<double>(n - (k + 1) * b);
    const double h = ntr / prd;  // local trailing rows (column-panel owners)
    const double w = ntr / pcd;  // local trailing cols (row-panel owners)

    SimIteration it;
    it.k = k;

    // (1a) Diagonal update: GETRF on the owner + row/col broadcast.
    if (config.fp64) {
      // HPL: pivoted panel factorization; pivot search adds b collective
      // max-reductions plus the row-swap traffic across the process row.
      const double pivotLatency =
          bd * net.strategyLatency(simmpi::BcastStrategy::kBcast, config.pr);
      it.getrfSeconds =
          (2.0 / 3.0) * bd * bd * bd / kernels.gemm64Rate(bd, bd, bd) +
          pivotLatency + (ntr / prd) * bd * 8.0 / kernels.memoryBandwidth();
    } else {
      it.getrfSeconds = (2.0 / 3.0) * bd * bd * bd / kernels.getrfRate(bd);
    }
    it.diagBcastSeconds =
        net.diagBcastTime(bd * bd * fp32Bytes, config.pc) +
        net.diagBcastTime(bd * bd * fp32Bytes, config.pr);

    // (1b) Panel update: TRSM on the two panel families (concurrent on
    // disjoint ranks -> max), then CAST / TRANS_CAST (bandwidth bound).
    const double trsmRow =
        config.fp64 ? bd * bd * w / kernels.gemm64Rate(bd, w, bd)
                    : bd * bd * w / kernels.trsmRate(bd, w);
    const double trsmCol =
        config.fp64 ? bd * bd * h / kernels.gemm64Rate(h, bd, bd)
                    : bd * bd * h / kernels.trsmRate(bd, h);
    it.trsmSeconds = std::max(trsmRow, trsmCol);
    if (!config.fp64) {
      const double castRow = w * bd * 6.0 / kernels.memoryBandwidth();
      const double castCol = h * bd * 6.0 / kernels.memoryBandwidth();
      it.castSeconds = std::max(castRow, castCol);
    }

    // Panel broadcasts: U down columns (Pr ranks, Qr sharers per node),
    // L across rows (Pc ranks, Qc sharers); they share the NICs -> sum.
    // Fabric contention derates the effective bandwidth with job size.
    it.panelBcastSeconds =
        (net.panelBcastTime(config.strategy, w * bd * panelElemBytes,
                            config.pr, grid.colSharersPerNode()) +
         net.panelBcastTime(config.strategy, h * bd * panelElemBytes,
                            config.pc, grid.rowSharersPerNode())) /
        fabricEff;

    // (1c) Trailing update.
    const double gemmFlops = 2.0 * h * w * bd;
    it.gemmSeconds =
        config.fp64
            ? gemmFlops / kernels.gemm64Rate(h, w, bd)
            : gemmFlops / kernels.gemmRate(h, w, bd, config.nl);

    const double head = it.getrfSeconds + it.diagBcastSeconds +
                        it.trsmSeconds + it.castSeconds;
    if (config.lookahead) {
      // Overlap bcast with GEMM; imperfect pipelining leaves a fraction
      // of the smaller term exposed.
      const double hi = std::max(it.panelBcastSeconds, it.gemmSeconds);
      const double lo = std::min(it.panelBcastSeconds, it.gemmSeconds);
      it.iterSeconds = head + hi + (1.0 - overlapEff) * lo;
    } else {
      it.iterSeconds = head + it.panelBcastSeconds + it.gemmSeconds;
    }
    it.commBound = it.panelBcastSeconds > it.gemmSeconds;
    commBound += it.commBound ? 1 : 0;

    total += it.iterSeconds;
    if (config.recordIterations) {
      result.iterations.push_back(it);
    }
  }

  // Fleet-wide throughput derating: the slowest GCD paces the pipeline,
  // and warm-up state scales everything (Fig. 12).
  total /= config.slowestGcdMultiplier * config.runFactor;

  result.factorSeconds = total;
  result.irSeconds = refinementSeconds(config) /
                     (config.slowestGcdMultiplier * config.runFactor);
  result.totalSeconds = result.factorSeconds + result.irSeconds;
  result.commBoundFraction =
      static_cast<double>(commBound) / static_cast<double>(nb);

  const double nd = static_cast<double>(n);
  const double flops = config.fp64
                           ? (2.0 / 3.0) * nd * nd * nd + 2.0 * nd * nd
                           : (2.0 / 3.0) * nd * nd * nd + 1.5 * nd * nd;
  result.ratePerGcd =
      flops / (static_cast<double>(result.ranks) * result.totalSeconds);
  result.exaflops = flops / result.totalSeconds / 1e18;
  (void)spec;
  return result;
}

std::vector<double> simulateRunSequence(const ScaleSimConfig& config,
                                        index_t runs, bool preWarmed) {
  const WarmupModel warmup(config.machine);
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(runs));
  for (index_t r = 0; r < runs; ++r) {
    ScaleSimConfig cfg = config;
    cfg.runFactor = config.runFactor * warmup.runFactor(r, preWarmed);
    rates.push_back(simulateRun(cfg).ratePerGcd);
  }
  return rates;
}

}  // namespace hplmxp
