// Kernel autotuner: measures the native GEMM/GETRF/TRSM kernels on this
// host and feeds the results back into (a) the GEMM macro-blocking used by
// the hot path (blas/tune.h) and (b) the performance model
// (KernelModel::calibrate), so parameter search runs on measured curves
// instead of hand-fit constants.
//
// This mirrors the paper's tuning methodology (Sec. IV-A): the block-size
// and problem-shape optima are derived from *measured* per-kernel flop-rate
// curves (Figs. 3, 5, 6), not from datasheet peaks. Here the "device" is
// the CPU substrate, so the sweep times the real microkernel.
//
// The sweep only changes the GEMM blocking (mc, nc, kc) — macro-tile
// scheduling parameters that never change numerical results (see
// blas/gemm.h for the determinism contract) — so autotuning is always
// safe to run, including mid-application.
#pragma once

#include <string>
#include <vector>

#include "blas/tune.h"
#include "perfmodel/kernel_model.h"
#include "util/thread_pool.h"

namespace hplmxp {

/// Outcome of a blocking sweep: the winning blocking and its measured rate.
struct GemmTuneResult {
  blas::GemmBlocking blocking;
  double gflops = 0.0;   // rate of the winning blocking
  double baseline = 0.0; // rate of the default blocking, for comparison
  index_t problemSize = 0;
  int candidatesTried = 0;
};

/// Sweeps a fixed (mc, nc, kc) candidate grid by timing the mixed-precision
/// GEMM at size n x n x n, installs the fastest blocking process-wide via
/// blas::setGemmBlocking, and returns what it found. `reps` timed runs per
/// candidate (best-of, after one warmup). Deterministic with respect to
/// results: only scheduling changes.
GemmTuneResult autotuneGemmBlocking(index_t n, ThreadPool* pool = nullptr,
                                    int reps = 2);

/// Measures GF/s ladders for the three hot kernels at each size in `sizes`
/// (GEMM: s x s x s mixed; GETRF: s x s no-pivot; TRSM: s x s left-lower
/// panel). Feed the result to KernelModel::calibrate().
MeasuredKernelCurves measureKernelCurves(const std::vector<index_t>& sizes,
                                         ThreadPool* pool = nullptr,
                                         int reps = 2);

/// Persists / restores a tune table as plain "key value..." text lines:
///   blocking <mc> <nc> <kc> <gflops>
///   gemm <size> <flops_per_sec>
///   getrf <size> <flops_per_sec>
///   trsm <size> <flops_per_sec>
/// Unknown lines and '#' comments are skipped on load. loadTuneTable does
/// NOT install the blocking; callers decide (see bench_kernel_autotune).
bool saveTuneTable(const std::string& path, const GemmTuneResult& tune,
                   const MeasuredKernelCurves& curves);
bool loadTuneTable(const std::string& path, GemmTuneResult* tune,
                   MeasuredKernelCurves* curves);

}  // namespace hplmxp
