// The paper's analytic performance model (Sec. IV, Eqs. 1-5).
//
// These closed-form bounds are the *guideline* model: the paper uses them
// to structure the tuning discussion and to drive the parameter search,
// while stressing they cannot be back-solved for exact optima. The
// iteration-level simulator (scalesim) refines them; this module encodes
// the equations themselves.
#pragma once

#include "grid/process_grid.h"
#include "perfmodel/kernel_model.h"
#include "util/common.h"

namespace hplmxp {

/// Inputs of the Eq. 3 projected upper bound.
struct ModelInput {
  index_t n = 0;    // global matrix order
  index_t b = 0;    // block size
  index_t pr = 1;   // grid rows
  index_t pc = 1;   // grid cols
  double nbb = 10e9;  // network broadcast bandwidth per rank flow (bytes/s)
};

/// Eq. 2: serial per-iteration upper bound (seconds) —
/// B^3/GETRF_fr + 2*N*B^2/TRSM_fr + N^2*B/GEMM_fr.
double serialIterationBound(const KernelModel& kernels, index_t n, index_t b);

/// Per-term breakdown of the Eq. 3 projected parallel runtime.
struct ParallelBound {
  double getrf = 0.0;
  double trsmRow = 0.0;
  double trsmCol = 0.0;
  double bcastRow = 0.0;
  double bcastCol = 0.0;
  double gemm = 0.0;
  [[nodiscard]] double total() const {
    return getrf + trsmRow + trsmCol + bcastRow + bcastCol + gemm;
  }
  /// With look-ahead the panel broadcast overlaps the GEMM (Sec. IV-B):
  /// the last two terms of Eq. 1 become max(T_bcast, T_gemm).
  [[nodiscard]] double totalWithLookahead() const {
    return getrf + trsmRow + trsmCol +
           std::max(bcastRow + bcastCol, gemm);
  }
  /// Dataflow tile scheduler: TRSM tiles, CAST, and both broadcasts all
  /// overlap the trailing GEMM as soon as per-tile dependencies allow, so
  /// everything after the (serializing) diagonal factorization folds into
  /// max(panel pipeline, GEMM). Only GETRF stays on the critical path —
  /// each step's diagonal depends on the previous step's update.
  [[nodiscard]] double totalWithDataflow() const {
    return getrf +
           std::max(trsmRow + trsmCol + bcastRow + bcastCol, gemm);
  }
};

/// Eq. 3: projected parallel upper bound for the full factorization.
ParallelBound projectedParallelBound(const KernelModel& kernels,
                                     const ModelInput& in);

/// Eq. 5: inter-node communication time given the node-local grid, using
/// NBN (network bandwidth per node): 2*N^2*Qr/(Pr*NBN) + 2*N^2*Qc/(Pc*NBN).
double interNodeCommTime(const ModelInput& in, const ProcessGrid& grid,
                         double nbnBytesPerSec);

/// HPL-AI effective rate for a runtime: ((2/3)N^3 + (3/2)N^2) / (P * t),
/// per GCD, in FLOP/s.
double effectiveRatePerGcd(index_t n, index_t p, double seconds);

}  // namespace hplmxp
