#include "perfmodel/param_search.h"

#include <algorithm>

namespace hplmxp {

BSearchResult searchBlockSize(const KernelModel& kernels, ModelInput base,
                              std::vector<index_t> candidates) {
  if (candidates.empty()) {
    candidates = {256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096};
  }
  // The paper's selection heuristic (Sec. IV-A / V-C): from the kernel
  // curves, pick the SMALLEST B whose GEMM rate is near the plateau
  // ("acceptable performance in GEMM, GETRF, and TRSM") while keeping the
  // critical-path GETRF under 5% of the per-iteration GEMM. Maximizing
  // each kernel's rate with a huge B is explicitly NOT the goal.
  constexpr double kAcceptableGemmFraction = 0.93;

  const double nl =
      static_cast<double>(base.n) / static_cast<double>(base.pr);

  // Plateau reference: the best rate over the candidate sweep.
  double plateau = 0.0;
  for (index_t b : candidates) {
    plateau = std::max(
        plateau, kernels.gemmRate(nl, nl, static_cast<double>(b)));
  }

  BSearchResult result;
  for (index_t b : candidates) {
    ModelInput in = base;
    in.b = b;
    in.n = roundDown(base.n, b);  // pad/adjust N as the driver does
    if (in.n <= 0) {
      continue;
    }
    const double bd = static_cast<double>(b);
    const ParallelBound bound = projectedParallelBound(kernels, in);

    BSearchEntry e;
    e.b = b;
    e.projectedSeconds = bound.totalWithLookahead();
    e.ratePerGcd =
        effectiveRatePerGcd(in.n, in.pr * in.pc, e.projectedSeconds);
    // Per-iteration critical-path share: GETRF of one diagonal block vs
    // the local trailing GEMM at full extent.
    const double getrfIter =
        bd * bd * bd / kernels.getrfRate(bd);
    const double gemmIter =
        nl * nl * bd / kernels.gemmRate(nl, nl, bd);
    e.getrfOverGemm = gemmIter > 0.0 ? getrfIter / gemmIter : 0.0;

    const double gemmRate = kernels.gemmRate(nl, nl, bd);
    const bool gemmAcceptable =
        gemmRate >= kAcceptableGemmFraction * plateau;
    e.admissible = gemmAcceptable && e.getrfOverGemm < 0.05;
    if (e.admissible && result.bestB == 0) {
      result.bestB = b;  // smallest admissible B wins
    }
    result.entries.push_back(e);
  }
  return result;
}

std::vector<NlSearchEntry> searchLocalSize(
    const KernelModel& kernels, index_t b, index_t pr, index_t pc, double nbb,
    const std::vector<index_t>& candidates) {
  std::vector<NlSearchEntry> out;
  for (index_t nl : candidates) {
    NlSearchEntry e;
    e.nl = nl;
    // The local matrix keeps LDA = N_L for the whole run; the trailing
    // GEMM rate is evaluated at representative (large) extents with that
    // leading dimension — exactly the Fig. 7 experiment.
    const double half = static_cast<double>(nl) / 2.0;
    e.gemmRateAtScale =
        kernels.gemmRate(half, half, static_cast<double>(b), nl);
    ModelInput in;
    in.n = nl * pr;
    in.b = b;
    in.pr = pr;
    in.pc = pc;
    in.nbb = nbb;
    in.n = roundDown(in.n, b);
    // Rate at the adjusted N with the LDA-specific GEMM curve: recompute
    // the Eq. 3 bound but with the candidate's LDA pinned.
    const double nd = static_cast<double>(in.n);
    const double bd = static_cast<double>(b);
    const double prd = static_cast<double>(pr);
    const double pcd = static_cast<double>(pc);
    ParallelBound bound = projectedParallelBound(kernels, in);
    bound.gemm = nd * nd * nd /
                 (prd * pcd * kernels.gemmRate(nd / prd, nd / pcd, bd, nl));
    e.ratePerGcd = effectiveRatePerGcd(in.n, pr * pc,
                                       bound.totalWithLookahead());
    out.push_back(e);
  }
  return out;
}

}  // namespace hplmxp
