// Calibrated per-kernel flop-rate models for the V100 (Summit) and MI250X
// GCD (Frontier).
//
// The paper's tuning methodology (Sec. IV-A, Figs. 3, 5, 6, 7) is built on
// measured flop-rate curves of the three kernels — GEMM (FP16/FP32 mixed),
// GETRF (FP32) and TRSM (FP32) — as functions of the block size B, the
// trailing-matrix size, and (on MI250X) the leading dimension. We model
// each curve as a saturating function of its dimensions with
// vendor-library quirks layered on top:
//
//   * half-saturation sizes differ strongly between the GPUs (MI250X needs
//     much larger B to reach peak, which is why the optimal B is 3072
//     there vs 768-1024 on the V100),
//   * non-uniform "heat map" structure: sizes that are multiples of the
//     library's internal tile sizes run faster (Fig. 3, Finding 2),
//   * rocBLAS GEMM is sensitive to the leading dimension: LDA = 122880
//     falls into a pathological stride and loses ~35% (Fig. 7, the reason
//     N_L = 119808 beats 122880),
//   * rocSOLVER GETRF underperforms (Finding 3), making the critical path
//     relatively more expensive on Frontier.
//
// Rates are returned in FLOP/s. The constants are calibrated so that the
// model reproduces the paper's *orderings and rough magnitudes* (who wins,
// where optima fall), not the exact testbed numbers.
// In addition to the analytic curves, a model can be *calibrated* from
// measured rates (perfmodel/autotune.h): after calibrate(), gemmRate /
// getrfRate / trsmRate interpolate the measured samples (log-size,
// piecewise-linear, clamped at the ends) instead of evaluating the ramp
// fits, so the projections GETRF_fr / TRSM_fr / GEMM_fr are grounded in
// this host's actual kernels rather than hand-tuned constants.
#pragma once

#include <vector>

#include "lowp/precision.h"
#include "machine/machine.h"
#include "util/common.h"

namespace hplmxp {

/// One measured (size, FLOP/s) point of a kernel's rate curve.
struct RateSample {
  double size = 0.0;  // GEMM: cbrt(m*n*k); GETRF/TRSM: block size b
  double rate = 0.0;  // FLOP/s
};

/// Measured rate ladders for the three hot kernels, as produced by
/// measureKernelCurves() in perfmodel/autotune.h.
struct MeasuredKernelCurves {
  std::vector<RateSample> gemm;   // keyed on cbrt(m*n*k)
  std::vector<RateSample> getrf;  // keyed on b
  std::vector<RateSample> trsm;   // keyed on b (square b x b panel)

  [[nodiscard]] bool empty() const {
    return gemm.empty() && getrf.empty() && trsm.empty();
  }
};

/// Flop-rate model of one GCD's BLAS kernels.
class KernelModel {
 public:
  explicit KernelModel(MachineKind kind);

  [[nodiscard]] MachineKind kind() const { return kind_; }

  /// Mixed-precision (low-precision in / FP32 accumulate) GEMM rate for an
  /// (m x n x k) product. `lda` models the local-matrix leading dimension
  /// (0 = contiguous / ignore). `precision` selects the storage rung:
  /// FP8 tensor pipes run at 2x the FP16/BF16 MMA rate on both vendors'
  /// parts, which PrecisionSpec::gemmPeakFactor encodes; the ramp shapes
  /// and quirk factors are format-independent. Calibrated (measured)
  /// curves are FP16 measurements, so the same factor applies on top.
  [[nodiscard]] double gemmRate(
      double m, double n, double k, index_t lda = 0,
      lowp::StoragePrecision precision = lowp::StoragePrecision::kFp16) const;

  /// FP32 no-pivot GETRF rate for a B x B diagonal block.
  [[nodiscard]] double getrfRate(double b) const;

  /// FP32 TRSM rate for a (B x B) triangle applied to a B x n panel.
  [[nodiscard]] double trsmRate(double b, double n) const;

  /// FP64 GEMM rate (the HPL comparison path).
  [[nodiscard]] double gemm64Rate(double m, double n, double k) const;

  /// Device HBM bandwidth (bytes/s), for the CAST/TRANS_CAST phases.
  [[nodiscard]] double memoryBandwidth() const { return hbmBytesPerSec_; }

  /// Peak mixed-precision rate the model saturates toward.
  [[nodiscard]] double gemmPeak() const { return gemmPeak_; }

  /// Replaces the analytic curves with measured ones. Curves that are
  /// empty keep their analytic fallback; samples are sorted by size.
  /// Calibrated rates ignore the vendor-quirk factors (alignment banding,
  /// LDA pathology) — the measurement already contains this host's quirks.
  void calibrate(MeasuredKernelCurves curves);

  [[nodiscard]] bool calibrated() const { return calibrated_; }
  [[nodiscard]] const MeasuredKernelCurves& measured() const {
    return measured_;
  }

 private:
  /// Piecewise-linear interpolation of `rate` in log(size), clamped to the
  /// first/last sample outside the measured range. `samples` is sorted.
  static double interpRate(const std::vector<RateSample>& samples,
                           double size);

  /// Saturating ramp: x / (x + half), in (0, 1).
  static double ramp(double x, double half) { return x / (x + half); }

  /// Library tile-alignment factor in [alignPenalty_, 1].
  [[nodiscard]] double alignFactor(double size) const;

  MachineKind kind_;
  double gemmPeak_;        // FLOP/s, achievable mixed GEMM peak
  double gemmHalfMN_;      // half-saturation for the m/n dimensions
  double gemmHalfK_;       // half-saturation for the k (block) dimension
  double alignTile_;       // library tile size for the alignment bonus
  double alignPenalty_;    // rate factor for misaligned sizes
  double getrfPeak_;       // FLOP/s
  double getrfHalf_;       // half-saturation block size
  double trsmPeak_;        // FLOP/s
  double trsmHalfB_;
  double trsmHalfN_;
  double gemm64Peak_;      // FLOP/s
  double hbmBytesPerSec_;  // bytes/s
  bool ldaSensitive_;      // rocBLAS LDA pathology present

  MeasuredKernelCurves measured_;
  bool calibrated_ = false;
};

/// True when `lda` hits the pathological rocBLAS stride class the paper
/// measured at LDA = 122880 (large power-of-two-multiple strides).
bool isPathologicalLda(index_t lda);

}  // namespace hplmxp
