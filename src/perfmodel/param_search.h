// Parameter search over the Eq. 3 model (Sec. IV-A "B selection" /
// "N selection").
//
// The paper's strategy: sweep B, plot each subproblem's rate, pick the
// *smallest* B that delivers acceptable GEMM/GETRF/TRSM performance, and
// additionally require GETRF (the critical-path kernel) to stay under 5%
// of the GEMM time. The search reproduces the published selections:
// B in {768, 1024} on Summit, B = 3072 on Frontier, and N_L = 119808 over
// 122880 on Frontier (LDA pathology).
#pragma once

#include <vector>

#include "perfmodel/kernel_model.h"
#include "perfmodel/runtime_model.h"

namespace hplmxp {

struct BSearchEntry {
  index_t b = 0;
  double projectedSeconds = 0.0;     // Eq. 3 with look-ahead overlap
  double ratePerGcd = 0.0;           // FLOP/s effective
  double getrfOverGemm = 0.0;        // critical-path share heuristic
  bool admissible = false;           // passes the <5% GETRF rule
};

struct BSearchResult {
  std::vector<BSearchEntry> entries;
  index_t bestB = 0;  // fastest admissible entry
};

/// Sweeps candidate block sizes for the given machine/problem and ranks
/// them by the Eq. 3 model. `candidates` empty selects the paper's sweep
/// {256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096}.
BSearchResult searchBlockSize(const KernelModel& kernels, ModelInput base,
                              std::vector<index_t> candidates = {});

struct NlSearchEntry {
  index_t nl = 0;
  double gemmRateAtScale = 0.0;  // model rate with LDA = N_L
  double ratePerGcd = 0.0;
};

/// Compares local-size candidates (the Sec. V-D study: 119808 vs 122880 on
/// Frontier) at fixed B and grid.
std::vector<NlSearchEntry> searchLocalSize(
    const KernelModel& kernels, index_t b, index_t pr, index_t pc, double nbb,
    const std::vector<index_t>& candidates);

}  // namespace hplmxp
