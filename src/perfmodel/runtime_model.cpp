#include "perfmodel/runtime_model.h"

namespace hplmxp {

double serialIterationBound(const KernelModel& kernels, index_t n,
                            index_t b) {
  HPLMXP_REQUIRE(n > 0 && b > 0 && n % b == 0, "need N a multiple of B");
  const double nd = static_cast<double>(n);
  const double bd = static_cast<double>(b);
  const double tGetrf = bd * bd * bd / kernels.getrfRate(bd);
  const double tTrsm = 2.0 * nd * bd * bd / kernels.trsmRate(bd, nd);
  const double tGemm = nd * nd * bd / kernels.gemmRate(nd, nd, bd);
  return tGetrf + tTrsm + tGemm;
}

ParallelBound projectedParallelBound(const KernelModel& kernels,
                                     const ModelInput& in) {
  HPLMXP_REQUIRE(in.n > 0 && in.b > 0 && in.n % in.b == 0,
                 "need N a multiple of B");
  HPLMXP_REQUIRE(in.pr > 0 && in.pc > 0, "grid dims must be positive");
  HPLMXP_REQUIRE(in.nbb > 0.0, "broadcast bandwidth must be positive");
  const double nd = static_cast<double>(in.n);
  const double bd = static_cast<double>(in.b);
  const double prd = static_cast<double>(in.pr);
  const double pcd = static_cast<double>(in.pc);
  const double nl = nd / prd;  // local matrix dimension

  ParallelBound out;
  out.getrf = nd * bd * bd / kernels.getrfRate(bd);
  out.trsmRow = nd * nd * bd / (prd * kernels.trsmRate(bd, nl));
  out.trsmCol = nd * nd * bd / (pcd * kernels.trsmRate(bd, nl));
  // 2*N^2 is the byte size of each FP16 panel family over the whole run.
  out.bcastRow = 2.0 * nd * nd / (prd * in.nbb);
  out.bcastCol = 2.0 * nd * nd / (pcd * in.nbb);
  out.gemm = nd * nd * nd /
             (prd * pcd *
              kernels.gemmRate(nl, nl, bd, static_cast<index_t>(nl)));
  return out;
}

double interNodeCommTime(const ModelInput& in, const ProcessGrid& grid,
                         double nbnBytesPerSec) {
  HPLMXP_REQUIRE(nbnBytesPerSec > 0.0, "node bandwidth must be positive");
  const double nd = static_cast<double>(in.n);
  const double qr = static_cast<double>(grid.colSharersPerNode());
  const double qc = static_cast<double>(grid.rowSharersPerNode());
  const double prd = static_cast<double>(grid.rows());
  const double pcd = static_cast<double>(grid.cols());
  return 2.0 * nd * nd * qr / (prd * nbnBytesPerSec) +
         2.0 * nd * nd * qc / (pcd * nbnBytesPerSec);
}

double effectiveRatePerGcd(index_t n, index_t p, double seconds) {
  HPLMXP_REQUIRE(p > 0 && seconds > 0.0, "need positive P and time");
  const double nd = static_cast<double>(n);
  const double flops = (2.0 / 3.0) * nd * nd * nd + 1.5 * nd * nd;
  return flops / (static_cast<double>(p) * seconds);
}

}  // namespace hplmxp
