#include "perfmodel/autotune.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "blas/blas.h"
#include "fp16/half.h"
#include "util/timer.h"

namespace hplmxp {

namespace {

// Deterministic fill that is cheap and avoids denormals; values in
// [-1, 1). Timing only — the contents never feed numerical checks.
void fillPattern(float* p, std::size_t count, std::uint32_t seed) {
  std::uint32_t s = seed * 2654435761u + 1u;
  for (std::size_t i = 0; i < count; ++i) {
    s = s * 1664525u + 1013904223u;
    p[i] = static_cast<float>(static_cast<std::int32_t>(s)) * 0x1p-31f;
  }
}

void fillPattern(half16* p, std::size_t count, std::uint32_t seed) {
  std::uint32_t s = seed * 2246822519u + 1u;
  for (std::size_t i = 0; i < count; ++i) {
    s = s * 1664525u + 1013904223u;
    p[i] = half16(static_cast<float>(static_cast<std::int32_t>(s)) *
                  0x1p-31f);
  }
}

/// Best-of-`reps` seconds for `fn()` after one untimed warmup run.
template <typename Fn>
double bestSeconds(int reps, Fn&& fn) {
  fn();  // warmup: faults pages, warms the pack arena and the job slots
  double best = 1e300;
  for (int r = 0; r < std::max(1, reps); ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

double gemmMixedGflops(index_t n, ThreadPool* pool, int reps,
                       std::vector<half16>& a, std::vector<half16>& b,
                       std::vector<float>& c) {
  const double secs = bestSeconds(reps, [&] {
    blas::gemmMixed(blas::Trans::kNoTrans, blas::Trans::kTrans, n, n, n,
                    -1.0f, a.data(), n, b.data(), n, 1.0f, c.data(), n,
                    pool);
  });
  return blas::gemmFlops(n, n, n) / secs / 1e9;
}

}  // namespace

GemmTuneResult autotuneGemmBlocking(index_t n, ThreadPool* pool, int reps) {
  HPLMXP_REQUIRE(n > 0, "autotune: n must be > 0");
  const auto count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<half16> a(count);
  std::vector<half16> b(count);
  std::vector<float> c(count);
  fillPattern(a.data(), count, 17);
  fillPattern(b.data(), count, 29);
  fillPattern(c.data(), count, 43);

  const blas::GemmBlocking saved = blas::gemmBlocking();

  GemmTuneResult result;
  result.problemSize = n;
  result.baseline = gemmMixedGflops(n, pool, reps, a, b, c);
  result.blocking = saved;
  result.gflops = result.baseline;

  // The grid spans cache-residency regimes: small mc/kc keeps the A strip
  // in L1/L2, large nc amortizes packing. Candidates larger than the
  // problem collapse to a single macro tile, which is still a valid
  // (and often winning) configuration at small n.
  constexpr index_t kMcGrid[] = {72, 120, 240};
  constexpr index_t kNcGrid[] = {96, 240, 480};
  constexpr index_t kKcGrid[] = {128, 256, 512};
  for (index_t mc : kMcGrid) {
    for (index_t nc : kNcGrid) {
      for (index_t kc : kKcGrid) {
        blas::setGemmBlocking(blas::GemmBlocking{mc, nc, kc});
        const double gf = gemmMixedGflops(n, pool, reps, a, b, c);
        ++result.candidatesTried;
        if (gf > result.gflops) {
          result.gflops = gf;
          result.blocking = blas::gemmBlocking();
        }
      }
    }
  }
  blas::setGemmBlocking(result.blocking);
  return result;
}

MeasuredKernelCurves measureKernelCurves(const std::vector<index_t>& sizes,
                                         ThreadPool* pool, int reps) {
  MeasuredKernelCurves curves;
  for (index_t s : sizes) {
    HPLMXP_REQUIRE(s > 0, "measureKernelCurves: sizes must be > 0");
    const auto count =
        static_cast<std::size_t>(s) * static_cast<std::size_t>(s);

    {
      std::vector<half16> a(count);
      std::vector<half16> b(count);
      std::vector<float> c(count);
      fillPattern(a.data(), count, 7);
      fillPattern(b.data(), count, 11);
      fillPattern(c.data(), count, 13);
      curves.gemm.push_back(
          {static_cast<double>(s),
           gemmMixedGflops(s, pool, reps, a, b, c) * 1e9});
    }

    {
      // Diagonally dominant so the no-pivot factorization stays benign.
      std::vector<float> a(count);
      fillPattern(a.data(), count, 19);
      std::vector<float> fresh = a;
      for (index_t i = 0; i < s; ++i) {
        fresh[i + i * s] += static_cast<float>(s);
      }
      const double secs = bestSeconds(reps, [&] {
        a = fresh;  // refactorize the same matrix every rep
        blas::getrfNoPiv(s, a.data(), s, pool);
      });
      curves.getrf.push_back(
          {static_cast<double>(s), blas::getrfFlops(s) / secs});
    }

    {
      std::vector<float> tri(count);
      std::vector<float> rhs(count);
      fillPattern(tri.data(), count, 23);
      fillPattern(rhs.data(), count, 31);
      const double secs = bestSeconds(reps, [&] {
        blas::strsm(blas::Side::kLeft, blas::Uplo::kLower, blas::Diag::kUnit,
                    s, s, 1.0f, tri.data(), s, rhs.data(), s, pool);
      });
      curves.trsm.push_back({static_cast<double>(s),
                             blas::trsmFlops(blas::Side::kLeft, s, s) / secs});
    }
  }
  return curves;
}

bool saveTuneTable(const std::string& path, const GemmTuneResult& tune,
                   const MeasuredKernelCurves& curves) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "# hplmxp kernel tune table v1\n";
  out << "blocking " << tune.blocking.mc << " " << tune.blocking.nc << " "
      << tune.blocking.kc << " " << tune.gflops << "\n";
  for (const auto& s : curves.gemm) {
    out << "gemm " << s.size << " " << s.rate << "\n";
  }
  for (const auto& s : curves.getrf) {
    out << "getrf " << s.size << " " << s.rate << "\n";
  }
  for (const auto& s : curves.trsm) {
    out << "trsm " << s.size << " " << s.rate << "\n";
  }
  return static_cast<bool>(out);
}

bool loadTuneTable(const std::string& path, GemmTuneResult* tune,
                   MeasuredKernelCurves* curves) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "blocking" && tune != nullptr) {
      blas::GemmBlocking bl;
      double gf = 0.0;
      if (ls >> bl.mc >> bl.nc >> bl.kc >> gf) {
        tune->blocking = bl;
        tune->gflops = gf;
      }
    } else if (curves != nullptr &&
               (key == "gemm" || key == "getrf" || key == "trsm")) {
      RateSample sample;
      if (ls >> sample.size >> sample.rate) {
        auto& vec = key == "gemm"    ? curves->gemm
                    : key == "getrf" ? curves->getrf
                                     : curves->trsm;
        vec.push_back(sample);
      }
    }
    // Unknown keys: skipped, so future fields stay forward-compatible.
  }
  return true;
}

}  // namespace hplmxp
