#include "perfmodel/kernel_model.h"

#include <algorithm>
#include <cmath>

namespace hplmxp {

bool isPathologicalLda(index_t lda) {
  // Large strides that are multiples of 4096 elements map many rows onto
  // the same HBM channel/bank class; 122880 = 30 * 4096 hits it, while
  // 119808 = 29.25 * 4096 does not. (A simplified but testable stand-in
  // for the rocBLAS behaviour in Fig. 7.)
  return lda >= 16384 && lda % 4096 == 0;
}

KernelModel::KernelModel(MachineKind kind) : kind_(kind) {
  if (kind == MachineKind::kSummit) {
    // V100: cuBLAS HGEMM-with-FP32-accumulate reaches ~100 TF of the
    // 125 TF tensor-core peak and saturates at moderate tile sizes; cuSOLVER
    // SGETRF is decent; LDA pathology not observed.
    gemmPeak_ = 100e12;
    gemmHalfMN_ = 700.0;
    gemmHalfK_ = 100.0;
    alignTile_ = 256.0;
    alignPenalty_ = 0.90;
    getrfPeak_ = 3.0e12;
    getrfHalf_ = 600.0;
    trsmPeak_ = 9.0e12;
    trsmHalfB_ = 250.0;
    trsmHalfN_ = 3000.0;
    gemm64Peak_ = 6.7e12;  // of 7.8 TF FP64 peak
    hbmBytesPerSec_ = 900e9;
    ldaSensitive_ = false;
  } else {
    // MI250X GCD: rocBLAS gemm_ex peaks around ~135 TF of the 149 TF
    // (per-GCD) matrix-core peak but needs much larger sizes to get there
    // (Finding 3: additional GEMM tuning needed); rocSOLVER GETRF is slow;
    // the LDA stride pathology of Fig. 7 is present.
    gemmPeak_ = 150e12;
    gemmHalfMN_ = 2600.0;
    gemmHalfK_ = 800.0;
    alignTile_ = 512.0;
    alignPenalty_ = 0.82;
    getrfPeak_ = 2.2e12;
    getrfHalf_ = 1200.0;
    trsmPeak_ = 14.0e12;
    trsmHalfB_ = 900.0;
    trsmHalfN_ = 8000.0;
    gemm64Peak_ = 22.0e12;  // of 27.25 TF FP64 peak per GCD
    hbmBytesPerSec_ = 1600e9;
    ldaSensitive_ = true;
  }
}

void KernelModel::calibrate(MeasuredKernelCurves curves) {
  auto bySize = [](const RateSample& a, const RateSample& b) {
    return a.size < b.size;
  };
  std::sort(curves.gemm.begin(), curves.gemm.end(), bySize);
  std::sort(curves.getrf.begin(), curves.getrf.end(), bySize);
  std::sort(curves.trsm.begin(), curves.trsm.end(), bySize);
  measured_ = std::move(curves);
  calibrated_ = !measured_.empty();
}

double KernelModel::interpRate(const std::vector<RateSample>& samples,
                               double size) {
  if (size <= samples.front().size) {
    return samples.front().rate;
  }
  if (size >= samples.back().size) {
    return samples.back().rate;
  }
  auto hi = std::lower_bound(
      samples.begin(), samples.end(), size,
      [](const RateSample& s, double v) { return s.size < v; });
  auto lo = hi - 1;
  // Linear in log(size): kernel rate curves are close to straight on a
  // log-size axis across the ramp region, so this keeps mid-points sane
  // even with a sparse ladder.
  const double t = (std::log(size) - std::log(lo->size)) /
                   (std::log(hi->size) - std::log(lo->size));
  return lo->rate + t * (hi->rate - lo->rate);
}

double KernelModel::alignFactor(double size) const {
  const double rem = std::fmod(size, alignTile_);
  return rem == 0.0 ? 1.0 : alignPenalty_;
}

double KernelModel::gemmRate(double m, double n, double k, index_t lda,
                             lowp::StoragePrecision precision) const {
  const double peakFactor = lowp::spec(precision).gemmPeakFactor;
  if (m <= 0.0 || n <= 0.0 || k <= 0.0) {
    return gemmPeak_ * peakFactor;  // degenerate: no work, rate irrelevant
  }
  if (calibrated_ && !measured_.gemm.empty()) {
    return peakFactor * interpRate(measured_.gemm, std::cbrt(m * n * k));
  }
  double rate = gemmPeak_ * ramp(m, gemmHalfMN_) * ramp(n, gemmHalfMN_) *
                ramp(k, gemmHalfK_);
  rate *= alignFactor(k);  // k is the block size: the Fig. 3 banding
  if (ldaSensitive_ && isPathologicalLda(lda)) {
    rate *= 0.62;  // Fig. 7: LDA = 122880 loses roughly a third
  }
  return rate * peakFactor;
}

double KernelModel::getrfRate(double b) const {
  if (b <= 0.0) {
    return getrfPeak_;
  }
  if (calibrated_ && !measured_.getrf.empty()) {
    return interpRate(measured_.getrf, b);
  }
  return getrfPeak_ * ramp(b, getrfHalf_);
}

double KernelModel::trsmRate(double b, double n) const {
  if (b <= 0.0 || n <= 0.0) {
    return trsmPeak_;
  }
  if (calibrated_ && !measured_.trsm.empty()) {
    return interpRate(measured_.trsm, b);
  }
  return trsmPeak_ * ramp(b, trsmHalfB_) * ramp(n, trsmHalfN_);
}

double KernelModel::gemm64Rate(double m, double n, double k) const {
  if (m <= 0.0 || n <= 0.0 || k <= 0.0) {
    return gemm64Peak_;
  }
  // FP64 GEMM saturates at much smaller tiles than the mixed kernel.
  return gemm64Peak_ * ramp(m, 200.0) * ramp(n, 200.0) * ramp(k, 60.0);
}

}  // namespace hplmxp
