// Per-task timeline analysis for the dataflow scheduler (Fig. 10 support).
//
// TaskGraph::execute records a begin/end stamp, lane, kind and steal flag
// for every task. This module folds those records into the questions the
// breakdown benchmark asks: how much of the factorization was
// communication, how much of that communication was hidden behind compute
// running on other lanes (the whole point of the dataflow engine), and how
// much lane time was lost to idling.
#pragma once

#include <string>
#include <vector>

#include "util/task_graph.h"

namespace hplmxp::trace {

/// Aggregate view of one TaskGraph execution.
struct SchedTimelineSummary {
  int lanes = 0;
  std::int64_t tasks = 0;
  std::int64_t steals = 0;
  double makespanSeconds = 0.0;
  double busySeconds = 0.0;  // sum of task durations over all lanes
  double idleSeconds = 0.0;  // sum of lane idle time (wall - busy per lane)
  /// Time inside comm tasks (diag + panel broadcasts), the bulk engine's
  /// serialized critical path.
  double commSeconds = 0.0;
  /// Time inside compute tasks (GETRF / TRSM / CAST / GEMM).
  double computeSeconds = 0.0;
  /// The part of commSeconds during which at least one compute task was
  /// simultaneously running on another lane — communication the dataflow
  /// schedule hid.
  double overlappedCommSeconds = 0.0;

  /// Fraction of comm time hidden behind compute (0 when no comm ran).
  [[nodiscard]] double overlapFraction() const {
    return commSeconds > 0.0 ? overlappedCommSeconds / commSeconds : 0.0;
  }
  /// Fraction of total lane time spent idle.
  [[nodiscard]] double idleFraction() const {
    const double total = busySeconds + idleSeconds;
    return total > 0.0 ? idleSeconds / total : 0.0;
  }
};

/// Folds an execution's records into the summary. Skipped tasks (drained
/// after a failure/cancel) are ignored.
[[nodiscard]] SchedTimelineSummary summarizeSchedTimeline(
    const TaskGraph::ExecStats& stats);

/// Renders the summary as an aligned two-column table.
[[nodiscard]] std::string renderSchedTimeline(
    const SchedTimelineSummary& summary);

/// Per-kind accounting row: task count and total seconds by TaskKind.
struct SchedKindBreakdown {
  TaskKind kind = TaskKind::kGeneric;
  std::int64_t count = 0;
  double seconds = 0.0;
};

/// Duration totals grouped by task kind, ordered by descending seconds.
[[nodiscard]] std::vector<SchedKindBreakdown> schedKindBreakdown(
    const TaskGraph::ExecStats& stats);

}  // namespace hplmxp::trace
