#include "trace/progress.h"

#include <cstdio>

namespace hplmxp {

ProgressMonitor::ProgressMonitor(ProgressPolicy policy,
                                 std::function<double(index_t)> reference)
    : policy_(policy), reference_(std::move(reference)) {
  HPLMXP_REQUIRE(policy_.slowdownFactor > 1.0,
                 "slowdown factor must exceed 1");
  HPLMXP_REQUIRE(policy_.strikes >= 1, "need at least one strike");
}

ProgressVerdict ProgressMonitor::observe(index_t k, double iterSeconds) {
  if (terminated_) {
    return ProgressVerdict::kTerminate;
  }
  double expected = -1.0;
  if (reference_) {
    expected = reference_(k);
  }
  if (expected <= 0.0) {
    consecutiveSlow_ = 0;
    return ProgressVerdict::kHealthy;
  }
  if (iterSeconds > expected * policy_.slowdownFactor) {
    ++consecutiveSlow_;
    if (consecutiveSlow_ >= policy_.strikes) {
      terminated_ = true;
      return ProgressVerdict::kTerminate;
    }
    return ProgressVerdict::kSlow;
  }
  consecutiveSlow_ = 0;
  return ProgressVerdict::kHealthy;
}

std::string ProgressMonitor::reportLine(const IterationTrace& t) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "iter %6lld | trail %6lld blk | diag %8.3f ms | trsm %8.3f "
                "ms | cast %8.3f ms | bcast %8.3f ms | gemm %8.3f ms",
                static_cast<long long>(t.k),
                static_cast<long long>(t.trailingBlocks),
                t.diagSeconds * 1e3, t.trsmSeconds * 1e3,
                t.castSeconds * 1e3, t.bcastSeconds * 1e3,
                t.gemmSeconds * 1e3);
  return buf;
}

}  // namespace hplmxp
