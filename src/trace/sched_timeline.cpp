#include "trace/sched_timeline.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/table.h"

namespace hplmxp::trace {

namespace {

bool isCommKind(TaskKind kind) {
  return kind == TaskKind::kDiagBcast || kind == TaskKind::kPanelBcast;
}

bool isComputeKind(TaskKind kind) {
  return kind == TaskKind::kGetrf || kind == TaskKind::kTrsm ||
         kind == TaskKind::kCast || kind == TaskKind::kGemm;
}

/// Total time of [begin, end) covered by the union of `intervals`
/// (pre-sorted by begin).
double coveredSeconds(double begin, double end,
                      const std::vector<std::pair<double, double>>& merged) {
  double covered = 0.0;
  for (const auto& [s, e] : merged) {
    if (e <= begin) {
      continue;
    }
    if (s >= end) {
      break;
    }
    covered += std::min(e, end) - std::max(s, begin);
  }
  return covered;
}

std::string fmtSeconds(double s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f s", s);
  return buf;
}

std::string fmtPercent(double f) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %%", 100.0 * f);
  return buf;
}

}  // namespace

SchedTimelineSummary summarizeSchedTimeline(
    const TaskGraph::ExecStats& stats) {
  SchedTimelineSummary s;
  s.lanes = static_cast<int>(stats.lanes.size());
  s.tasks = stats.tasksRun;
  s.steals = stats.steals;
  s.makespanSeconds = stats.makespanSeconds;
  for (const TaskGraph::LaneStats& lane : stats.lanes) {
    s.busySeconds += lane.busySeconds;
    s.idleSeconds += lane.idleSeconds;
  }

  // Merge all compute intervals into a disjoint sorted cover, then
  // intersect each comm task's interval with it: comm time under compute
  // cover is communication the schedule hid.
  std::vector<std::pair<double, double>> compute;
  for (const TaskGraph::TaskRecord& rec : stats.records) {
    if (rec.skipped) {
      continue;
    }
    if (isCommKind(rec.kind)) {
      s.commSeconds += rec.seconds();
    } else if (isComputeKind(rec.kind)) {
      s.computeSeconds += rec.seconds();
      compute.emplace_back(rec.beginSeconds, rec.endSeconds);
    }
  }
  std::sort(compute.begin(), compute.end());
  std::vector<std::pair<double, double>> merged;
  for (const auto& iv : compute) {
    if (!merged.empty() && iv.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }
  for (const TaskGraph::TaskRecord& rec : stats.records) {
    if (!rec.skipped && isCommKind(rec.kind)) {
      s.overlappedCommSeconds +=
          coveredSeconds(rec.beginSeconds, rec.endSeconds, merged);
    }
  }
  return s;
}

std::string renderSchedTimeline(const SchedTimelineSummary& summary) {
  Table t({"metric", "value"});
  t.addRow({"lanes", Table::num(static_cast<long long>(summary.lanes))});
  t.addRow({"tasks run", Table::num(static_cast<long long>(summary.tasks))});
  t.addRow({"steals", Table::num(static_cast<long long>(summary.steals))});
  t.addRow({"makespan", fmtSeconds(summary.makespanSeconds)});
  t.addRow({"lane busy (sum)", fmtSeconds(summary.busySeconds)});
  t.addRow({"lane idle (sum)", fmtSeconds(summary.idleSeconds)});
  t.addRow({"idle fraction", fmtPercent(summary.idleFraction())});
  t.addRow({"comm time", fmtSeconds(summary.commSeconds)});
  t.addRow({"compute time", fmtSeconds(summary.computeSeconds)});
  t.addRow({"comm overlapped", fmtSeconds(summary.overlappedCommSeconds)});
  t.addRow({"overlap fraction", fmtPercent(summary.overlapFraction())});
  return t.render();
}

std::vector<SchedKindBreakdown> schedKindBreakdown(
    const TaskGraph::ExecStats& stats) {
  constexpr TaskKind kAll[] = {
      TaskKind::kGeneric,    TaskKind::kGetrf, TaskKind::kDiagBcast,
      TaskKind::kTrsm,       TaskKind::kCast,  TaskKind::kPanelBcast,
      TaskKind::kGemm,       TaskKind::kPoll};
  std::vector<SchedKindBreakdown> rows;
  for (const TaskKind kind : kAll) {
    SchedKindBreakdown row;
    row.kind = kind;
    for (const TaskGraph::TaskRecord& rec : stats.records) {
      if (!rec.skipped && rec.kind == kind) {
        ++row.count;
        row.seconds += rec.seconds();
      }
    }
    if (row.count > 0) {
      rows.push_back(row);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const SchedKindBreakdown& a, const SchedKindBreakdown& b) {
              return a.seconds > b.seconds;
            });
  return rows;
}

}  // namespace hplmxp::trace
