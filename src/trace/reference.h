// Recorded reference data for progress monitoring.
//
// Sec. VI-B: "We compare each component's performance to our previously
// recorded data in Figures 5 and 6" — a healthy run's per-iteration
// breakdown is saved once, then later runs are monitored against it and
// terminated early when they fall behind. This module provides the
// save/load half of that workflow (CSV, one row per block step) and the
// bridge that turns a loaded reference into a ProgressMonitor callback.
#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "trace/progress.h"

namespace hplmxp {

/// Writes a per-iteration trace as CSV (header + one row per step).
/// Throws CheckError if the file cannot be written.
void saveReferenceTrace(const std::string& path,
                        const std::vector<IterationTrace>& trace);

/// Reads a reference trace written by saveReferenceTrace. Throws
/// CheckError on missing file or malformed rows.
std::vector<IterationTrace> loadReferenceTrace(const std::string& path);

/// Total per-iteration seconds of a trace entry (the quantity the monitor
/// compares against).
double iterationSeconds(const IterationTrace& t);

/// Builds the reference function for a ProgressMonitor from a recorded
/// trace: iteration k maps to the recorded iteration time (or -1, i.e.
/// unmonitored, beyond the recorded range).
std::function<double(index_t)> referenceFromTrace(
    std::vector<IterationTrace> trace);

}  // namespace hplmxp
