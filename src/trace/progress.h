// Progress monitoring and early termination (Sec. VI-B "Progress
// monitoring").
//
// Runs at scale take hours; the paper's code emits a per-component progress
// report at definable iterations, compares each component's rate to
// previously recorded reference data (their Figs. 5/6 kernel curves), and
// terminates abnormal runs early — they observed Frontier fabric hangs that
// this mechanism would have caught.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "util/common.h"

namespace hplmxp {

struct ProgressPolicy {
  /// Emit a report every `reportEvery` iterations.
  index_t reportEvery = 10;
  /// Abort when an iteration runs slower than referenceSeconds(k) by more
  /// than this factor, `strikes` times in a row.
  double slowdownFactor = 2.0;
  index_t strikes = 3;
};

/// Verdict for one observed iteration.
enum class ProgressVerdict { kHealthy, kSlow, kTerminate };

/// Streaming monitor fed one iteration record at a time.
class ProgressMonitor {
 public:
  /// `reference` maps iteration index -> expected iteration seconds (from
  /// recorded data or the scalesim model). Missing reference disables the
  /// termination check for that iteration.
  ProgressMonitor(ProgressPolicy policy,
                  std::function<double(index_t)> reference);

  /// Feeds the timing of iteration k; returns the verdict.
  ProgressVerdict observe(index_t k, double iterSeconds);

  /// Formats the most recent per-component report line (Fig. 10 style).
  [[nodiscard]] std::string reportLine(const IterationTrace& t) const;

  [[nodiscard]] index_t consecutiveSlow() const { return consecutiveSlow_; }
  [[nodiscard]] bool terminated() const { return terminated_; }

 private:
  ProgressPolicy policy_;
  std::function<double(index_t)> reference_;
  index_t consecutiveSlow_ = 0;
  bool terminated_ = false;
};

}  // namespace hplmxp
