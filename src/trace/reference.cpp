#include "trace/reference.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

namespace hplmxp {

namespace {
constexpr char kHeader[] =
    "k,trailing_blocks,diag_s,trsm_s,cast_s,bcast_s,gemm_s";
}

void saveReferenceTrace(const std::string& path,
                        const std::vector<IterationTrace>& trace) {
  std::ofstream out(path);
  HPLMXP_REQUIRE(out.good(), "cannot open reference file for writing");
  out << kHeader << '\n';
  for (const IterationTrace& t : trace) {
    char line[256];
    std::snprintf(line, sizeof(line), "%lld,%lld,%.17g,%.17g,%.17g,%.17g,%.17g",
                  static_cast<long long>(t.k),
                  static_cast<long long>(t.trailingBlocks), t.diagSeconds,
                  t.trsmSeconds, t.castSeconds, t.bcastSeconds,
                  t.gemmSeconds);
    out << line << '\n';
  }
  HPLMXP_REQUIRE(out.good(), "failed writing reference file");
}

std::vector<IterationTrace> loadReferenceTrace(const std::string& path) {
  std::ifstream in(path);
  HPLMXP_REQUIRE(in.good(), "cannot open reference file");
  std::string line;
  HPLMXP_REQUIRE(static_cast<bool>(std::getline(in, line)),
                 "reference file is empty");
  HPLMXP_REQUIRE(line == kHeader, "reference file header mismatch");
  std::vector<IterationTrace> trace;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    IterationTrace t;
    long long k = 0;
    long long trailing = 0;
    const int matched = std::sscanf(
        line.c_str(), "%lld,%lld,%lf,%lf,%lf,%lf,%lf", &k, &trailing,
        &t.diagSeconds, &t.trsmSeconds, &t.castSeconds, &t.bcastSeconds,
        &t.gemmSeconds);
    HPLMXP_REQUIRE(matched == 7, "malformed reference row");
    t.k = static_cast<index_t>(k);
    t.trailingBlocks = static_cast<index_t>(trailing);
    trace.push_back(t);
  }
  return trace;
}

double iterationSeconds(const IterationTrace& t) {
  return t.diagSeconds + t.trsmSeconds + t.castSeconds + t.bcastSeconds +
         t.gemmSeconds;
}

std::function<double(index_t)> referenceFromTrace(
    std::vector<IterationTrace> trace) {
  auto shared =
      std::make_shared<std::vector<IterationTrace>>(std::move(trace));
  return [shared](index_t k) -> double {
    if (k < 0 || k >= static_cast<index_t>(shared->size())) {
      return -1.0;  // out of recorded range: unmonitored
    }
    return iterationSeconds((*shared)[static_cast<std::size_t>(k)]);
  };
}

}  // namespace hplmxp
