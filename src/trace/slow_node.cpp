#include "trace/slow_node.h"

#include <algorithm>

#include "core/single_solver.h"
#include "gen/matgen.h"
#include "util/buffer.h"
#include "util/stats.h"
#include "util/timer.h"

namespace hplmxp {

double runMiniBenchmark(index_t n, index_t b, Vendor vendor,
                        std::uint64_t seed) {
  ProblemGenerator gen(seed, n);
  Buffer<float> a(n * n);
  gen.fillTile<float>(0, 0, n, n, a.data(), n);
  Timer t;
  factorMixedSingle(n, b, a.data(), n, vendor);
  const double seconds = t.seconds();
  const double nd = static_cast<double>(n);
  return (2.0 / 3.0) * nd * nd * nd / seconds;
}

SlowNodeScanner::SlowNodeScanner(ScanPolicy policy) : policy_(policy) {
  HPLMXP_REQUIRE(policy_.threshold > 0.0 && policy_.threshold < 1.0,
                 "threshold must be a fraction of the median");
}

ScanReport SlowNodeScanner::scan(const std::vector<double>& rates) const {
  HPLMXP_REQUIRE(!rates.empty(), "cannot scan an empty fleet");
  ScanReport report;
  report.median = percentile(rates, 50.0);
  const Summary s = summarize(rates);
  report.min = s.min;
  report.max = s.max;
  report.spreadPercent =
      report.median > 0.0 ? (s.max - s.min) / report.median * 100.0 : 0.0;

  const double cutoff = policy_.threshold * report.median;
  double keptMin = s.max;
  for (index_t i = 0; i < static_cast<index_t>(rates.size()); ++i) {
    const double r = rates[static_cast<std::size_t>(i)];
    if (r < cutoff) {
      report.flagged.push_back(i);
    } else {
      keptMin = std::min(keptMin, r);
    }
  }
  report.keptMinRate = report.flagged.size() == rates.size() ? 0.0 : keptMin;
  return report;
}

}  // namespace hplmxp
