#include "trace/slow_node.h"

#include <algorithm>

#include "core/single_solver.h"
#include "gen/matgen.h"
#include "util/buffer.h"
#include "util/stats.h"
#include "util/timer.h"

namespace hplmxp {

double runMiniBenchmark(index_t n, index_t b, Vendor vendor,
                        std::uint64_t seed) {
  ProblemGenerator gen(seed, n);
  Buffer<float> a(n * n);
  gen.fillTile<float>(0, 0, n, n, a.data(), n);
  Timer t;
  factorMixedSingle(n, b, a.data(), n, vendor);
  const double seconds = t.seconds();
  const double nd = static_cast<double>(n);
  return (2.0 / 3.0) * nd * nd * nd / seconds;
}

SlowNodeScanner::SlowNodeScanner(ScanPolicy policy) : policy_(policy) {
  HPLMXP_REQUIRE(policy_.threshold > 0.0 && policy_.threshold < 1.0,
                 "threshold must be a fraction of the median");
}

Table ScanReport::toTable() const {
  Table t({"metric", "value"});
  t.addRow({"fleet size", Table::num(static_cast<long long>(fleetSize))});
  t.addRow({"median rate (GF/s)", Table::num(median / 1e9, 2)});
  t.addRow({"min rate (GF/s)", Table::num(min / 1e9, 2)});
  t.addRow({"max rate (GF/s)", Table::num(max / 1e9, 2)});
  t.addRow({"spread", Table::num(spreadPercent, 1) + "%"});
  t.addRow({"flagged GCDs",
            Table::num(static_cast<long long>(flagged.size()))});
  t.addRow({"pipeline pace before scan (GF/s)", Table::num(min / 1e9, 2)});
  t.addRow({"pipeline pace after exclusion (GF/s)",
            Table::num(keptMinRate / 1e9, 2)});
  return t;
}

ScanReport SlowNodeScanner::scan(const std::vector<double>& rates) const {
  HPLMXP_REQUIRE(!rates.empty(), "cannot scan an empty fleet");
  ScanReport report;
  report.fleetSize = static_cast<index_t>(rates.size());
  report.median = percentile(rates, 50.0);
  const Summary s = summarize(rates);
  report.min = s.min;
  report.max = s.max;
  report.spreadPercent =
      report.median > 0.0 ? (s.max - s.min) / report.median * 100.0 : 0.0;

  const double cutoff = policy_.threshold * report.median;
  double keptMin = s.max;
  for (index_t i = 0; i < static_cast<index_t>(rates.size()); ++i) {
    const double r = rates[static_cast<std::size_t>(i)];
    if (r < cutoff) {
      report.flagged.push_back(i);
    } else {
      keptMin = std::min(keptMin, r);
    }
  }
  report.keptMinRate = report.flagged.size() == rates.size() ? 0.0 : keptMin;
  return report;
}

SlowRankMonitor::SlowRankMonitor(index_t worldSize, SlowRankPolicy policy)
    : policy_(policy),
      streak_(static_cast<std::size_t>(worldSize), 0),
      maxLag_(static_cast<std::size_t>(worldSize), 0.0) {
  HPLMXP_REQUIRE(worldSize > 0, "need at least one rank");
  HPLMXP_REQUIRE(policy_.strikes >= 1, "need at least one strike");
}

bool SlowRankMonitor::observe(index_t /*k*/,
                              const std::vector<double>& waits) {
  HPLMXP_REQUIRE(waits.size() == streak_.size(),
                 "wait vector does not match world size");
  const std::size_t p = waits.size();
  double maxWait = 0.0;
  for (double w : waits) {
    maxWait = std::max(maxWait, w);
  }
  std::vector<double> lag(p);
  for (std::size_t r = 0; r < p; ++r) {
    lag[r] = maxWait - waits[r];
    maxLag_[r] = std::max(maxLag_[r], lag[r]);
  }
  std::vector<double> sorted = lag;
  std::sort(sorted.begin(), sorted.end());
  // Lower median, so in a 2-rank world the healthy rank's ~0 lag is the
  // reference rather than the outlier's own lag.
  const double medianLag = sorted[(p - 1) / 2];

  for (std::size_t r = 0; r < p; ++r) {
    const bool outlier = lag[r] >= policy_.minLagSeconds &&
                         lag[r] > policy_.medianFactor * medianLag;
    if (outlier) {
      if (++streak_[r] >= policy_.strikes) {
        terminate_ = true;
      }
    } else {
      streak_[r] = 0;
    }
  }
  return terminate_;
}

std::vector<index_t> SlowRankMonitor::slowRanks() const {
  std::vector<index_t> out;
  for (std::size_t r = 0; r < streak_.size(); ++r) {
    if (streak_[r] >= policy_.strikes) {
      out.push_back(static_cast<index_t>(r));
    }
  }
  return out;
}

}  // namespace hplmxp
