// Slow-node scanning (Sec. VI-B "Identify slow nodes").
//
// A single slow GCD stalls the whole synchronous pipeline, so before a
// record run the paper scans every GCD with a mini-benchmark (a single-GPU
// LU factorization) and excludes outliers, aggregating measurements with
// MPI. This module provides both halves:
//
//   * runMiniBenchmark(): actually times the single-device mixed-precision
//     factorization on this host (the mini-benchmark kernel itself), and
//   * SlowNodeScanner: the aggregation/outlier logic, usable on real
//     measurements or on a simulated fleet from machine/variability.
#pragma once

#include <vector>

#include "device/device.h"
#include "util/common.h"
#include "util/table.h"

namespace hplmxp {

/// Times one single-device mixed-precision LU of order n (block b) and
/// returns the achieved FLOP/s (the (2/3)n^3 convention).
double runMiniBenchmark(index_t n, index_t b, Vendor vendor,
                        std::uint64_t seed = 1);

struct ScanPolicy {
  /// A GCD is flagged when its rate falls below `threshold` times the
  /// fleet median.
  double threshold = 0.93;
};

struct ScanReport {
  index_t fleetSize = 0;                  // GCDs scanned
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double spreadPercent = 0.0;             // (max-min)/median * 100
  std::vector<index_t> flagged;           // GCD indices to exclude
  /// Slowest multiplier among the *kept* fleet: the pipeline pace after
  /// exclusion.
  double keptMinRate = 0.0;

  /// Renders the report as the standard metric/value table (rates shown in
  /// GFLOP/s) — shared by the scan/chaos CLI commands and the examples.
  [[nodiscard]] Table toTable() const;
};

/// Aggregates per-GCD rates and flags outliers.
class SlowNodeScanner {
 public:
  explicit SlowNodeScanner(ScanPolicy policy = {});

  [[nodiscard]] ScanReport scan(const std::vector<double>& rates) const;

 private:
  ScanPolicy policy_;
};

/// Mid-run slow-rank detection (the in-flight complement of the pre-run
/// scan above): fed the per-rank barrier-wait times that DistLU gathers
/// each block step. In a synchronous pipeline the slowest rank arrives at
/// the barrier last and waits ~0 while everyone else idles, so
///
///     lag[r] = max(waits) - waits[r]
///
/// isolates the pacing rank even though every rank's step time is
/// identical. A rank whose lag is both above the noise floor and an
/// outlier against the median for `strikes` consecutive observations is
/// flagged; wire observe() into DistLU::setRankProgressCallback (or
/// HplaiConfig::rankProgressCallback) to terminate the run early, the
/// Sec. VI-B abnormal-run policy.
struct SlowRankPolicy {
  double minLagSeconds = 0.002;  // lag below this is scheduler noise
  double medianFactor = 4.0;     // outlier: lag > factor * median lag
  index_t strikes = 3;           // consecutive flagged steps to terminate
};

class SlowRankMonitor {
 public:
  explicit SlowRankMonitor(index_t worldSize, SlowRankPolicy policy = {});

  /// Feeds one step's per-rank waits; returns true once any rank has been
  /// the flagged outlier for `strikes` consecutive steps (terminate).
  bool observe(index_t k, const std::vector<double>& waits);

  [[nodiscard]] bool shouldTerminate() const { return terminate_; }
  /// Ranks currently at or beyond the strike limit.
  [[nodiscard]] std::vector<index_t> slowRanks() const;
  /// Largest lag seen for each rank (seconds), for reporting.
  [[nodiscard]] const std::vector<double>& maxLagSeconds() const {
    return maxLag_;
  }

 private:
  SlowRankPolicy policy_;
  std::vector<index_t> streak_;  // consecutive flagged steps per rank
  std::vector<double> maxLag_;
  bool terminate_ = false;
};

}  // namespace hplmxp
