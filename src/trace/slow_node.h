// Slow-node scanning (Sec. VI-B "Identify slow nodes").
//
// A single slow GCD stalls the whole synchronous pipeline, so before a
// record run the paper scans every GCD with a mini-benchmark (a single-GPU
// LU factorization) and excludes outliers, aggregating measurements with
// MPI. This module provides both halves:
//
//   * runMiniBenchmark(): actually times the single-device mixed-precision
//     factorization on this host (the mini-benchmark kernel itself), and
//   * SlowNodeScanner: the aggregation/outlier logic, usable on real
//     measurements or on a simulated fleet from machine/variability.
#pragma once

#include <vector>

#include "device/device.h"
#include "util/common.h"

namespace hplmxp {

/// Times one single-device mixed-precision LU of order n (block b) and
/// returns the achieved FLOP/s (the (2/3)n^3 convention).
double runMiniBenchmark(index_t n, index_t b, Vendor vendor,
                        std::uint64_t seed = 1);

struct ScanPolicy {
  /// A GCD is flagged when its rate falls below `threshold` times the
  /// fleet median.
  double threshold = 0.93;
};

struct ScanReport {
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double spreadPercent = 0.0;             // (max-min)/median * 100
  std::vector<index_t> flagged;           // GCD indices to exclude
  /// Slowest multiplier among the *kept* fleet: the pipeline pace after
  /// exclusion.
  double keptMinRate = 0.0;
};

/// Aggregates per-GCD rates and flags outliers.
class SlowNodeScanner {
 public:
  explicit SlowNodeScanner(ScanPolicy policy = {});

  [[nodiscard]] ScanReport scan(const std::vector<double>& rates) const;

 private:
  ScanPolicy policy_;
};

}  // namespace hplmxp
