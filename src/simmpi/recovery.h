// Crash-rank recovery for the simmpi runtime: the "self-healing" layer
// that turns PR 1's detected faults into survived faults.
//
// The paper's matrix is generated on the fly from a jump-ahead LCG
// (gen/lcg.h), so a lost rank's *untouched* tiles are recomputable for
// free — checkpoint 0 stores nothing but comm counters. Tiles already
// updated by the factorization are preserved by a lightweight rotating
// in-memory checkpoint (the in-process stand-in for a partner-rank
// checkpoint buffer) refreshed every `checkpointEveryK` panel steps; the
// refresh is incremental, re-copying only tiles the factorization could
// have touched since the previous checkpoint.
//
// Resurrection then rewinds the rank to its checkpoint and re-executes the
// normal factorization code path with the comm layer in replay mode
// (comm.h): sends are swallowed (the buffered transport already delivered
// them), recvs — including the missed panel broadcasts — are served from
// the bounded replay log, and barriers are skipped. Deterministic
// re-execution reaches the crashed op exactly and flips back to live
// communication mid-step, so the recovered run is bitwise identical to the
// fault-free run (tests/test_recovery.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simmpi/comm.h"
#include "util/common.h"

namespace hplmxp::simmpi {

/// Knobs of the recovery subsystem (the `recovery.*` conf keys).
struct RecoveryConfig {
  bool enabled = false;
  /// Panel steps between rotating checkpoints (`recovery.every-k`). Small
  /// values bound replay work and replay-log memory at the cost of more
  /// frequent matrix copies; see doc/ROBUSTNESS.md for the trade-off.
  index_t checkpointEveryK = 8;
  /// Resurrections allowed per rank before the crash is re-thrown (a
  /// backstop against a non-one-shot crash plan re-killing the rank
  /// forever).
  index_t maxResurrections = 8;

  void validate() const {
    HPLMXP_REQUIRE(checkpointEveryK >= 1,
                   "recovery checkpoint cadence must be >= 1");
    HPLMXP_REQUIRE(maxResurrections >= 1,
                   "recovery needs at least one resurrection");
  }
};

/// Shared tally sink for the whole recovery subsystem: checkpoint/replay
/// activity from this layer plus the ABFT detection/correction counts the
/// core factorization reports. One instance is shared by every rank's
/// RecoveryManager and by the CLI that renders the recovery report.
struct RecoveryStats {
  std::atomic<std::uint64_t> checkpoints{0};
  std::atomic<std::uint64_t> resurrections{0};
  std::atomic<std::uint64_t> stepsReplayed{0};
  std::atomic<std::uint64_t> recvsReplayed{0};
  std::atomic<std::uint64_t> sendsSuppressed{0};
  std::atomic<std::uint64_t> barriersSkipped{0};
  std::atomic<std::uint64_t> checkpointBytesCopied{0};
  std::atomic<std::uint64_t> replayLogPeakBytes{0};
  // ABFT (bumped by the core factorization when abft.* is on).
  std::atomic<std::uint64_t> abftPanelChecks{0};
  std::atomic<std::uint64_t> abftGemmChecks{0};
  std::atomic<std::uint64_t> flipsDetected{0};
  std::atomic<std::uint64_t> flipsCorrected{0};
  std::atomic<std::uint64_t> checksumCorruptions{0};
};

/// Plain snapshot of RecoveryStats (the recovery report's numbers).
struct RecoveryReport {
  std::uint64_t checkpoints = 0;
  std::uint64_t resurrections = 0;
  std::uint64_t stepsReplayed = 0;
  std::uint64_t recvsReplayed = 0;
  std::uint64_t sendsSuppressed = 0;
  std::uint64_t barriersSkipped = 0;
  std::uint64_t checkpointBytesCopied = 0;
  std::uint64_t replayLogPeakBytes = 0;
  std::uint64_t abftPanelChecks = 0;
  std::uint64_t abftGemmChecks = 0;
  std::uint64_t flipsDetected = 0;
  std::uint64_t flipsCorrected = 0;
  std::uint64_t checksumCorruptions = 0;
};

[[nodiscard]] RecoveryReport snapshotRecovery(const RecoveryStats& stats);

/// Rotating in-memory checkpoint of one rank's local matrix (col-major,
/// rows x cols) plus the comm-op counters at the moment it was taken.
/// save() is incremental: the caller passes the top-left corner
/// [0, rowFrom) x [0, colFrom) that provably did not change since the
/// previous save (final L/U tiles), and only the rest is re-copied.
class RankCheckpoint {
 public:
  /// Records a matrix-free checkpoint: the matrix is recoverable by
  /// regeneration (step 0, nothing factored yet).
  void saveRegenerable(index_t step, ReplayCounters counters);

  /// Saves/refreshes the matrix checkpoint. The first call must pass
  /// rowFrom == colFrom == 0 (full copy); dimensions must not change.
  void save(index_t step, ReplayCounters counters, const float* localA,
            index_t lda, index_t rows, index_t cols, index_t rowFrom,
            index_t colFrom);

  [[nodiscard]] bool valid() const { return valid_; }
  /// True when the checkpointed matrix must be regenerated, not copied.
  [[nodiscard]] bool regenerable() const { return valid_ && !hasMatrix_; }
  [[nodiscard]] index_t step() const { return step_; }
  [[nodiscard]] const ReplayCounters& counters() const { return counters_; }
  /// Cumulative bytes copied by save() calls (the checkpoint cost).
  [[nodiscard]] std::uint64_t bytesCopied() const { return bytesCopied_; }

  /// Copies the checkpointed matrix into localA. Requires !regenerable().
  void restore(float* localA, index_t lda) const;

 private:
  bool valid_ = false;
  bool hasMatrix_ = false;
  index_t step_ = 0;
  index_t rows_ = 0, cols_ = 0;
  ReplayCounters counters_;
  std::vector<float> matrix_;  // packed col-major rows_ x cols_
  std::uint64_t bytesCopied_ = 0;
};

/// Per-rank recovery driver. Owned by the rank's own thread (one per rank,
/// like the rank's local matrix); all methods are called from that thread.
class RecoveryManager {
 public:
  /// Rebuilds the rank's local matrix to its *generated* content (the LCG
  /// jump-ahead fill). Installed by the core layer, which owns the
  /// generator and the block-cyclic layout this library cannot see.
  using Regenerate = std::function<void(float* localA, index_t lda)>;

  RecoveryManager(Comm world, RecoveryConfig config,
                  std::shared_ptr<RecoveryStats> stats, Regenerate regen);

  [[nodiscard]] const RecoveryConfig& config() const { return config_; }
  [[nodiscard]] bool shouldCheckpoint(index_t step) const {
    return step % config_.checkpointEveryK == 0;
  }
  /// Step of the last matrix-bearing checkpoint, -1 if none yet (the
  /// caller uses it to compute the unchanged-corner extents of the next
  /// incremental save).
  [[nodiscard]] index_t matrixStep() const;

  /// Takes/refreshes the rotating checkpoint at panel step `step` and
  /// trims the replay log up to it. Re-taking a checkpoint while replaying
  /// re-saves identical state (deterministic re-execution) and is counted
  /// only once.
  void checkpoint(index_t step, const float* localA, index_t lda,
                  index_t rows, index_t cols, index_t rowFrom,
                  index_t colFrom);

  [[nodiscard]] bool canResurrect() const;

  /// Rewinds the rank after an InjectedCrashError caught at panel step
  /// `crashStep`: matrix restored from the checkpoint (or regenerated),
  /// comm counters rewound, replay mode armed. Returns the step to resume
  /// the factorization loop from.
  index_t resurrect(index_t crashStep, float* localA, index_t lda);

  [[nodiscard]] bool replaying() const {
    return world_.replaying(world_.rank());
  }

  /// Folds this rank's comm replay activity into the shared stats; call
  /// once when the factorization finishes.
  void noteRunComplete();

  [[nodiscard]] const std::shared_ptr<RecoveryStats>& stats() const {
    return stats_;
  }

 private:
  Comm world_;
  RecoveryConfig config_;
  std::shared_ptr<RecoveryStats> stats_;
  Regenerate regen_;
  RankCheckpoint ckpt_;
  index_t resurrections_ = 0;
};

}  // namespace hplmxp::simmpi
