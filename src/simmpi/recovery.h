// Crash-rank recovery for the simmpi runtime: the "self-healing" layer
// that turns PR 1's detected faults into survived faults.
//
// The paper's matrix is generated on the fly from a jump-ahead LCG
// (gen/lcg.h), so a lost rank's *untouched* tiles are recomputable for
// free — checkpoint 0 stores nothing but comm counters. Tiles already
// updated by the factorization are preserved by an incremental,
// delta-compressed, integrity-verified checkpoint store: the core layer
// marks every tile its TRSM/GEMM updates touch in a panel-granular
// DirtyMap, and each checkpoint generation stores only those tiles as an
// XOR delta against the previous generation, plane-transposed and
// RLE-compressed with a per-chunk CRC32 (util/delta_codec.h). Restore
// regenerates the LCG base and re-applies the generation chain; a chunk
// failing its CRC marks that generation — and everything after it — as
// lost, and recovery falls back to the newest *intact* generation instead
// of silently restoring garbage.
//
// Resurrection then rewinds the rank to the surviving generation and
// re-executes the normal factorization code path with the comm layer in
// replay mode (comm.h): sends are swallowed (the buffered transport
// already delivered them), recvs — including the missed panel broadcasts —
// are served from the bounded replay log, and barriers are skipped.
// Deterministic re-execution reaches the crashed op exactly and flips back
// to live communication mid-step, so the recovered run is bitwise
// identical to the fault-free run even under concurrent crashes on
// distinct ranks, a second crash arriving during replay (a *nested*
// resurrection), or injected checkpoint corruption
// (tests/test_recovery.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simmpi/comm.h"
#include "util/common.h"
#include "util/delta_codec.h"

namespace hplmxp::simmpi {

/// Knobs of the recovery subsystem (the `recovery.*` conf keys).
struct RecoveryConfig {
  bool enabled = false;
  /// Panel steps between checkpoint generations (`recovery.every-k`).
  /// Small values bound replay work and replay-log memory at the cost of
  /// more frequent delta encodes; see doc/ROBUSTNESS.md for the trade-off.
  index_t checkpointEveryK = 8;
  /// Resurrections allowed per rank before the crash is re-thrown (a
  /// backstop against a non-one-shot crash plan re-killing the rank
  /// forever). `recovery.max-resurrections`.
  index_t maxResurrections = 8;
  /// Plane-transpose + RLE the checkpoint deltas (`recovery.compress`).
  /// Off stores the raw XOR deltas — still chunked and CRC-verified.
  bool compressCheckpoints = true;
  /// CRC-check every chunk on restore, and scrub the newest stored
  /// generation at each append (`recovery.verify`). Off skips the
  /// integrity ladder and trusts the store (structural checks remain).
  bool verifyCheckpoints = true;

  void validate() const {
    HPLMXP_REQUIRE(checkpointEveryK >= 1,
                   "recovery checkpoint cadence must be >= 1");
    HPLMXP_REQUIRE(maxResurrections >= 1,
                   "recovery needs at least one resurrection");
  }
};

/// Clamps a checkpoint cadence against the run's panel-step count. A
/// cadence >= the panel count degenerates to "checkpoint never" (only the
/// free step-0 base would ever be taken); that is clamped to the largest
/// cadence that still yields a mid-run generation, with a once-per-process
/// warning — mirroring effectiveScheduler()'s logged fallback.
[[nodiscard]] index_t effectiveCheckpointCadence(index_t requested,
                                                 index_t panelSteps);

/// Shared tally sink for the whole recovery subsystem: checkpoint/replay
/// activity from this layer plus the ABFT detection/correction counts the
/// core factorization reports. One instance is shared by every rank's
/// RecoveryManager and by the CLI that renders the recovery report.
struct RecoveryStats {
  std::atomic<std::uint64_t> checkpoints{0};
  std::atomic<std::uint64_t> resurrections{0};
  std::atomic<std::uint64_t> stepsReplayed{0};
  std::atomic<std::uint64_t> recvsReplayed{0};
  std::atomic<std::uint64_t> sendsSuppressed{0};
  std::atomic<std::uint64_t> barriersSkipped{0};
  /// Raw (pre-codec) bytes of dirty-tile deltas gathered by checkpoints —
  /// what a full-copy scheme would have paid is checkpoints x local bytes.
  std::atomic<std::uint64_t> checkpointBytesCopied{0};
  /// Post-codec bytes actually retained by the store (the wire footprint).
  std::atomic<std::uint64_t> checkpointBytesStored{0};
  /// The same two tallies restricted to steady-state checkpoints — those
  /// taken in the second half of the factorization, past the warm-up
  /// generations whose dirty region still covers most of the matrix.
  std::atomic<std::uint64_t> steadyCheckpoints{0};
  std::atomic<std::uint64_t> steadyBytesCopied{0};
  std::atomic<std::uint64_t> steadyBytesStored{0};
  std::atomic<std::uint64_t> replayLogPeakBytes{0};
  /// Generations dropped by the corruption-fallback ladder on restore.
  std::atomic<std::uint64_t> generationsDiscarded{0};
  /// Chunk CRC mismatches detected on restore (each triggers a fallback).
  std::atomic<std::uint64_t> checkpointCorruptionsDetected{0};
  /// Resurrections that began while the rank was still replaying a
  /// previous resurrection (a second crash arriving mid-replay).
  std::atomic<std::uint64_t> nestedResurrections{0};
  // ABFT (bumped by the core factorization when abft.* is on).
  std::atomic<std::uint64_t> abftPanelChecks{0};
  std::atomic<std::uint64_t> abftGemmChecks{0};
  std::atomic<std::uint64_t> flipsDetected{0};
  std::atomic<std::uint64_t> flipsCorrected{0};
  std::atomic<std::uint64_t> checksumCorruptions{0};
};

/// Plain snapshot of RecoveryStats (the recovery report's numbers).
struct RecoveryReport {
  std::uint64_t checkpoints = 0;
  std::uint64_t resurrections = 0;
  std::uint64_t stepsReplayed = 0;
  std::uint64_t recvsReplayed = 0;
  std::uint64_t sendsSuppressed = 0;
  std::uint64_t barriersSkipped = 0;
  std::uint64_t checkpointBytesCopied = 0;
  std::uint64_t checkpointBytesStored = 0;
  std::uint64_t steadyCheckpoints = 0;
  std::uint64_t steadyBytesCopied = 0;
  std::uint64_t steadyBytesStored = 0;
  std::uint64_t replayLogPeakBytes = 0;
  std::uint64_t generationsDiscarded = 0;
  std::uint64_t checkpointCorruptionsDetected = 0;
  std::uint64_t nestedResurrections = 0;
  std::uint64_t abftPanelChecks = 0;
  std::uint64_t abftGemmChecks = 0;
  std::uint64_t flipsDetected = 0;
  std::uint64_t flipsCorrected = 0;
  std::uint64_t checksumCorruptions = 0;
};

[[nodiscard]] RecoveryReport snapshotRecovery(const RecoveryStats& stats);

/// Panel-granular dirty tracking over one rank's local block grid. The
/// core factorization marks every tile its diagonal write-back, TRSM
/// panels, and GEMM trailing updates touch; each checkpoint generation
/// stores exactly the marked tiles and clears the map.
class DirtyMap {
 public:
  void reset(index_t rowBlocks, index_t colBlocks);

  void mark(index_t ib, index_t jb) { markRect(ib, jb, 1, 1); }
  /// Marks the `hBlocks` x `wBlocks` tile rectangle anchored at
  /// (ib, jb); extents are clipped to the grid.
  void markRect(index_t ib, index_t jb, index_t hBlocks, index_t wBlocks);

  [[nodiscard]] bool test(index_t ib, index_t jb) const;
  void clear();

  [[nodiscard]] index_t rowBlocks() const { return rowBlocks_; }
  [[nodiscard]] index_t colBlocks() const { return colBlocks_; }
  [[nodiscard]] std::size_t markedCount() const { return marked_; }
  /// Linear ids (jb * rowBlocks + ib, i.e. column-major over the block
  /// grid) of all marked tiles, ascending.
  [[nodiscard]] std::vector<index_t> markedTiles() const;

 private:
  index_t rowBlocks_ = 0, colBlocks_ = 0;
  std::size_t marked_ = 0;
  std::vector<std::uint8_t> bits_;  // col-major over the block grid
};

/// What one restore pass did (folded into RecoveryStats by the manager).
struct RestoreResult {
  index_t step = 0;               // panel step of the surviving generation
  ReplayCounters counters;        // comm counters to rewind to
  std::uint64_t generationsDiscarded = 0;
  std::uint64_t corruptionsDetected = 0;
};

/// Generation-chained incremental checkpoint store for one rank's local
/// matrix (col-major rows x cols, tiled b x b). The base generation is the
/// LCG regeneration itself and stores nothing; generation g stores the
/// delta-codec blob of the tiles dirtied since generation g-1. Restore
/// regenerates the base and re-applies the chain, CRC-verifying every
/// chunk; the first corrupt generation and everything after it are
/// discarded and the newest intact predecessor wins.
class DeltaCheckpointStore {
 public:
  void configure(index_t rows, index_t cols, index_t blockB,
                 util::DeltaCodecConfig codec);

  /// Records the matrix-free base: the matrix is recoverable by
  /// regeneration (step 0, nothing factored yet).
  void saveRegenerable(index_t step, ReplayCounters counters);

  [[nodiscard]] bool valid() const { return baseValid_; }
  [[nodiscard]] index_t newestStep() const;
  [[nodiscard]] const ReplayCounters& newestCounters() const;
  [[nodiscard]] bool hasGenerationAt(index_t step) const;
  [[nodiscard]] std::size_t generationCount() const {
    return generations_.size();
  }

  /// The recv counter the comm replay log must retain back to: the
  /// second-newest generation's, so a corruption fallback of the newest
  /// generation is always replayable.
  [[nodiscard]] std::uint64_t replayFloorRecvs() const;

  struct AppendResult {
    std::uint64_t rawBytes = 0;     // gathered dirty-tile bytes
    std::uint64_t storedBytes = 0;  // post-codec footprint retained
    std::uint64_t generationsDiscarded = 0;   // scrub-on-append casualties
    std::uint64_t corruptionsDetected = 0;    // rotted chunks the scrub hit
  };

  /// Appends generation (`step`, `counters`) storing the delta of `tiles`
  /// (linear ids from DirtyMap::markedTiles) against the previous
  /// generation's image. `regen` materializes the base image on the first
  /// matrix-bearing append. Requires a saved base and ascending steps.
  ///
  /// With `scrub` on, the newest stored generation is CRC-checked first —
  /// the last moment a rotted generation can be dropped while the replay
  /// floor still reaches its predecessor. A scrub casualty's tiles are
  /// folded into this generation (the image is rebuilt from the intact
  /// chain), so the chain stays exact and restore never has to fall back
  /// further than one generation.
  AppendResult append(index_t step, ReplayCounters counters,
                      const float* localA, index_t lda,
                      const std::vector<index_t>& tiles,
                      const std::function<void(float*, index_t)>& regen,
                      bool scrub = true);

  /// Rebuilds the newest intact generation into localA: regenerates the
  /// base, re-applies the chain, and on a CRC/structural failure discards
  /// that generation and all later ones (fallback ladder). Requires a
  /// saved base. `verify` = false skips the CRC pass (structural checks
  /// remain).
  RestoreResult restore(float* localA, index_t lda,
                        const std::function<void(float*, index_t)>& regen,
                        bool verify);

  /// Fault-injection hook: flips one bit (chosen by `selector`) in the
  /// newest generation's stored payload. Returns false when there is no
  /// matrix-bearing generation to corrupt.
  bool corruptNewestGeneration(std::uint64_t selector);

 private:
  struct Generation {
    index_t step = 0;
    ReplayCounters counters;
    std::vector<index_t> tiles;
    util::DeltaBlob blob;
  };

  /// Packs the given tiles' bytes from a rows_-strided (or lda-strided)
  /// matrix into a contiguous buffer.
  void gatherTiles(const std::vector<index_t>& tiles, const float* src,
                   index_t lda, std::vector<std::uint8_t>& out) const;
  void scatterTiles(const std::vector<index_t>& tiles,
                    const std::uint8_t* packed, float* dst,
                    index_t lda) const;
  void materializeImage(const std::function<void(float*, index_t)>& regen);

  index_t rows_ = 0, cols_ = 0, b_ = 1;
  index_t rowBlocks_ = 0, colBlocks_ = 0;
  util::DeltaCodecConfig codec_;
  bool baseValid_ = false;
  index_t baseStep_ = 0;
  ReplayCounters baseCounters_;
  std::vector<Generation> generations_;
  std::vector<float> image_;  // newest generation's full packed matrix
};

/// Local shape the recovery layer checkpoints over, provided by the core
/// layer (which owns the block-cyclic layout this library cannot see).
struct RecoveryGeometry {
  index_t localRows = 0;
  index_t localCols = 0;
  index_t blockB = 1;
  /// Total panel steps of the factorization (ceil(n / b)); bounds the
  /// checkpoint cadence (effectiveCheckpointCadence).
  index_t panelSteps = 1;
};

/// Per-rank recovery driver. Owned by the rank's own thread (one per rank,
/// like the rank's local matrix); all methods are called from that thread.
class RecoveryManager {
 public:
  /// Rebuilds the rank's local matrix to its *generated* content (the LCG
  /// jump-ahead fill). Installed by the core layer, which owns the
  /// generator and the block-cyclic layout this library cannot see.
  using Regenerate = std::function<void(float* localA, index_t lda)>;

  RecoveryManager(Comm world, RecoveryConfig config,
                  RecoveryGeometry geometry,
                  std::shared_ptr<RecoveryStats> stats, Regenerate regen);

  [[nodiscard]] const RecoveryConfig& config() const { return config_; }
  [[nodiscard]] bool shouldCheckpoint(index_t step) const {
    return step % config_.checkpointEveryK == 0;
  }

  /// The dirty map the core factorization marks touched tiles into.
  [[nodiscard]] DirtyMap& dirtyMap() { return dirty_; }

  /// Takes a checkpoint generation at panel step `step` from the tiles
  /// currently marked dirty, clears the map, and trims the replay log to
  /// the store's replay floor. Re-reaching a step during replay whose
  /// generation survived is a no-op (the state is deterministically
  /// identical); a generation discarded by a corruption fallback is
  /// re-appended fresh when replay re-reaches its step.
  void checkpoint(index_t step, const float* localA, index_t lda);

  [[nodiscard]] bool canResurrect() const;

  /// Rewinds the rank after an InjectedCrashError caught at panel step
  /// `crashStep`: matrix restored to the newest intact generation (or
  /// regenerated), comm counters rewound, replay mode armed. A crash
  /// caught while already replaying nests: the rank rewinds again and the
  /// outer replay target is preserved. Returns the step to resume the
  /// factorization loop from.
  index_t resurrect(index_t crashStep, float* localA, index_t lda);

  [[nodiscard]] bool replaying() const {
    return world_.replaying(world_.rank());
  }

  /// Folds this rank's comm replay activity into the shared stats; call
  /// once when the factorization finishes.
  void noteRunComplete();

  [[nodiscard]] const std::shared_ptr<RecoveryStats>& stats() const {
    return stats_;
  }

 private:
  Comm world_;
  RecoveryConfig config_;
  RecoveryGeometry geometry_;
  std::shared_ptr<RecoveryStats> stats_;
  Regenerate regen_;
  DeltaCheckpointStore store_;
  DirtyMap dirty_;
  index_t resurrections_ = 0;
  std::uint64_t liveAppends_ = 0;  // corruption-injection ordinal
};

}  // namespace hplmxp::simmpi
