#include "simmpi/rank_group.h"

#include <utility>

#include "simmpi/faults.h"

namespace hplmxp::simmpi {

namespace {

/// A failure takes the grid down when it is (or contains) an injected
/// crash — timeouts and transient errors leave the group restartable
/// without a generation bump.
bool isCrashFailure(const std::exception& e) {
  if (dynamic_cast<const InjectedCrashError*>(&e) != nullptr) {
    return true;
  }
  if (const auto* multi = dynamic_cast<const MultiRankError*>(&e)) {
    for (const RankFailure& f : multi->failures()) {
      if (f.message.find("crash") != std::string::npos) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

RankGroup::RankGroup(index_t groupId, index_t size, RunOptions options)
    : id_(groupId), size_(size), options_(std::move(options)) {
  HPLMXP_REQUIRE(size_ > 0, "rank group needs >= 1 rank");
}

bool RankGroup::alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.alive;
}

index_t RankGroup::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.generation;
}

RankGroup::Stats RankGroup::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void RankGroup::runJob(const std::function<void(Comm&)>& fn) {
  std::lock_guard<std::mutex> job(jobMutex_);
  RunOptions options;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stats_.alive) {
      throw GroupDownError("rank group " + std::to_string(id_) +
                           " is down (generation " +
                           std::to_string(stats_.generation) + ")");
    }
    ++stats_.jobs;
    options = options_;
  }
  try {
    run(size_, fn, options);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failures;
    if (isCrashFailure(e)) {
      ++stats_.crashes;
      stats_.alive = false;
    }
    throw;
  }
}

void RankGroup::setFaults(std::shared_ptr<FaultInjector> faults) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.faults = std::move(faults);
}

void RankGroup::kill(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.alive) {
    stats_.alive = false;
    ++stats_.crashes;
    (void)reason;
  }
}

void RankGroup::restart() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.alive) {
    return;
  }
  stats_.alive = true;
  ++stats_.generation;
  // The injector that killed the group has fired its one-shot crash;
  // a resurrected grid starts clean unless a new injector is armed.
  options_.faults.reset();
}

}  // namespace hplmxp::simmpi
