// Persistent identity for a group of simmpi ranks across repeated jobs.
//
// simmpi::run is global-state-free per invocation (the only thread-local
// is the rank binding each launched thread sets for itself), so any number
// of rank groups can run jobs concurrently — tests/test_fleet.cpp proves
// the non-interference. A RankGroup adds what run() deliberately lacks:
// a stable id, a generation counter, crash latching, and restart — the
// lifecycle a serve-fleet shard needs so "this shard's grid died" and
// "ops resurrected it" are states, not just exceptions.
//
// Jobs on one group are serialized (one grid, one program at a time);
// different groups proceed independently. A job failing with a crash-type
// error (InjectedCrashError on a rank, or a MultiRankError containing
// one) marks the group dead: further runJob calls fail fast with
// GroupDownError until restart(), which bumps the generation and rearms.
#pragma once

#include <memory>
#include <mutex>

#include "simmpi/runtime.h"
#include "util/common.h"

namespace hplmxp::simmpi {

/// Thrown by runJob on a group whose grid has crashed and has not been
/// restarted. Callers (the fleet router) treat it as "shard down".
class GroupDownError : public CheckError {
 public:
  explicit GroupDownError(const std::string& msg) : CheckError(msg) {}
};

class RankGroup {
 public:
  struct Stats {
    std::uint64_t jobs = 0;      // jobs attempted (including failed ones)
    std::uint64_t failures = 0;  // jobs that threw
    std::uint64_t crashes = 0;   // failures that took the grid down
    index_t generation = 1;      // bumped by every restart()
    bool alive = true;
  };

  RankGroup(index_t groupId, index_t size, RunOptions options = {});

  [[nodiscard]] index_t id() const { return id_; }
  [[nodiscard]] index_t size() const { return size_; }
  [[nodiscard]] bool alive() const;
  [[nodiscard]] index_t generation() const;
  [[nodiscard]] Stats stats() const;

  /// Runs `fn` as one group job (simmpi::run under this group's options).
  /// Serialized per group. Throws GroupDownError if the group is dead;
  /// otherwise job exceptions propagate after being tallied, and a
  /// crash-type failure additionally marks the group dead.
  void runJob(const std::function<void(Comm&)>& fn);

  /// Arms a fault injector for subsequent jobs (replaces any current one).
  void setFaults(std::shared_ptr<FaultInjector> faults);

  /// Forces the group dead without a job failure (ops-initiated kill; the
  /// fleet crash chaos hook). In-flight jobs finish, new ones fail fast.
  void kill(const std::string& reason);

  /// Resurrects a dead group: new generation, cleared fault injector
  /// (the scheduled crash already fired), alive again. No-op when alive.
  void restart();

 private:
  const index_t id_;
  const index_t size_;
  mutable std::mutex mutex_;  // guards options_/stats_ between jobs
  std::mutex jobMutex_;       // serializes runJob
  RunOptions options_;
  Stats stats_;
};

}  // namespace hplmxp::simmpi
