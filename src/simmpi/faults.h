// Deterministic fault injection for the simmpi runtime (the chaos half of
// Sec. VI-B's operational defenses).
//
// The paper's record runs survived because slow nodes were scanned out,
// progress was monitored, and abnormal runs were killed early; this module
// provides the *adversary* those defenses are tested against. A FaultPlan
// is a pure function of (seed, rank, op-index) — the same resume-safe
// hashing discipline as machine/GcdVariability — so every injected delay,
// dropped send, flipped bit, stall, and scheduled rank crash is exactly
// reproducible from the seed alone.
//
// Injection is wired into Comm behind a single shared_ptr check: with no
// injector installed the hot send/recv paths pay one pointer compare.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.h"

namespace hplmxp::simmpi {

/// Thrown by a rank whose scheduled crash point has been reached. Peers of
/// the dead rank subsequently observe CommTimeoutError (given a configured
/// timeout), and simmpi::run aggregates the whole failure picture.
class InjectedCrashError : public CheckError {
 public:
  explicit InjectedCrashError(const std::string& msg) : CheckError(msg) {}
};

/// What faults a plan injects and how often. All probabilities are per
/// communication operation (each send attempt / recv is one op).
struct FaultConfig {
  std::uint64_t seed = 0xC4A05;

  /// Message delay: with this probability a send sleeps `delayMicros`
  /// before delivering (network jitter / congested links).
  double delayProbability = 0.0;
  index_t delayMicros = 200;

  /// Transient send failure: the send attempt fails and must be retried by
  /// the comm layer (lossy fabric). Repeated per-attempt draws make
  /// permanent loss geometrically unlikely but possible.
  double transientSendProbability = 0.0;

  /// Silent data corruption: one bit of the payload is flipped in transit.
  /// The flipped bit is bit 14 of a plan-chosen 16-bit word — an exponent
  /// bit for binary16 payloads, so corrupted FP16 panels become abnormally
  /// large or non-finite and are catchable by blas::scanAbnormal.
  double bitflipProbability = 0.0;
  /// Payloads smaller than this never get flipped (protects tiny control
  /// messages when the scenario targets bulk panel traffic).
  std::size_t bitflipMinBytes = 0;
  /// Treat payloads as FP32 words: flip bit 30 of a plan-chosen 32-bit
  /// word (the second-highest exponent bit of binary32) instead of bit 14
  /// of a 16-bit word. Targets the FP32 diagonal-block and trailing-tile
  /// traffic rather than the FP16 panels.
  bool flipFp32Words = false;

  /// Targeted rank stall: `stallRank` sleeps `stallMicros` every
  /// `stallEveryOps` operations (a thermally-throttled or page-faulting
  /// die). -1 disables.
  index_t stallRank = -1;
  index_t stallEveryOps = 16;
  index_t stallMicros = 5000;

  /// Scheduled crash: `crashRank` throws InjectedCrashError at its
  /// `crashAtOp`-th communication operation (a lost node). -1 disables.
  index_t crashRank = -1;
  std::uint64_t crashAtOp = 0;
  /// Second scheduled crash on a distinct rank — two nodes lost in the
  /// same run (the multi-fault scenarios of tests/test_recovery.cpp).
  /// Shares `crashOnce` with the first crash. -1 disables.
  index_t crashRank2 = -1;
  std::uint64_t crashAtOp2 = 0;
  /// One-shot crash semantics: after the scheduled crash fires once the
  /// rank communicates normally, so a recovery layer can resurrect it and
  /// resume. Without recovery the crashed thread unwinds and never issues
  /// another op, so this default changes nothing for legacy chaos runs.
  /// Set false for the "node stays dead" interpretation (every op past
  /// crashAtOp keeps crashing).
  bool crashOnce = true;

  /// Crash arriving DURING replay: `replayCrashRank` throws at its
  /// `replayCrashAtOp`-th *replayed* communication operation (counted
  /// separately from the live op sequence, which replay must not
  /// perturb). Always one-shot — the nested resurrection's own replay
  /// must be allowed to finish. -1 disables.
  index_t replayCrashRank = -1;
  std::uint64_t replayCrashAtOp = 0;

  /// Checkpoint corruption: flip one bit in `ckptCorruptRank`'s
  /// `ckptCorruptOrdinal`-th stored checkpoint generation (0-based over
  /// that rank's live matrix-bearing appends). One-shot. Exercises the
  /// store's CRC detection and generation-fallback ladder. -1 disables.
  index_t ckptCorruptRank = -1;
  std::uint64_t ckptCorruptOrdinal = 0;

  /// Network partition: for a window of ops, sends crossing the rank
  /// boundary (rank < partitionBoundary vs rank >= partitionBoundary) are
  /// silently dropped — the grid splits into two non-communicating halves
  /// that each believe the other hung. Cross-partition recvs surface as
  /// CommTimeoutError (given a configured blocking-wait timeout); nothing
  /// crashes, which is exactly what makes a partition a *gray* failure.
  /// The window runs from the sender's `partitionAtOp`-th op for
  /// `partitionOps` ops (0 = until the end of the run). -1 disables.
  index_t partitionBoundary = -1;
  std::uint64_t partitionAtOp = 0;
  std::uint64_t partitionOps = 0;

  [[nodiscard]] bool anyEnabled() const {
    return delayProbability > 0.0 || transientSendProbability > 0.0 ||
           bitflipProbability > 0.0 || stallRank >= 0 || crashRank >= 0 ||
           crashRank2 >= 0 || replayCrashRank >= 0 ||
           ckptCorruptRank >= 0 || partitionBoundary >= 0;
  }
};

/// The plan's verdict for one (rank, op) pair.
struct FaultDecision {
  index_t delayMicros = 0;       // sleep this long before the op
  bool transientSendFailure = false;
  bool flipBit = false;          // corrupt the payload
  std::uint64_t flipSelector = 0;  // hash used to pick the flipped word
  bool crash = false;

  [[nodiscard]] bool any() const {
    return delayMicros > 0 || transientSendFailure || flipBit || crash;
  }
};

/// Pure, stateless fault schedule: decisionFor(rank, op) is a function of
/// the config seed only, so plans can be replayed, resumed, and asserted on.
class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig config);

  [[nodiscard]] FaultDecision decisionFor(index_t rank,
                                          std::uint64_t opIndex) const;
  /// True when the plan's partition window is open at the sender's
  /// `opIndex` AND (rank, dest) are on opposite sides of the boundary —
  /// the send must be dropped. Pure, like decisionFor.
  [[nodiscard]] bool partitionedSend(index_t rank, index_t dest,
                                     std::uint64_t opIndex) const;
  [[nodiscard]] const FaultConfig& config() const { return config_; }

 private:
  [[nodiscard]] double uniform(index_t rank, std::uint64_t opIndex,
                               std::uint64_t salt) const;
  [[nodiscard]] std::uint64_t hash(index_t rank, std::uint64_t opIndex,
                                   std::uint64_t salt) const;

  FaultConfig config_;
};

/// Counts of faults actually injected (a recovery report's raw material).
struct FaultStats {
  std::uint64_t delays = 0;
  std::uint64_t transientFailures = 0;
  std::uint64_t retries = 0;        // send attempts repeated by the comm
  std::uint64_t bitflips = 0;
  std::uint64_t stalls = 0;
  std::uint64_t crashes = 0;
  std::uint64_t checkpointCorruptions = 0;  // stored generations flipped
  std::uint64_t partitionDrops = 0;  // sends dropped at the partition
};

/// One applied payload bit flip, recorded exactly: which rank's send, at
/// which op, which byte, which bit, and how large the payload was. ABFT
/// tests cross these records against the corrections the checksum layer
/// reports, proving every injected flip was found and undone.
struct FlipRecord {
  index_t rank = 0;            // sender whose payload was corrupted
  std::uint64_t opIndex = 0;   // the sender's comm-op ordinal
  std::size_t byteOffset = 0;  // flipped byte within the payload
  int bit = 0;                 // flipped bit within that byte (0..7)
  std::size_t payloadBytes = 0;
};

/// Shared injection state: the plan plus per-rank op counters and fault
/// tallies. One instance is installed into a world (Comm::setFaultInjector)
/// and inherited by every split sub-communicator; each rank-thread draws
/// its own deterministic op sequence.
class FaultInjector {
 public:
  FaultInjector(FaultConfig config, index_t worldSize);

  /// Next decision for `rank` (advances that rank's op counter). Each rank
  /// is a single thread, so per-rank counters need no synchronization.
  FaultDecision next(index_t rank);

  /// Replay-time crash check: advances `rank`'s *replayed*-op counter and
  /// returns true when the plan's replay crash fires at this op. Kept
  /// separate from next() so replay never perturbs the live op sequence.
  /// One-shot per rank.
  [[nodiscard]] bool nextReplayCrash(index_t rank);

  /// Checkpoint-corruption check for `rank`'s `ordinal`-th stored
  /// matrix-bearing generation. On a hit, writes a plan-derived bit
  /// selector into `*selector` and latches (one-shot per rank).
  [[nodiscard]] bool nextCheckpointCorruption(index_t rank,
                                              std::uint64_t ordinal,
                                              std::uint64_t* selector);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] std::uint64_t opsSeen(index_t rank) const;

  /// Snapshot of the tallies (safe to read while ranks run).
  [[nodiscard]] FaultStats stats() const;

  /// Every bit flip actually applied, in application order (mutex-guarded;
  /// flips are rare so the lock never contends on the hot path).
  [[nodiscard]] std::vector<FlipRecord> flipRecords() const;

  // Tallies, bumped by the comm layer as it applies decisions.
  void noteDelay() { delays_.fetch_add(1, std::memory_order_relaxed); }
  void noteTransient() {
    transients_.fetch_add(1, std::memory_order_relaxed);
  }
  void noteRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void noteBitflip(const FlipRecord& record);
  void noteStall() { stalls_.fetch_add(1, std::memory_order_relaxed); }
  void noteCrash() { crashes_.fetch_add(1, std::memory_order_relaxed); }
  void noteCheckpointCorruption() {
    ckptCorruptions_.fetch_add(1, std::memory_order_relaxed);
  }
  void notePartitionDrop() {
    partitionDrops_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  bool armed_;
  std::vector<std::uint64_t> opCount_;  // per rank; single-writer each
  std::vector<std::uint64_t> replayOpCount_;  // replayed ops, per rank
  std::vector<std::uint8_t> crashFired_;  // per rank; one-shot crash latch
  std::vector<std::uint8_t> replayCrashFired_;  // per rank; one-shot
  std::vector<std::uint8_t> ckptCorruptFired_;  // per rank; one-shot
  mutable std::mutex flipMutex_;
  std::vector<FlipRecord> flips_;
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> transients_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> bitflips_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> ckptCorruptions_{0};
  std::atomic<std::uint64_t> partitionDrops_{0};
};

/// Binds the calling thread to a world rank for fault attribution. The
/// runtime binds each rank-thread at launch; a thread with no binding
/// (rank < 0) is never injected into.
void bindThreadRank(index_t rank);
[[nodiscard]] index_t boundThreadRank();

/// Named fault scenarios for the chaos CLI and tests. Recognized names:
/// none, delay, transient, sdc, sdc32, stall, crash, multicrash,
/// ckptcorrupt, partition. Throws CheckError otherwise.
[[nodiscard]] FaultConfig faultScenario(const std::string& name,
                                        std::uint64_t seed,
                                        index_t worldSize);
[[nodiscard]] std::vector<std::string> knownFaultScenarios();

}  // namespace hplmxp::simmpi
