// Launches a multi-rank program: one thread per rank, each receiving its
// world communicator. The functional analogue of `mpirun -np P`.
#pragma once

#include <functional>

#include "simmpi/comm.h"
#include "util/common.h"

namespace hplmxp::simmpi {

/// Runs `fn(world)` on `worldSize` concurrent ranks and joins them all.
/// If any rank throws, the first exception is rethrown after all ranks
/// finish (ranks blocked on a failed peer would deadlock, so rank bodies
/// are expected to fail collectively or not at all; tests rely on this).
void run(index_t worldSize, const std::function<void(Comm&)>& fn);

/// Variant collecting a per-rank result.
template <typename R>
std::vector<R> runCollect(index_t worldSize,
                          const std::function<R(Comm&)>& fn) {
  std::vector<R> results(static_cast<std::size_t>(worldSize));
  run(worldSize, [&](Comm& comm) {
    results[static_cast<std::size_t>(comm.rank())] = fn(comm);
  });
  return results;
}

}  // namespace hplmxp::simmpi
