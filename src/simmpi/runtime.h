// Launches a multi-rank program: one thread per rank, each receiving its
// world communicator. The functional analogue of `mpirun -np P`.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simmpi/comm.h"
#include "util/common.h"

namespace hplmxp::simmpi {

class FaultInjector;

/// One rank's failure inside run().
struct RankFailure {
  index_t rank = 0;
  std::string message;
};

/// Aggregate of every rank failure in one run() — at scale a single lost
/// rank cascades into timeouts on its peers, and diagnosing the root cause
/// needs the whole picture, not just whichever rank's exception happened
/// to be caught first.
class MultiRankError : public CheckError {
 public:
  explicit MultiRankError(std::vector<RankFailure> failures);
  /// Partition provenance: when the active fault plan dropped sends at a
  /// network partition, the aggregate says so — a wall of symmetric
  /// timeouts with no dead rank is otherwise the hardest cascade to read.
  MultiRankError(std::vector<RankFailure> failures,
                 index_t partitionBoundary, std::uint64_t partitionDrops);

  [[nodiscard]] const std::vector<RankFailure>& failures() const {
    return failures_;
  }
  /// True when the run's fault plan partitioned the grid and dropped at
  /// least one cross-boundary send.
  [[nodiscard]] bool partitioned() const { return partitionDrops_ > 0; }
  [[nodiscard]] index_t partitionBoundary() const {
    return partitionBoundary_;
  }
  [[nodiscard]] std::uint64_t partitionDrops() const {
    return partitionDrops_;
  }

 private:
  static std::string renderMessage(const std::vector<RankFailure>& failures,
                                   index_t partitionBoundary,
                                   std::uint64_t partitionDrops);

  std::vector<RankFailure> failures_;
  index_t partitionBoundary_ = -1;
  std::uint64_t partitionDrops_ = 0;
};

/// Optional robustness configuration for run(): fault injection (chaos
/// testing) and the comm-level timeout/retry policy applied to the world
/// communicator before any rank starts.
struct RunOptions {
  /// Deterministic fault injector (simmpi/faults.h); null runs clean.
  std::shared_ptr<FaultInjector> faults;
  /// Blocking-wait budget for recv/barrier/split; zero waits forever.
  std::chrono::milliseconds timeout{0};
  /// Transient-send retry budget and initial exponential backoff.
  int sendMaxRetries = 3;
  std::chrono::microseconds sendBackoff{50};
  /// Arms the world's crash-recovery replay log (comm.h) before any rank
  /// starts, so checkpoints can snapshot comm-op counters and crashed
  /// ranks can be resurrected (recovery.h).
  bool replayLog = false;
};

/// Runs `fn(world)` on `worldSize` concurrent ranks and joins them all.
/// Every rank's exception is collected: a single failure is rethrown with
/// its original type; multiple failures are aggregated into one
/// MultiRankError carrying per-rank messages. (Ranks blocked on a failed
/// peer hang unless a timeout is configured via RunOptions — with one,
/// they fail fast with CommTimeoutError and join the aggregate.)
void run(index_t worldSize, const std::function<void(Comm&)>& fn);
void run(index_t worldSize, const std::function<void(Comm&)>& fn,
         const RunOptions& options);

/// Variant collecting a per-rank result.
template <typename R>
std::vector<R> runCollect(index_t worldSize,
                          const std::function<R(Comm&)>& fn) {
  std::vector<R> results(static_cast<std::size_t>(worldSize));
  run(worldSize, [&](Comm& comm) {
    results[static_cast<std::size_t>(comm.rank())] = fn(comm);
  });
  return results;
}

}  // namespace hplmxp::simmpi
