#include "simmpi/faults.h"

#include <vector>

namespace hplmxp::simmpi {

namespace {
thread_local index_t tlsRank = -1;
}  // namespace

void bindThreadRank(index_t rank) { tlsRank = rank; }
index_t boundThreadRank() { return tlsRank; }

FaultPlan::FaultPlan(FaultConfig config) : config_(config) {
  auto inUnit = [](double p) { return p >= 0.0 && p <= 1.0; };
  HPLMXP_REQUIRE(inUnit(config_.delayProbability) &&
                     inUnit(config_.transientSendProbability) &&
                     inUnit(config_.bitflipProbability),
                 "fault probabilities must be in [0, 1]");
  HPLMXP_REQUIRE(config_.delayMicros >= 0 && config_.stallMicros >= 0,
                 "fault delays must be non-negative");
  HPLMXP_REQUIRE(config_.stallRank < 0 || config_.stallEveryOps >= 1,
                 "stallEveryOps must be at least 1");
  HPLMXP_REQUIRE(config_.partitionBoundary < 0 ||
                     config_.partitionBoundary >= 1,
                 "partition boundary must split off at least one rank");
}

bool FaultPlan::partitionedSend(index_t rank, index_t dest,
                                std::uint64_t opIndex) const {
  if (config_.partitionBoundary < 0 || rank < 0 || dest < 0) {
    return false;
  }
  if (opIndex < config_.partitionAtOp) {
    return false;
  }
  if (config_.partitionOps > 0 &&
      opIndex >= config_.partitionAtOp + config_.partitionOps) {
    return false;  // the partition healed
  }
  const bool senderLow = rank < config_.partitionBoundary;
  const bool destLow = dest < config_.partitionBoundary;
  return senderLow != destLow;
}

std::uint64_t FaultPlan::hash(index_t rank, std::uint64_t opIndex,
                              std::uint64_t salt) const {
  // SplitMix64 over (seed, salt, rank, op): the GcdVariability discipline —
  // stateless, well-mixed, resume-safe.
  std::uint64_t x = config_.seed ^ (salt * 0x9E3779B97F4A7C15ULL) ^
                    (static_cast<std::uint64_t>(rank + 1) * 0xD1B54A32D192ED03ULL) ^
                    (opIndex + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

double FaultPlan::uniform(index_t rank, std::uint64_t opIndex,
                          std::uint64_t salt) const {
  return static_cast<double>(hash(rank, opIndex, salt) >> 11) *
         (1.0 / 9007199254740992.0);
}

FaultDecision FaultPlan::decisionFor(index_t rank,
                                     std::uint64_t opIndex) const {
  FaultDecision d;
  if ((config_.crashRank == rank && opIndex >= config_.crashAtOp) ||
      (config_.crashRank2 == rank && opIndex >= config_.crashAtOp2)) {
    d.crash = true;
    return d;
  }
  if (config_.stallRank == rank &&
      opIndex % static_cast<std::uint64_t>(config_.stallEveryOps) == 0) {
    d.delayMicros += config_.stallMicros;
  }
  if (config_.delayProbability > 0.0 &&
      uniform(rank, opIndex, 1) < config_.delayProbability) {
    d.delayMicros += config_.delayMicros;
  }
  if (config_.transientSendProbability > 0.0 &&
      uniform(rank, opIndex, 2) < config_.transientSendProbability) {
    d.transientSendFailure = true;
  }
  if (config_.bitflipProbability > 0.0 &&
      uniform(rank, opIndex, 3) < config_.bitflipProbability) {
    d.flipBit = true;
    d.flipSelector = hash(rank, opIndex, 4);
  }
  return d;
}

FaultInjector::FaultInjector(FaultConfig config, index_t worldSize)
    : plan_(config),
      armed_(config.anyEnabled()),
      opCount_(static_cast<std::size_t>(worldSize), 0),
      replayOpCount_(static_cast<std::size_t>(worldSize), 0),
      crashFired_(static_cast<std::size_t>(worldSize), 0),
      replayCrashFired_(static_cast<std::size_t>(worldSize), 0),
      ckptCorruptFired_(static_cast<std::size_t>(worldSize), 0) {
  HPLMXP_REQUIRE(worldSize > 0, "world size must be positive");
}

FaultDecision FaultInjector::next(index_t rank) {
  if (rank < 0 || rank >= static_cast<index_t>(opCount_.size())) {
    return FaultDecision{};  // unbound thread: never injected into
  }
  const std::uint64_t op = opCount_[static_cast<std::size_t>(rank)]++;
  FaultDecision d = plan_.decisionFor(rank, op);
  if (d.crash && plan_.config().crashOnce) {
    // One-shot latch: the plan says "dead from op crashAtOp onward", but a
    // resurrected rank must be able to communicate again. Each rank is one
    // thread, so the latch needs no synchronization.
    auto& fired = crashFired_[static_cast<std::size_t>(rank)];
    if (fired != 0) {
      d.crash = false;
    } else {
      fired = 1;
    }
  }
  return d;
}

bool FaultInjector::nextReplayCrash(index_t rank) {
  if (rank < 0 || rank >= static_cast<index_t>(replayOpCount_.size())) {
    return false;
  }
  const std::uint64_t op = replayOpCount_[static_cast<std::size_t>(rank)]++;
  if (plan_.config().replayCrashRank != rank ||
      op < plan_.config().replayCrashAtOp) {
    return false;
  }
  // Always one-shot: the nested resurrection's own replay must finish.
  auto& fired = replayCrashFired_[static_cast<std::size_t>(rank)];
  if (fired != 0) {
    return false;
  }
  fired = 1;
  return true;
}

bool FaultInjector::nextCheckpointCorruption(index_t rank,
                                             std::uint64_t ordinal,
                                             std::uint64_t* selector) {
  if (rank < 0 || rank >= static_cast<index_t>(ckptCorruptFired_.size())) {
    return false;
  }
  if (plan_.config().ckptCorruptRank != rank ||
      ordinal < plan_.config().ckptCorruptOrdinal) {
    return false;
  }
  auto& fired = ckptCorruptFired_[static_cast<std::size_t>(rank)];
  if (fired != 0) {
    return false;
  }
  fired = 1;
  if (selector != nullptr) {
    // Plan-derived bit choice: deterministic from the seed alone, like
    // every other injected fault.
    std::uint64_t x = plan_.config().seed ^
                      (0x9E3779B97F4A7C15ULL * (ordinal + 1)) ^
                      (0xD1B54A32D192ED03ULL *
                       static_cast<std::uint64_t>(rank + 1));
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    *selector = x;
  }
  return true;
}

void FaultInjector::noteBitflip(const FlipRecord& record) {
  bitflips_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(flipMutex_);
  flips_.push_back(record);
}

std::vector<FlipRecord> FaultInjector::flipRecords() const {
  std::lock_guard<std::mutex> lock(flipMutex_);
  return flips_;
}

std::uint64_t FaultInjector::opsSeen(index_t rank) const {
  HPLMXP_REQUIRE(rank >= 0 && rank < static_cast<index_t>(opCount_.size()),
                 "rank out of range");
  return opCount_[static_cast<std::size_t>(rank)];
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.delays = delays_.load(std::memory_order_relaxed);
  s.transientFailures = transients_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.bitflips = bitflips_.load(std::memory_order_relaxed);
  s.stalls = stalls_.load(std::memory_order_relaxed);
  s.crashes = crashes_.load(std::memory_order_relaxed);
  s.checkpointCorruptions =
      ckptCorruptions_.load(std::memory_order_relaxed);
  s.partitionDrops = partitionDrops_.load(std::memory_order_relaxed);
  return s;
}

FaultConfig faultScenario(const std::string& name, std::uint64_t seed,
                          index_t worldSize) {
  FaultConfig cfg;
  cfg.seed = seed;
  if (name == "none") {
    return cfg;
  }
  if (name == "delay") {
    cfg.delayProbability = 0.05;
    cfg.delayMicros = 300;
    return cfg;
  }
  if (name == "transient") {
    cfg.transientSendProbability = 0.15;
    return cfg;
  }
  if (name == "sdc") {
    cfg.bitflipProbability = 0.01;
    cfg.bitflipMinBytes = 256;  // target bulk panel traffic, not control
    return cfg;
  }
  if (name == "sdc32") {
    cfg.bitflipProbability = 0.01;
    cfg.bitflipMinBytes = 256;
    cfg.flipFp32Words = true;  // corrupt FP32 diag/tile traffic instead
    return cfg;
  }
  if (name == "stall") {
    cfg.stallRank = worldSize > 1 ? 1 : 0;
    cfg.stallEveryOps = 4;
    cfg.stallMicros = 20000;
    return cfg;
  }
  if (name == "crash") {
    cfg.crashRank = worldSize - 1;
    cfg.crashAtOp = 64;
    return cfg;
  }
  if (name == "multicrash") {
    // Two nodes lost in the same run, on distinct ranks at staggered ops.
    cfg.crashRank = worldSize - 1;
    cfg.crashAtOp = 64;
    cfg.crashRank2 = worldSize > 2 ? 1 : 0;
    cfg.crashAtOp2 = 40;
    return cfg;
  }
  if (name == "partition") {
    // Split the grid down the middle for a window of ops: both halves stay
    // alive and compute, but cross-half traffic vanishes. Surfaces as comm
    // timeouts on both sides — the canonical gray failure.
    cfg.partitionBoundary = worldSize > 1 ? worldSize / 2 : 1;
    cfg.partitionAtOp = 32;
    cfg.partitionOps = 64;
    return cfg;
  }
  if (name == "ckptcorrupt") {
    // A lost node whose newest stored checkpoint generation is also
    // corrupted: recovery must detect the CRC mismatch and fall back.
    cfg.crashRank = worldSize - 1;
    cfg.crashAtOp = 64;
    cfg.ckptCorruptRank = worldSize - 1;
    cfg.ckptCorruptOrdinal = 0;
    return cfg;
  }
  HPLMXP_REQUIRE(false, ("unknown fault scenario: " + name).c_str());
  return cfg;  // unreachable
}

std::vector<std::string> knownFaultScenarios() {
  return {"none",  "delay", "transient",  "sdc",         "sdc32",
          "stall", "crash", "multicrash", "ckptcorrupt", "partition"};
}

}  // namespace hplmxp::simmpi
