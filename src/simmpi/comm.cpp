#include "simmpi/comm.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <deque>
#include <optional>
#include <thread>

#include "simmpi/faults.h"

namespace hplmxp::simmpi {

namespace detail {

namespace {
constexpr Tag kBcastTag = -1;
constexpr Tag kReduceTag = -2;
constexpr Tag kIbcastBase = -1000;  // grows downward per ibcast call
}  // namespace

/// Per-destination mailbox: FIFO queues keyed by (source, tag).
struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::map<std::pair<index_t, Tag>, std::queue<std::vector<std::byte>>> slots;
};

/// One logged receive: enough to re-serve the payload during replay and to
/// assert that the re-execution asked for exactly the same message.
struct ReplayRecord {
  std::uint64_t commId = 0;
  index_t src = 0;
  Tag tag = 0;
  std::vector<std::byte> payload;
};

/// Replay-log slot of one world rank. Owned by that rank's thread: every
/// access happens on the rank's own comm ops (or while the run is joined),
/// so no synchronization is needed. counters.ibcastSeq is the live ibcast
/// ordinal store while the log is armed (it must rewind with the rest of
/// the counters, which CommState's own ibcastSeq cannot).
struct ReplayRank {
  ReplayCounters counters;
  bool replaying = false;
  ReplayCounters target;            // crash-time counters to catch up to
  std::uint64_t recvBase = 0;       // ordinal of records.front()
  std::deque<ReplayRecord> records;
  std::uint64_t logBytes = 0;
  std::uint64_t logPeakBytes = 0;
  std::uint64_t recvsReplayed = 0;
  std::uint64_t sendsSuppressed = 0;
  std::uint64_t barriersSkipped = 0;
};

/// Shared across a world and all its split children (like the fault
/// injector), indexed by boundThreadRank().
struct ReplayLog {
  explicit ReplayLog(index_t n) : ranks(static_cast<std::size_t>(n)) {}
  std::vector<ReplayRank> ranks;
};

/// State of one in-flight split() across all ranks of a comm.
struct SplitOp {
  std::vector<std::optional<std::pair<index_t, index_t>>> entries;
  index_t arrived = 0;
  bool built = false;
  std::map<index_t, Comm> results;  // old rank -> new comm
  index_t fetched = 0;
  std::condition_variable cv;
};

struct CommState {
  explicit CommState(index_t n) : size(n), boxes(n), splitEpoch(n, 0),
                                  ibcastSeq(n, 0) {
    static std::atomic<std::uint64_t> nextCommId{1};
    commId = nextCommId.fetch_add(1, std::memory_order_relaxed);
    for (auto& b : boxes) {
      b = std::make_unique<Mailbox>();
    }
  }

  index_t size;
  std::uint64_t commId = 0;  // process-unique; keys replay-log assertions
  std::vector<std::unique_ptr<Mailbox>> boxes;

  // Central sense-reversing barrier.
  std::mutex barrierMutex;
  std::condition_variable barrierCv;
  index_t barrierCount = 0;
  std::uint64_t barrierGen = 0;

  // split() coordination, keyed by per-rank epoch (all ranks call split in
  // the same order, so epoch k is the same logical split on every rank).
  std::mutex splitMutex;
  std::map<index_t, std::unique_ptr<SplitOp>> splits;
  std::vector<index_t> splitEpoch;

  // Per-rank ibcast ordinal; ordinals agree across ranks because
  // collectives are called in the same order on every rank.
  std::vector<index_t> ibcastSeq;

  // Robustness knobs, shared by every handle and inherited on split().
  std::chrono::milliseconds timeout{0};  // 0 = wait forever
  int sendMaxRetries = 3;
  std::chrono::microseconds sendBackoff{50};
  std::shared_ptr<FaultInjector> faults;
  std::shared_ptr<ReplayLog> replay;  // armed by enableReplayLog()
};

}  // namespace detail

using detail::CommState;

namespace {
std::atomic<const ClockSource*>& pollClockSlot() {
  static std::atomic<const ClockSource*> slot{nullptr};
  return slot;
}
}  // namespace

void setPollClockSource(const ClockSource* source) {
  pollClockSlot().store(source, std::memory_order_release);
}

const ClockSource& pollClockSource() {
  const ClockSource* source = pollClockSlot().load(std::memory_order_acquire);
  return source != nullptr ? *source : steadyClock();
}

CommTimeoutError::CommTimeoutError(std::string op, index_t rank,
                                   index_t peer, Tag tag,
                                   std::chrono::milliseconds timeout)
    : CommError("comm timeout: rank " + std::to_string(rank) + " " + op +
                (peer >= 0 ? " from rank " + std::to_string(peer) +
                                 " (tag " + std::to_string(tag) + ")"
                           : std::string{}) +
                " exceeded " + std::to_string(timeout.count()) +
                " ms — peer presumed lost"),
      op_(std::move(op)),
      rank_(rank),
      peer_(peer),
      tag_(tag) {}

index_t Comm::size() const {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  return state_->size;
}

void Comm::setTimeout(std::chrono::milliseconds timeout) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(timeout.count() >= 0, "timeout must be non-negative");
  state_->timeout = timeout;
}

std::chrono::milliseconds Comm::timeout() const {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  return state_->timeout;
}

void Comm::setSendRetry(int maxRetries, std::chrono::microseconds backoff) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(maxRetries >= 0 && backoff.count() >= 0,
                 "bad retry policy");
  state_->sendMaxRetries = maxRetries;
  state_->sendBackoff = backoff;
}

void Comm::setFaultInjector(std::shared_ptr<FaultInjector> injector) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  state_->faults = std::move(injector);
}

const std::shared_ptr<FaultInjector>& Comm::faultInjector() const {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  return state_->faults;
}

void Comm::enableReplayLog() {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  if (state_->replay == nullptr) {
    state_->replay = std::make_shared<detail::ReplayLog>(state_->size);
  }
}

bool Comm::replayLogEnabled() const {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  return state_->replay != nullptr;
}

namespace {
detail::ReplayRank& replayRankAt(const std::shared_ptr<detail::ReplayLog>& log,
                                 index_t worldRank) {
  HPLMXP_REQUIRE(log != nullptr, "replay log not enabled on this comm");
  HPLMXP_REQUIRE(
      worldRank >= 0 && worldRank < static_cast<index_t>(log->ranks.size()),
      "replay: world rank out of range");
  return log->ranks[static_cast<std::size_t>(worldRank)];
}
}  // namespace

ReplayCounters Comm::replayCounters(index_t worldRank) const {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  return replayRankAt(state_->replay, worldRank).counters;
}

void Comm::beginReplay(index_t worldRank, const ReplayCounters& resumeFrom) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  detail::ReplayRank& slot = replayRankAt(state_->replay, worldRank);
  HPLMXP_REQUIRE(resumeFrom.sends <= slot.counters.sends &&
                     resumeFrom.recvs <= slot.counters.recvs &&
                     resumeFrom.barriers <= slot.counters.barriers,
                 "beginReplay: resume point is ahead of the rank");
  HPLMXP_REQUIRE(resumeFrom.recvs >= slot.recvBase,
                 "beginReplay: replay log was trimmed past the checkpoint");
  if (!slot.replaying) {
    slot.target = slot.counters;
  }
  // Nested case (a crash arrived mid-replay): the counters rewind again
  // but the original target — where live traffic resumes — is preserved;
  // overwriting it with the mid-replay counters would flip the rank live
  // too early and double-deliver the remaining suppressed sends.
  slot.counters = resumeFrom;
  slot.replaying = !slot.counters.atSameOps(slot.target);
}

bool Comm::replaying(index_t worldRank) const {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  // The slot's flag is cleared lazily at the next op; report catch-up
  // eagerly so "just finished the last replayed op" reads as live.
  const detail::ReplayRank& slot = replayRankAt(state_->replay, worldRank);
  return slot.replaying && !slot.counters.atSameOps(slot.target);
}

void Comm::trimReplayLog(index_t worldRank, std::uint64_t keepFromRecv) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  detail::ReplayRank& slot = replayRankAt(state_->replay, worldRank);
  HPLMXP_REQUIRE(keepFromRecv <= slot.counters.recvs,
                 "trimReplayLog: cannot trim past the present");
  while (slot.recvBase < keepFromRecv && !slot.records.empty()) {
    slot.logBytes -= slot.records.front().payload.size();
    slot.records.pop_front();
    ++slot.recvBase;
  }
  // Monotonic: a floor below what was already trimmed must not rewind the
  // base (records before it are gone).
  slot.recvBase = std::max(slot.recvBase, keepFromRecv);
}

ReplayActivity Comm::replayActivity(index_t worldRank) const {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  const detail::ReplayRank& slot = replayRankAt(state_->replay, worldRank);
  ReplayActivity a;
  a.recvsReplayed = slot.recvsReplayed;
  a.sendsSuppressed = slot.sendsSuppressed;
  a.barriersSkipped = slot.barriersSkipped;
  a.logRecords = slot.records.size();
  a.logBytes = slot.logBytes;
  a.logPeakBytes = slot.logPeakBytes;
  return a;
}

void Comm::serveReplayedRecv(detail::ReplayRank& rep, index_t src, Tag tag,
                             void* data, std::size_t bytes) const {
  HPLMXP_REQUIRE(rep.counters.recvs < rep.target.recvs,
                 "replay overran its recv target");
  const std::uint64_t ord = rep.counters.recvs;
  HPLMXP_REQUIRE(ord >= rep.recvBase &&
                     ord - rep.recvBase < rep.records.size(),
                 "replay log is missing a logged recv");
  const detail::ReplayRecord& rec =
      rep.records[static_cast<std::size_t>(ord - rep.recvBase)];
  HPLMXP_REQUIRE(rec.commId == state_->commId && rec.src == src &&
                     rec.tag == tag && rec.payload.size() == bytes,
                 "replay diverged: re-executed recv does not match the log");
  if (bytes > 0) {
    std::memcpy(data, rec.payload.data(), bytes);
  }
  ++rep.counters.recvs;
  ++rep.recvsReplayed;
}

void Comm::logRecv(detail::ReplayRank& rep, index_t src, Tag tag,
                   std::vector<std::byte> payload) const {
  rep.logBytes += payload.size();
  rep.logPeakBytes = std::max(rep.logPeakBytes, rep.logBytes);
  rep.records.push_back(
      detail::ReplayRecord{state_->commId, src, tag, std::move(payload)});
  ++rep.counters.recvs;
}

detail::ReplayRank* Comm::replaySlot() const {
  const auto& log = state_->replay;
  if (log == nullptr) {
    return nullptr;
  }
  const index_t who = boundThreadRank();
  if (who < 0 || who >= static_cast<index_t>(log->ranks.size())) {
    return nullptr;
  }
  detail::ReplayRank* slot = &log->ranks[static_cast<std::size_t>(who)];
  if (slot->replaying && slot->counters.atSameOps(slot->target)) {
    // Caught up with the crash point: the next op executes live.
    slot->replaying = false;
  }
  return slot;
}

namespace {

void applyDecisionSleep(FaultInjector& inj, const FaultDecision& d) {
  if (d.delayMicros > 0) {
    if (d.delayMicros >= 1000) {
      inj.noteStall();
    } else {
      inj.noteDelay();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(d.delayMicros));
  }
}

[[noreturn]] void throwCrash(index_t rank) {
  throw InjectedCrashError("injected crash: rank " + std::to_string(rank) +
                           " reached its scheduled crash point");
}

}  // namespace

bool Comm::injectOnSend(index_t dest, Tag tag,
                        std::vector<std::byte>& payload) {
  FaultInjector& inj = *state_->faults;
  const index_t who = boundThreadRank();
  const FaultConfig& cfg = inj.plan().config();
  for (int attempt = 0;; ++attempt) {
    const FaultDecision d = inj.next(who);
    if (d.crash) {
      inj.noteCrash();
      throwCrash(who);
    }
    if (inj.plan().partitionedSend(who, dest, inj.opsSeen(who) - 1)) {
      // The partition swallows the message with no error on the sender:
      // from both halves' point of view the other side simply went quiet.
      // The *receiver* eventually surfaces it as a CommTimeoutError.
      inj.notePartitionDrop();
      return false;
    }
    applyDecisionSleep(inj, d);
    const std::size_t wordBytes = cfg.flipFp32Words ? 4 : 2;
    if (d.flipBit && payload.size() >= wordBytes &&
        payload.size() >= cfg.bitflipMinBytes) {
      // Flip the second-highest exponent bit of a plan-chosen word — bit
      // 14 of a 16-bit word (binary16) or bit 30 of a 32-bit word
      // (binary32) — so corrupted panel entries blow up into the
      // abnormal-magnitude range scanAbnormal detects (and ABFT corrects).
      const std::size_t words = payload.size() / wordBytes;
      const std::size_t w = static_cast<std::size_t>(
          d.flipSelector % static_cast<std::uint64_t>(words));
      const std::size_t byteOffset = wordBytes * w + (wordBytes - 1);
      payload[byteOffset] ^= std::byte{0x40};
      FlipRecord record;
      record.rank = who;
      record.opIndex = inj.opsSeen(who) - 1;  // the op next() just drew
      record.byteOffset = byteOffset;
      record.bit = 6;  // bit 6 of that byte == word bit 14 / 30
      record.payloadBytes = payload.size();
      inj.noteBitflip(record);
    }
    if (!d.transientSendFailure) {
      return true;
    }
    inj.noteTransient();
    if (attempt >= state_->sendMaxRetries) {
      throw CommSendError(
          "send from rank " + std::to_string(who) + " to rank " +
          std::to_string(dest) + " (tag " + std::to_string(tag) +
          ") failed after " + std::to_string(attempt + 1) + " attempts");
    }
    inj.noteRetry();
    std::this_thread::sleep_for(state_->sendBackoff * (1 << attempt));
  }
}

void Comm::injectOnOp(const char* what) {
  (void)what;
  FaultInjector& inj = *state_->faults;
  const index_t who = boundThreadRank();
  const FaultDecision d = inj.next(who);
  if (d.crash) {
    inj.noteCrash();
    throwCrash(who);
  }
  applyDecisionSleep(inj, d);
}

void Comm::injectOnReplayedOp() {
  if (state_->faults == nullptr || !state_->faults->armed()) {
    return;
  }
  FaultInjector& inj = *state_->faults;
  const index_t who = boundThreadRank();
  if (inj.nextReplayCrash(who)) {
    inj.noteCrash();
    throwCrash(who);  // before the op is counted, like a live crash
  }
}

void Comm::sendBytes(index_t dest, Tag tag, const void* data,
                     std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(dest >= 0 && dest < state_->size, "send: bad destination");
  detail::ReplayRank* rep = replaySlot();
  if (rep != nullptr && rep->replaying) {
    injectOnReplayedOp();
    // The pre-crash execution already delivered this send (buffered eager
    // transport); re-sending would double messages at the peers. Swallow.
    HPLMXP_REQUIRE(rep->counters.sends < rep->target.sends,
                   "replay overran its send target");
    ++rep->counters.sends;
    ++rep->sendsSuppressed;
    return;
  }
  auto& box = *state_->boxes[static_cast<std::size_t>(dest)];
  std::vector<std::byte> payload(bytes);
  if (bytes > 0) {
    std::memcpy(payload.data(), data, bytes);
  }
  if (state_->faults != nullptr && state_->faults->armed()) {
    // A crash throws before delivery (the op stays uncounted); a
    // partition drop returns false and the message never arrives.
    if (!injectOnSend(dest, tag, payload)) {
      if (rep != nullptr) {
        ++rep->counters.sends;  // the op happened, its delivery didn't
      }
      return;
    }
  }
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.slots[{rank_, tag}].push(std::move(payload));
  }
  box.cv.notify_all();
  if (rep != nullptr) {
    ++rep->counters.sends;
  }
}

void Comm::recvBytes(index_t src, Tag tag, void* data, std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(src >= 0 && src < state_->size, "recv: bad source");
  detail::ReplayRank* rep = replaySlot();
  if (rep != nullptr && rep->replaying) {
    injectOnReplayedOp();
    serveReplayedRecv(*rep, src, tag, data, bytes);
    return;
  }
  if (state_->faults != nullptr && state_->faults->armed()) {
    injectOnOp("recv");
  }
  auto& box = *state_->boxes[static_cast<std::size_t>(rank_)];
  std::vector<std::byte> payload;
  {
    std::unique_lock<std::mutex> lock(box.mutex);
    const auto key = std::make_pair(src, tag);
    auto ready = [&] {
      auto it = box.slots.find(key);
      return it != box.slots.end() && !it->second.empty();
    };
    if (state_->timeout.count() == 0) {
      box.cv.wait(lock, ready);
    } else if (!box.cv.wait_for(lock, state_->timeout, ready)) {
      throw CommTimeoutError("recv", rank_, src, tag, state_->timeout);
    }
    auto it = box.slots.find(key);
    payload = std::move(it->second.front());
    it->second.pop();
    if (it->second.empty()) {
      box.slots.erase(it);
    }
  }
  HPLMXP_REQUIRE(payload.size() == bytes,
                 "recv: message size does not match posted buffer");
  if (bytes > 0) {
    std::memcpy(data, payload.data(), bytes);
  }
  if (rep != nullptr) {
    logRecv(*rep, src, tag, std::move(payload));
  }
}

bool Comm::tryRecvBytes(index_t src, Tag tag, void* data,
                        std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(src >= 0 && src < state_->size, "recv: bad source");
  detail::ReplayRank* rep = replaySlot();
  if (rep != nullptr && rep->replaying) {
    injectOnReplayedOp();
    // The original execution completed this recv (it is in the log), so
    // during replay it is always "already arrived".
    serveReplayedRecv(*rep, src, tag, data, bytes);
    return true;
  }
  auto& box = *state_->boxes[static_cast<std::size_t>(rank_)];
  std::vector<std::byte> payload;
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    auto it = box.slots.find(std::make_pair(src, tag));
    if (it == box.slots.end() || it->second.empty()) {
      return false;
    }
    payload = std::move(it->second.front());
    it->second.pop();
    if (it->second.empty()) {
      box.slots.erase(it);
    }
  }
  HPLMXP_REQUIRE(payload.size() == bytes,
                 "recv: message size does not match posted buffer");
  if (bytes > 0) {
    std::memcpy(data, payload.data(), bytes);
  }
  if (rep != nullptr) {
    logRecv(*rep, src, tag, std::move(payload));
  }
  return true;
}

void Comm::barrier() {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  auto& st = *state_;
  detail::ReplayRank* rep = replaySlot();
  if (rep != nullptr && rep->replaying) {
    injectOnReplayedOp();
    // The peers already passed this barrier before the crash; re-entering
    // would desynchronize the central count. Skip.
    HPLMXP_REQUIRE(rep->counters.barriers < rep->target.barriers,
                   "replay overran its barrier target");
    ++rep->counters.barriers;
    ++rep->barriersSkipped;
    return;
  }
  if (st.faults != nullptr && st.faults->armed()) {
    injectOnOp("barrier");
  }
  std::unique_lock<std::mutex> lock(st.barrierMutex);
  const std::uint64_t gen = st.barrierGen;
  if (++st.barrierCount == st.size) {
    st.barrierCount = 0;
    ++st.barrierGen;
    st.barrierCv.notify_all();
  } else {
    auto released = [&] { return st.barrierGen != gen; };
    if (st.timeout.count() == 0) {
      st.barrierCv.wait(lock, released);
    } else if (!st.barrierCv.wait_for(lock, st.timeout, released)) {
      throw CommTimeoutError("barrier", rank_, -1, 0, st.timeout);
    }
  }
  if (rep != nullptr) {
    ++rep->counters.barriers;
  }
}

void Comm::bcastBytes(index_t root, void* data, std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  const index_t p = state_->size;
  HPLMXP_REQUIRE(root >= 0 && root < p, "bcast: bad root");
  if (p == 1) {
    return;
  }
  // Binomial tree on root-relative ranks.
  const index_t rel = (rank_ - root + p) % p;
  if (rel != 0) {
    const index_t parentRel = (rel - 1) / 2;
    const index_t parent = (parentRel + root) % p;
    recvBytes(parent, detail::kBcastTag, data, bytes);
  }
  for (index_t childRel : {2 * rel + 1, 2 * rel + 2}) {
    if (childRel < p) {
      sendBytes((childRel + root) % p, detail::kBcastTag, data, bytes);
    }
  }
}

Request Comm::ibcastBytes(index_t root, void* data, std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  const index_t p = state_->size;
  HPLMXP_REQUIRE(root >= 0 && root < p, "ibcast: bad root");
  // With the replay log armed the ibcast ordinal lives in the rank's
  // replay slot (keyed by comm), so a checkpoint rewind restores it and
  // replayed ibcasts re-derive the tags the original execution used.
  detail::ReplayRank* rep = replaySlot();
  const index_t seq =
      rep != nullptr ? rep->counters.ibcastSeq[state_->commId]++
                     : state_->ibcastSeq[static_cast<std::size_t>(rank_)]++;
  const Tag tag = detail::kIbcastBase - seq;
  if (p == 1) {
    return Request{};
  }
  if (rank_ == root) {
    // Eager star-send: with buffered transport the root completes at once
    // (this mirrors an IBcast whose progress happens "in the background").
    for (index_t r = 0; r < p; ++r) {
      if (r != root) {
        sendBytes(r, tag, data, bytes);
      }
    }
    return Request{};
  }
  Comm self = *this;
  return Request::pending([self, root, tag, data, bytes](
                              bool blocking) mutable {
    if (blocking) {
      self.recvBytes(root, tag, data, bytes);
      return true;
    }
    return self.tryRecvBytes(root, tag, data, bytes);
  });
}

template <typename T>
void Comm::allreduceSumT(T* data, index_t count) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(count >= 0, "allreduce: bad count");
  const index_t p = state_->size;
  if (p == 1) {
    return;
  }
  // Binary-tree reduce to rank 0, then tree bcast.
  std::vector<T> scratch(static_cast<std::size_t>(count));
  for (index_t child : {2 * rank_ + 1, 2 * rank_ + 2}) {
    if (child < p) {
      recvBytes(child, detail::kReduceTag, scratch.data(),
                scratch.size() * sizeof(T));
      for (index_t i = 0; i < count; ++i) {
        data[i] += scratch[static_cast<std::size_t>(i)];
      }
    }
  }
  if (rank_ != 0) {
    sendBytes((rank_ - 1) / 2, detail::kReduceTag, data,
              static_cast<std::size_t>(count) * sizeof(T));
  }
  bcastBytes(0, data, static_cast<std::size_t>(count) * sizeof(T));
}

void Comm::allreduceSum(double* data, index_t count) {
  allreduceSumT(data, count);
}
void Comm::allreduceSum(float* data, index_t count) {
  allreduceSumT(data, count);
}

double Comm::allreduceMax(double value) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  const index_t p = state_->size;
  if (p == 1) {
    return value;
  }
  double scratch = 0.0;
  for (index_t child : {2 * rank_ + 1, 2 * rank_ + 2}) {
    if (child < p) {
      recvBytes(child, detail::kReduceTag, &scratch, sizeof(double));
      value = std::max(value, scratch);
    }
  }
  if (rank_ != 0) {
    sendBytes((rank_ - 1) / 2, detail::kReduceTag, &value, sizeof(double));
  }
  bcastBytes(0, &value, sizeof(double));
  return value;
}

Comm::MaxLoc Comm::allreduceMaxLoc(double value, index_t where) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  const index_t p = state_->size;
  MaxLoc mine{value, where};
  if (p == 1) {
    return mine;
  }
  auto better = [](const MaxLoc& a, const MaxLoc& b) {
    if (a.value != b.value) {
      return a.value > b.value;
    }
    return a.where < b.where;  // deterministic tie-break
  };
  MaxLoc incoming;
  for (index_t child : {2 * rank_ + 1, 2 * rank_ + 2}) {
    if (child < p) {
      recvBytes(child, detail::kReduceTag, &incoming, sizeof(MaxLoc));
      if (better(incoming, mine)) {
        mine = incoming;
      }
    }
  }
  if (rank_ != 0) {
    sendBytes((rank_ - 1) / 2, detail::kReduceTag, &mine, sizeof(MaxLoc));
  }
  bcastBytes(0, &mine, sizeof(MaxLoc));
  return mine;
}

void Comm::gatherBytes(index_t root, const void* sendBuf, void* recvBuf,
                       std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  const index_t p = state_->size;
  HPLMXP_REQUIRE(root >= 0 && root < p, "gather: bad root");
  if (rank_ == root) {
    HPLMXP_REQUIRE(recvBuf != nullptr || bytes == 0,
                   "gather: root needs a receive buffer");
    auto* out = static_cast<std::byte*>(recvBuf);
    if (bytes > 0) {
      std::memcpy(out + static_cast<std::size_t>(rank_) * bytes, sendBuf,
                  bytes);
    }
    for (index_t r = 0; r < p; ++r) {
      if (r != root) {
        recvBytes(r, detail::kReduceTag,
                  out + static_cast<std::size_t>(r) * bytes, bytes);
      }
    }
  } else {
    sendBytes(root, detail::kReduceTag, sendBuf, bytes);
  }
}

void Comm::allgatherBytes(const void* sendBuf, void* recvBuf,
                          std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  gatherBytes(0, sendBuf, recvBuf, bytes);
  bcastBytes(0, recvBuf, bytes * static_cast<std::size_t>(state_->size));
}

Comm Comm::split(index_t color, index_t key) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  auto& st = *state_;
  const index_t epoch = st.splitEpoch[static_cast<std::size_t>(rank_)]++;

  std::unique_lock<std::mutex> lock(st.splitMutex);
  auto& opPtr = st.splits[epoch];
  if (!opPtr) {
    opPtr = std::make_unique<detail::SplitOp>();
    opPtr->entries.resize(static_cast<std::size_t>(st.size));
  }
  detail::SplitOp& op = *opPtr;
  op.entries[static_cast<std::size_t>(rank_)] = {color, key};
  ++op.arrived;

  if (op.arrived == st.size) {
    // Last arriver builds every subgroup's communicator.
    std::map<index_t, std::vector<std::pair<index_t, index_t>>> groups;
    for (index_t r = 0; r < st.size; ++r) {
      const auto& e = op.entries[static_cast<std::size_t>(r)];
      groups[e->first].push_back({e->second, r});  // (key, old rank)
    }
    for (auto& [groupColor, members] : groups) {
      std::sort(members.begin(), members.end());
      auto newState =
          std::make_shared<CommState>(static_cast<index_t>(members.size()));
      // Children inherit the parent's robustness configuration.
      newState->timeout = st.timeout;
      newState->sendMaxRetries = st.sendMaxRetries;
      newState->sendBackoff = st.sendBackoff;
      newState->faults = st.faults;
      newState->replay = st.replay;
      for (index_t newRank = 0;
           newRank < static_cast<index_t>(members.size()); ++newRank) {
        const index_t oldRank =
            members[static_cast<std::size_t>(newRank)].second;
        op.results.emplace(oldRank, Comm(newState, newRank));
      }
    }
    op.built = true;
    op.cv.notify_all();
  } else {
    auto built = [&] { return op.built; };
    if (st.timeout.count() == 0) {
      op.cv.wait(lock, built);
    } else if (!op.cv.wait_for(lock, st.timeout, built)) {
      throw CommTimeoutError("split", rank_, -1, 0, st.timeout);
    }
  }

  Comm result = op.results.at(rank_);
  if (++op.fetched == st.size) {
    st.splits.erase(epoch);
  }
  return result;
}

std::vector<Comm> Comm::makeWorld(index_t size) {
  HPLMXP_REQUIRE(size > 0, "world size must be positive");
  auto state = std::make_shared<CommState>(size);
  std::vector<Comm> world;
  world.reserve(static_cast<std::size_t>(size));
  for (index_t r = 0; r < size; ++r) {
    world.push_back(Comm(state, r));
  }
  return world;
}

}  // namespace hplmxp::simmpi
