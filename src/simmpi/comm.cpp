#include "simmpi/comm.h"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <thread>

#include "simmpi/faults.h"

namespace hplmxp::simmpi {

namespace detail {

namespace {
constexpr Tag kBcastTag = -1;
constexpr Tag kReduceTag = -2;
constexpr Tag kIbcastBase = -1000;  // grows downward per ibcast call
}  // namespace

/// Per-destination mailbox: FIFO queues keyed by (source, tag).
struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::map<std::pair<index_t, Tag>, std::queue<std::vector<std::byte>>> slots;
};

/// State of one in-flight split() across all ranks of a comm.
struct SplitOp {
  std::vector<std::optional<std::pair<index_t, index_t>>> entries;
  index_t arrived = 0;
  bool built = false;
  std::map<index_t, Comm> results;  // old rank -> new comm
  index_t fetched = 0;
  std::condition_variable cv;
};

struct CommState {
  explicit CommState(index_t n) : size(n), boxes(n), splitEpoch(n, 0),
                                  ibcastSeq(n, 0) {
    for (auto& b : boxes) {
      b = std::make_unique<Mailbox>();
    }
  }

  index_t size;
  std::vector<std::unique_ptr<Mailbox>> boxes;

  // Central sense-reversing barrier.
  std::mutex barrierMutex;
  std::condition_variable barrierCv;
  index_t barrierCount = 0;
  std::uint64_t barrierGen = 0;

  // split() coordination, keyed by per-rank epoch (all ranks call split in
  // the same order, so epoch k is the same logical split on every rank).
  std::mutex splitMutex;
  std::map<index_t, std::unique_ptr<SplitOp>> splits;
  std::vector<index_t> splitEpoch;

  // Per-rank ibcast ordinal; ordinals agree across ranks because
  // collectives are called in the same order on every rank.
  std::vector<index_t> ibcastSeq;

  // Robustness knobs, shared by every handle and inherited on split().
  std::chrono::milliseconds timeout{0};  // 0 = wait forever
  int sendMaxRetries = 3;
  std::chrono::microseconds sendBackoff{50};
  std::shared_ptr<FaultInjector> faults;
};

}  // namespace detail

using detail::CommState;

CommTimeoutError::CommTimeoutError(std::string op, index_t rank,
                                   index_t peer, Tag tag,
                                   std::chrono::milliseconds timeout)
    : CommError("comm timeout: rank " + std::to_string(rank) + " " + op +
                (peer >= 0 ? " from rank " + std::to_string(peer) +
                                 " (tag " + std::to_string(tag) + ")"
                           : std::string{}) +
                " exceeded " + std::to_string(timeout.count()) +
                " ms — peer presumed lost"),
      op_(std::move(op)),
      rank_(rank),
      peer_(peer),
      tag_(tag) {}

index_t Comm::size() const {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  return state_->size;
}

void Comm::setTimeout(std::chrono::milliseconds timeout) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(timeout.count() >= 0, "timeout must be non-negative");
  state_->timeout = timeout;
}

std::chrono::milliseconds Comm::timeout() const {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  return state_->timeout;
}

void Comm::setSendRetry(int maxRetries, std::chrono::microseconds backoff) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(maxRetries >= 0 && backoff.count() >= 0,
                 "bad retry policy");
  state_->sendMaxRetries = maxRetries;
  state_->sendBackoff = backoff;
}

void Comm::setFaultInjector(std::shared_ptr<FaultInjector> injector) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  state_->faults = std::move(injector);
}

const std::shared_ptr<FaultInjector>& Comm::faultInjector() const {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  return state_->faults;
}

namespace {

void applyDecisionSleep(FaultInjector& inj, const FaultDecision& d) {
  if (d.delayMicros > 0) {
    if (d.delayMicros >= 1000) {
      inj.noteStall();
    } else {
      inj.noteDelay();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(d.delayMicros));
  }
}

[[noreturn]] void throwCrash(index_t rank) {
  throw InjectedCrashError("injected crash: rank " + std::to_string(rank) +
                           " reached its scheduled crash point");
}

}  // namespace

void Comm::injectOnSend(index_t dest, Tag tag,
                        std::vector<std::byte>& payload) {
  FaultInjector& inj = *state_->faults;
  const index_t who = boundThreadRank();
  const FaultConfig& cfg = inj.plan().config();
  for (int attempt = 0;; ++attempt) {
    const FaultDecision d = inj.next(who);
    if (d.crash) {
      inj.noteCrash();
      throwCrash(who);
    }
    applyDecisionSleep(inj, d);
    if (d.flipBit && payload.size() >= 2 &&
        payload.size() >= cfg.bitflipMinBytes) {
      // Flip bit 14 of a plan-chosen 16-bit word: the second-highest
      // exponent bit for binary16 payloads, so corrupted panel entries
      // blow up into the abnormal-magnitude range scanAbnormal detects.
      const std::size_t words = payload.size() / 2;
      const std::size_t w = static_cast<std::size_t>(
          d.flipSelector % static_cast<std::uint64_t>(words));
      payload[2 * w + 1] ^= std::byte{0x40};
      inj.noteBitflip();
    }
    if (!d.transientSendFailure) {
      return;
    }
    inj.noteTransient();
    if (attempt >= state_->sendMaxRetries) {
      throw CommSendError(
          "send from rank " + std::to_string(who) + " to rank " +
          std::to_string(dest) + " (tag " + std::to_string(tag) +
          ") failed after " + std::to_string(attempt + 1) + " attempts");
    }
    inj.noteRetry();
    std::this_thread::sleep_for(state_->sendBackoff * (1 << attempt));
  }
}

void Comm::injectOnOp(const char* what) {
  (void)what;
  FaultInjector& inj = *state_->faults;
  const index_t who = boundThreadRank();
  const FaultDecision d = inj.next(who);
  if (d.crash) {
    inj.noteCrash();
    throwCrash(who);
  }
  applyDecisionSleep(inj, d);
}

void Comm::sendBytes(index_t dest, Tag tag, const void* data,
                     std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(dest >= 0 && dest < state_->size, "send: bad destination");
  auto& box = *state_->boxes[static_cast<std::size_t>(dest)];
  std::vector<std::byte> payload(bytes);
  if (bytes > 0) {
    std::memcpy(payload.data(), data, bytes);
  }
  if (state_->faults != nullptr && state_->faults->armed()) {
    injectOnSend(dest, tag, payload);
  }
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.slots[{rank_, tag}].push(std::move(payload));
  }
  box.cv.notify_all();
}

void Comm::recvBytes(index_t src, Tag tag, void* data, std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(src >= 0 && src < state_->size, "recv: bad source");
  if (state_->faults != nullptr && state_->faults->armed()) {
    injectOnOp("recv");
  }
  auto& box = *state_->boxes[static_cast<std::size_t>(rank_)];
  std::vector<std::byte> payload;
  {
    std::unique_lock<std::mutex> lock(box.mutex);
    const auto key = std::make_pair(src, tag);
    auto ready = [&] {
      auto it = box.slots.find(key);
      return it != box.slots.end() && !it->second.empty();
    };
    if (state_->timeout.count() == 0) {
      box.cv.wait(lock, ready);
    } else if (!box.cv.wait_for(lock, state_->timeout, ready)) {
      throw CommTimeoutError("recv", rank_, src, tag, state_->timeout);
    }
    auto it = box.slots.find(key);
    payload = std::move(it->second.front());
    it->second.pop();
    if (it->second.empty()) {
      box.slots.erase(it);
    }
  }
  HPLMXP_REQUIRE(payload.size() == bytes,
                 "recv: message size does not match posted buffer");
  if (bytes > 0) {
    std::memcpy(data, payload.data(), bytes);
  }
}

bool Comm::tryRecvBytes(index_t src, Tag tag, void* data,
                        std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(src >= 0 && src < state_->size, "recv: bad source");
  auto& box = *state_->boxes[static_cast<std::size_t>(rank_)];
  std::vector<std::byte> payload;
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    auto it = box.slots.find(std::make_pair(src, tag));
    if (it == box.slots.end() || it->second.empty()) {
      return false;
    }
    payload = std::move(it->second.front());
    it->second.pop();
    if (it->second.empty()) {
      box.slots.erase(it);
    }
  }
  HPLMXP_REQUIRE(payload.size() == bytes,
                 "recv: message size does not match posted buffer");
  if (bytes > 0) {
    std::memcpy(data, payload.data(), bytes);
  }
  return true;
}

void Comm::barrier() {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  auto& st = *state_;
  if (st.faults != nullptr && st.faults->armed()) {
    injectOnOp("barrier");
  }
  std::unique_lock<std::mutex> lock(st.barrierMutex);
  const std::uint64_t gen = st.barrierGen;
  if (++st.barrierCount == st.size) {
    st.barrierCount = 0;
    ++st.barrierGen;
    st.barrierCv.notify_all();
  } else {
    auto released = [&] { return st.barrierGen != gen; };
    if (st.timeout.count() == 0) {
      st.barrierCv.wait(lock, released);
    } else if (!st.barrierCv.wait_for(lock, st.timeout, released)) {
      throw CommTimeoutError("barrier", rank_, -1, 0, st.timeout);
    }
  }
}

void Comm::bcastBytes(index_t root, void* data, std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  const index_t p = state_->size;
  HPLMXP_REQUIRE(root >= 0 && root < p, "bcast: bad root");
  if (p == 1) {
    return;
  }
  // Binomial tree on root-relative ranks.
  const index_t rel = (rank_ - root + p) % p;
  if (rel != 0) {
    const index_t parentRel = (rel - 1) / 2;
    const index_t parent = (parentRel + root) % p;
    recvBytes(parent, detail::kBcastTag, data, bytes);
  }
  for (index_t childRel : {2 * rel + 1, 2 * rel + 2}) {
    if (childRel < p) {
      sendBytes((childRel + root) % p, detail::kBcastTag, data, bytes);
    }
  }
}

Request Comm::ibcastBytes(index_t root, void* data, std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  const index_t p = state_->size;
  HPLMXP_REQUIRE(root >= 0 && root < p, "ibcast: bad root");
  const index_t seq = state_->ibcastSeq[static_cast<std::size_t>(rank_)]++;
  const Tag tag = detail::kIbcastBase - seq;
  if (p == 1) {
    return Request{};
  }
  if (rank_ == root) {
    // Eager star-send: with buffered transport the root completes at once
    // (this mirrors an IBcast whose progress happens "in the background").
    for (index_t r = 0; r < p; ++r) {
      if (r != root) {
        sendBytes(r, tag, data, bytes);
      }
    }
    return Request{};
  }
  Comm self = *this;
  return Request::pending([self, root, tag, data, bytes](
                              bool blocking) mutable {
    if (blocking) {
      self.recvBytes(root, tag, data, bytes);
      return true;
    }
    return self.tryRecvBytes(root, tag, data, bytes);
  });
}

template <typename T>
void Comm::allreduceSumT(T* data, index_t count) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  HPLMXP_REQUIRE(count >= 0, "allreduce: bad count");
  const index_t p = state_->size;
  if (p == 1) {
    return;
  }
  // Binary-tree reduce to rank 0, then tree bcast.
  std::vector<T> scratch(static_cast<std::size_t>(count));
  for (index_t child : {2 * rank_ + 1, 2 * rank_ + 2}) {
    if (child < p) {
      recvBytes(child, detail::kReduceTag, scratch.data(),
                scratch.size() * sizeof(T));
      for (index_t i = 0; i < count; ++i) {
        data[i] += scratch[static_cast<std::size_t>(i)];
      }
    }
  }
  if (rank_ != 0) {
    sendBytes((rank_ - 1) / 2, detail::kReduceTag, data,
              static_cast<std::size_t>(count) * sizeof(T));
  }
  bcastBytes(0, data, static_cast<std::size_t>(count) * sizeof(T));
}

void Comm::allreduceSum(double* data, index_t count) {
  allreduceSumT(data, count);
}
void Comm::allreduceSum(float* data, index_t count) {
  allreduceSumT(data, count);
}

double Comm::allreduceMax(double value) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  const index_t p = state_->size;
  if (p == 1) {
    return value;
  }
  double scratch = 0.0;
  for (index_t child : {2 * rank_ + 1, 2 * rank_ + 2}) {
    if (child < p) {
      recvBytes(child, detail::kReduceTag, &scratch, sizeof(double));
      value = std::max(value, scratch);
    }
  }
  if (rank_ != 0) {
    sendBytes((rank_ - 1) / 2, detail::kReduceTag, &value, sizeof(double));
  }
  bcastBytes(0, &value, sizeof(double));
  return value;
}

Comm::MaxLoc Comm::allreduceMaxLoc(double value, index_t where) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  const index_t p = state_->size;
  MaxLoc mine{value, where};
  if (p == 1) {
    return mine;
  }
  auto better = [](const MaxLoc& a, const MaxLoc& b) {
    if (a.value != b.value) {
      return a.value > b.value;
    }
    return a.where < b.where;  // deterministic tie-break
  };
  MaxLoc incoming;
  for (index_t child : {2 * rank_ + 1, 2 * rank_ + 2}) {
    if (child < p) {
      recvBytes(child, detail::kReduceTag, &incoming, sizeof(MaxLoc));
      if (better(incoming, mine)) {
        mine = incoming;
      }
    }
  }
  if (rank_ != 0) {
    sendBytes((rank_ - 1) / 2, detail::kReduceTag, &mine, sizeof(MaxLoc));
  }
  bcastBytes(0, &mine, sizeof(MaxLoc));
  return mine;
}

void Comm::gatherBytes(index_t root, const void* sendBuf, void* recvBuf,
                       std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  const index_t p = state_->size;
  HPLMXP_REQUIRE(root >= 0 && root < p, "gather: bad root");
  if (rank_ == root) {
    HPLMXP_REQUIRE(recvBuf != nullptr || bytes == 0,
                   "gather: root needs a receive buffer");
    auto* out = static_cast<std::byte*>(recvBuf);
    if (bytes > 0) {
      std::memcpy(out + static_cast<std::size_t>(rank_) * bytes, sendBuf,
                  bytes);
    }
    for (index_t r = 0; r < p; ++r) {
      if (r != root) {
        recvBytes(r, detail::kReduceTag,
                  out + static_cast<std::size_t>(r) * bytes, bytes);
      }
    }
  } else {
    sendBytes(root, detail::kReduceTag, sendBuf, bytes);
  }
}

void Comm::allgatherBytes(const void* sendBuf, void* recvBuf,
                          std::size_t bytes) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  gatherBytes(0, sendBuf, recvBuf, bytes);
  bcastBytes(0, recvBuf, bytes * static_cast<std::size_t>(state_->size));
}

Comm Comm::split(index_t color, index_t key) {
  HPLMXP_REQUIRE(state_ != nullptr, "null communicator");
  auto& st = *state_;
  const index_t epoch = st.splitEpoch[static_cast<std::size_t>(rank_)]++;

  std::unique_lock<std::mutex> lock(st.splitMutex);
  auto& opPtr = st.splits[epoch];
  if (!opPtr) {
    opPtr = std::make_unique<detail::SplitOp>();
    opPtr->entries.resize(static_cast<std::size_t>(st.size));
  }
  detail::SplitOp& op = *opPtr;
  op.entries[static_cast<std::size_t>(rank_)] = {color, key};
  ++op.arrived;

  if (op.arrived == st.size) {
    // Last arriver builds every subgroup's communicator.
    std::map<index_t, std::vector<std::pair<index_t, index_t>>> groups;
    for (index_t r = 0; r < st.size; ++r) {
      const auto& e = op.entries[static_cast<std::size_t>(r)];
      groups[e->first].push_back({e->second, r});  // (key, old rank)
    }
    for (auto& [groupColor, members] : groups) {
      std::sort(members.begin(), members.end());
      auto newState =
          std::make_shared<CommState>(static_cast<index_t>(members.size()));
      // Children inherit the parent's robustness configuration.
      newState->timeout = st.timeout;
      newState->sendMaxRetries = st.sendMaxRetries;
      newState->sendBackoff = st.sendBackoff;
      newState->faults = st.faults;
      for (index_t newRank = 0;
           newRank < static_cast<index_t>(members.size()); ++newRank) {
        const index_t oldRank =
            members[static_cast<std::size_t>(newRank)].second;
        op.results.emplace(oldRank, Comm(newState, newRank));
      }
    }
    op.built = true;
    op.cv.notify_all();
  } else {
    auto built = [&] { return op.built; };
    if (st.timeout.count() == 0) {
      op.cv.wait(lock, built);
    } else if (!op.cv.wait_for(lock, st.timeout, built)) {
      throw CommTimeoutError("split", rank_, -1, 0, st.timeout);
    }
  }

  Comm result = op.results.at(rank_);
  if (++op.fetched == st.size) {
    st.splits.erase(epoch);
  }
  return result;
}

std::vector<Comm> Comm::makeWorld(index_t size) {
  HPLMXP_REQUIRE(size > 0, "world size must be positive");
  auto state = std::make_shared<CommState>(size);
  std::vector<Comm> world;
  world.reserve(static_cast<std::size_t>(size));
  for (index_t r = 0; r < size; ++r) {
    world.push_back(Comm(state, r));
  }
  return world;
}

}  // namespace hplmxp::simmpi
