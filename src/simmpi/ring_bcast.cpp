#include "simmpi/ring_bcast.h"

#include <algorithm>

namespace hplmxp::simmpi {

namespace {

constexpr Tag kRingTag = -20000;
constexpr Tag kLeafTag = -20001;

/// Iterates the message as pipeline segments.
template <typename Fn>
void forEachSegment(std::size_t bytes, std::size_t segmentBytes, Fn&& fn) {
  if (bytes == 0) {
    fn(std::size_t{0}, std::size_t{0});
    return;
  }
  for (std::size_t off = 0; off < bytes; off += segmentBytes) {
    fn(off, std::min(segmentBytes, bytes - off));
  }
}

/// Pipelined chain root -> chain[0] -> chain[1] -> ... -> chain.back().
/// `myPos` is the caller's position in the chain, or -1 if it is the root.
/// Rank numbers are absolute.
void runChain(Comm& comm, index_t root, const std::vector<index_t>& chain,
              index_t myPos, std::byte* data, std::size_t bytes,
              std::size_t segmentBytes) {
  if (chain.empty()) {
    return;
  }
  forEachSegment(bytes, segmentBytes, [&](std::size_t off, std::size_t len) {
    if (myPos < 0) {
      comm.sendBytes(chain.front(), kRingTag, data + off, len);
      return;
    }
    const index_t upstream =
        myPos == 0 ? root : chain[static_cast<std::size_t>(myPos - 1)];
    comm.recvBytes(upstream, kRingTag, data + off, len);
    if (myPos + 1 < static_cast<index_t>(chain.size())) {
      comm.sendBytes(chain[static_cast<std::size_t>(myPos + 1)], kRingTag,
                     data + off, len);
    }
  });
}

/// Builds the chain of root-relative ranks [first, last] mapped to absolute
/// ranks, ascending (step=+1) or descending (step=-1).
std::vector<index_t> buildChain(index_t p, index_t root, index_t first,
                                index_t last, index_t step) {
  std::vector<index_t> chain;
  for (index_t rel = first; step > 0 ? rel <= last : rel >= last;
       rel += step) {
    chain.push_back((rel + root) % p);
  }
  return chain;
}

index_t posIn(const std::vector<index_t>& chain, index_t rank) {
  for (index_t i = 0; i < static_cast<index_t>(chain.size()); ++i) {
    if (chain[static_cast<std::size_t>(i)] == rank) {
      return i;
    }
  }
  return -2;  // not a member
}

void ring1(Comm& comm, index_t root, std::byte* data, std::size_t bytes,
           std::size_t segmentBytes) {
  const index_t p = comm.size();
  const auto chain = buildChain(p, root, 1, p - 1, 1);
  const index_t myPos = comm.rank() == root ? -1 : posIn(chain, comm.rank());
  runChain(comm, root, chain, myPos, data, bytes, segmentBytes);
}

void ring1M(Comm& comm, index_t root, std::byte* data, std::size_t bytes,
            std::size_t segmentBytes) {
  const index_t p = comm.size();
  const index_t rank = comm.rank();
  const index_t leaf = (1 + root) % p;  // rel 1: off-pipeline leaf
  if (rank == root) {
    comm.sendBytes(leaf, kLeafTag, data, bytes);
  } else if (rank == leaf) {
    comm.recvBytes(root, kLeafTag, data, bytes);
  }
  if (p <= 2) {
    return;
  }
  const auto chain = buildChain(p, root, 2, p - 1, 1);
  const index_t myPos = rank == root ? -1 : posIn(chain, rank);
  if (myPos >= -1) {
    runChain(comm, root, chain, myPos, data, bytes, segmentBytes);
  }
}

void ring2M(Comm& comm, index_t root, std::byte* data, std::size_t bytes,
            std::size_t segmentBytes) {
  const index_t p = comm.size();
  if (p <= 3) {
    ring1M(comm, root, data, bytes, segmentBytes);
    return;
  }
  const index_t rank = comm.rank();
  const index_t leaf = (1 + root) % p;
  if (rank == root) {
    comm.sendBytes(leaf, kLeafTag, data, bytes);
  } else if (rank == leaf) {
    comm.recvBytes(root, kLeafTag, data, bytes);
  }
  // Two half-rings over rel 2..h (ascending) and rel P-1..h+1 (descending).
  const index_t h = p / 2;
  const auto chainA = buildChain(p, root, 2, h, 1);
  const auto chainB = buildChain(p, root, p - 1, h + 1, -1);
  if (rank == root) {
    // Interleave segment sends to both chain heads to mimic the concurrent
    // double-ring injection.
    forEachSegment(bytes, segmentBytes,
                   [&](std::size_t off, std::size_t len) {
                     if (!chainA.empty()) {
                       comm.sendBytes(chainA.front(), kRingTag, data + off,
                                      len);
                     }
                     if (!chainB.empty()) {
                       comm.sendBytes(chainB.front(), kRingTag, data + off,
                                      len);
                     }
                   });
    return;
  }
  index_t pos = posIn(chainA, rank);
  if (pos >= 0) {
    runChain(comm, root, chainA, pos, data, bytes, segmentBytes);
    return;
  }
  pos = posIn(chainB, rank);
  if (pos >= 0) {
    runChain(comm, root, chainB, pos, data, bytes, segmentBytes);
  }
}

}  // namespace

void broadcast(Comm& comm, BcastStrategy strategy, index_t root, void* data,
               std::size_t bytes, std::size_t segmentBytes) {
  HPLMXP_REQUIRE(segmentBytes > 0, "segment size must be positive");
  if (comm.size() == 1) {
    return;
  }
  auto* bytesPtr = static_cast<std::byte*>(data);
  switch (strategy) {
    case BcastStrategy::kBcast:
      comm.bcastBytes(root, data, bytes);
      return;
    case BcastStrategy::kIbcast: {
      Request req = comm.ibcastBytes(root, data, bytes);
      req.wait();
      return;
    }
    case BcastStrategy::kRing1:
      ring1(comm, root, bytesPtr, bytes, segmentBytes);
      return;
    case BcastStrategy::kRing1M:
      ring1M(comm, root, bytesPtr, bytes, segmentBytes);
      return;
    case BcastStrategy::kRing2M:
      ring2M(comm, root, bytesPtr, bytes, segmentBytes);
      return;
  }
  HPLMXP_REQUIRE(false, "unknown broadcast strategy");
}

std::string toString(BcastStrategy strategy) {
  switch (strategy) {
    case BcastStrategy::kBcast: return "bcast";
    case BcastStrategy::kIbcast: return "ibcast";
    case BcastStrategy::kRing1: return "ring1";
    case BcastStrategy::kRing1M: return "ring1m";
    case BcastStrategy::kRing2M: return "ring2m";
  }
  return "?";
}

BcastStrategy bcastStrategyFromString(const std::string& name) {
  for (BcastStrategy s : kAllBcastStrategies) {
    if (toString(s) == name) {
      return s;
    }
  }
  throw CheckError("unknown broadcast strategy: " + name);
}

}  // namespace hplmxp::simmpi
