// Broadcast strategy family (Sec. IV-B "Communicator Choice").
//
// The paper implements and compares: the MPI library broadcast (Bcast), the
// nonblocking broadcast (IBcast), a single pipelined ring (Ring1), a
// modified ring whose first neighbour receives the whole message directly
// and does not forward (Ring1M — it shortens the critical path to the next
// diagonal owner), and a modified double ring that pipelines two half-rings
// concurrently (Ring2M — the best strategy on Frontier, Finding 6).
//
// All strategies produce identical buffers; they differ in message
// decomposition and therefore in pipelining/latency behaviour, which the
// netsim module models for the at-scale figures.
#pragma once

#include <string>

#include "simmpi/comm.h"

namespace hplmxp::simmpi {

enum class BcastStrategy { kBcast, kIbcast, kRing1, kRing1M, kRing2M };

/// Default pipeline segment: 64 KiB, a typical rendezvous-friendly chunk.
inline constexpr std::size_t kDefaultSegmentBytes = 64 * 1024;

/// Blocking broadcast of `bytes` from `root` using `strategy`. Collective:
/// every rank of `comm` must call it with identical arguments (except data).
void broadcast(Comm& comm, BcastStrategy strategy, index_t root, void* data,
               std::size_t bytes,
               std::size_t segmentBytes = kDefaultSegmentBytes);

template <typename T>
void broadcast(Comm& comm, BcastStrategy strategy, index_t root, T* data,
               index_t count,
               std::size_t segmentBytes = kDefaultSegmentBytes) {
  broadcast(comm, strategy, root, static_cast<void*>(data),
            static_cast<std::size_t>(count) * sizeof(T), segmentBytes);
}

/// "bcast", "ibcast", "ring1", "ring1m", "ring2m".
std::string toString(BcastStrategy strategy);
BcastStrategy bcastStrategyFromString(const std::string& name);

/// All strategies, in the order the paper lists them.
inline constexpr BcastStrategy kAllBcastStrategies[] = {
    BcastStrategy::kBcast, BcastStrategy::kIbcast, BcastStrategy::kRing1,
    BcastStrategy::kRing1M, BcastStrategy::kRing2M};

}  // namespace hplmxp::simmpi
