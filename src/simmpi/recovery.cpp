#include "simmpi/recovery.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "simmpi/faults.h"
#include "util/logging.h"

namespace hplmxp::simmpi {

RecoveryReport snapshotRecovery(const RecoveryStats& stats) {
  RecoveryReport r;
  r.checkpoints = stats.checkpoints.load();
  r.resurrections = stats.resurrections.load();
  r.stepsReplayed = stats.stepsReplayed.load();
  r.recvsReplayed = stats.recvsReplayed.load();
  r.sendsSuppressed = stats.sendsSuppressed.load();
  r.barriersSkipped = stats.barriersSkipped.load();
  r.checkpointBytesCopied = stats.checkpointBytesCopied.load();
  r.checkpointBytesStored = stats.checkpointBytesStored.load();
  r.steadyCheckpoints = stats.steadyCheckpoints.load();
  r.steadyBytesCopied = stats.steadyBytesCopied.load();
  r.steadyBytesStored = stats.steadyBytesStored.load();
  r.replayLogPeakBytes = stats.replayLogPeakBytes.load();
  r.generationsDiscarded = stats.generationsDiscarded.load();
  r.checkpointCorruptionsDetected =
      stats.checkpointCorruptionsDetected.load();
  r.nestedResurrections = stats.nestedResurrections.load();
  r.abftPanelChecks = stats.abftPanelChecks.load();
  r.abftGemmChecks = stats.abftGemmChecks.load();
  r.flipsDetected = stats.flipsDetected.load();
  r.flipsCorrected = stats.flipsCorrected.load();
  r.checksumCorruptions = stats.checksumCorruptions.load();
  return r;
}

index_t effectiveCheckpointCadence(index_t requested, index_t panelSteps) {
  if (panelSteps <= 0 || requested < panelSteps) {
    return requested;
  }
  const index_t clamped = std::max<index_t>(1, panelSteps - 1);
  if (clamped == requested) {
    return requested;
  }
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    logWarn("recovery.every-k " + std::to_string(requested) +
            " >= panel count " + std::to_string(panelSteps) +
            " degenerates to checkpoint-never; clamping to " +
            std::to_string(clamped));
  }
  return clamped;
}

void DirtyMap::reset(index_t rowBlocks, index_t colBlocks) {
  HPLMXP_REQUIRE(rowBlocks >= 0 && colBlocks >= 0, "bad dirty-map extents");
  rowBlocks_ = rowBlocks;
  colBlocks_ = colBlocks;
  marked_ = 0;
  bits_.assign(static_cast<std::size_t>(rowBlocks) *
                   static_cast<std::size_t>(colBlocks),
               0);
}

void DirtyMap::markRect(index_t ib, index_t jb, index_t hBlocks,
                        index_t wBlocks) {
  const index_t i0 = std::max<index_t>(0, ib);
  const index_t j0 = std::max<index_t>(0, jb);
  const index_t i1 = std::min(rowBlocks_, ib + hBlocks);
  const index_t j1 = std::min(colBlocks_, jb + wBlocks);
  for (index_t j = j0; j < j1; ++j) {
    std::uint8_t* col = bits_.data() + static_cast<std::size_t>(j) * rowBlocks_;
    for (index_t i = i0; i < i1; ++i) {
      if (col[i] == 0) {
        col[i] = 1;
        ++marked_;
      }
    }
  }
}

bool DirtyMap::test(index_t ib, index_t jb) const {
  if (ib < 0 || ib >= rowBlocks_ || jb < 0 || jb >= colBlocks_) {
    return false;
  }
  return bits_[static_cast<std::size_t>(jb) * rowBlocks_ + ib] != 0;
}

void DirtyMap::clear() {
  std::fill(bits_.begin(), bits_.end(), std::uint8_t{0});
  marked_ = 0;
}

std::vector<index_t> DirtyMap::markedTiles() const {
  std::vector<index_t> tiles;
  tiles.reserve(marked_);
  for (std::size_t id = 0; id < bits_.size(); ++id) {
    if (bits_[id] != 0) {
      tiles.push_back(static_cast<index_t>(id));
    }
  }
  return tiles;
}

void DeltaCheckpointStore::configure(index_t rows, index_t cols,
                                     index_t blockB,
                                     util::DeltaCodecConfig codec) {
  HPLMXP_REQUIRE(rows >= 0 && cols >= 0 && blockB >= 1,
                 "bad checkpoint-store geometry");
  rows_ = rows;
  cols_ = cols;
  b_ = blockB;
  rowBlocks_ = (rows + blockB - 1) / blockB;
  colBlocks_ = (cols + blockB - 1) / blockB;
  codec_ = codec;
  codec_.elemSize = sizeof(float);  // the local matrix is FP32
  baseValid_ = false;
  generations_.clear();
  image_.clear();
}

void DeltaCheckpointStore::saveRegenerable(index_t step,
                                           ReplayCounters counters) {
  HPLMXP_REQUIRE(generations_.empty(),
                 "regenerable base cannot supersede matrix generations");
  baseValid_ = true;
  baseStep_ = step;
  baseCounters_ = std::move(counters);
}

index_t DeltaCheckpointStore::newestStep() const {
  HPLMXP_REQUIRE(baseValid_, "checkpoint store has no base");
  return generations_.empty() ? baseStep_ : generations_.back().step;
}

const ReplayCounters& DeltaCheckpointStore::newestCounters() const {
  HPLMXP_REQUIRE(baseValid_, "checkpoint store has no base");
  return generations_.empty() ? baseCounters_
                              : generations_.back().counters;
}

bool DeltaCheckpointStore::hasGenerationAt(index_t step) const {
  if (baseValid_ && step == baseStep_) {
    return true;
  }
  for (const Generation& g : generations_) {
    if (g.step == step) {
      return true;
    }
  }
  return false;
}

std::uint64_t DeltaCheckpointStore::replayFloorRecvs() const {
  HPLMXP_REQUIRE(baseValid_, "checkpoint store has no base");
  if (generations_.size() >= 2) {
    return generations_[generations_.size() - 2].counters.recvs;
  }
  return baseCounters_.recvs;
}

void DeltaCheckpointStore::gatherTiles(const std::vector<index_t>& tiles,
                                       const float* src, index_t lda,
                                       std::vector<std::uint8_t>& out) const {
  out.clear();
  for (const index_t id : tiles) {
    const index_t ib = id % rowBlocks_;
    const index_t jb = id / rowBlocks_;
    const index_t r0 = ib * b_;
    const index_t c0 = jb * b_;
    const index_t h = std::min(b_, rows_ - r0);
    const index_t w = std::min(b_, cols_ - c0);
    for (index_t c = 0; c < w; ++c) {
      const auto* colBytes = reinterpret_cast<const std::uint8_t*>(
          src + static_cast<std::size_t>(c0 + c) * lda + r0);
      out.insert(out.end(), colBytes,
                 colBytes + static_cast<std::size_t>(h) * sizeof(float));
    }
  }
}

void DeltaCheckpointStore::scatterTiles(const std::vector<index_t>& tiles,
                                        const std::uint8_t* packed,
                                        float* dst, index_t lda) const {
  std::size_t off = 0;
  for (const index_t id : tiles) {
    const index_t ib = id % rowBlocks_;
    const index_t jb = id / rowBlocks_;
    const index_t r0 = ib * b_;
    const index_t c0 = jb * b_;
    const index_t h = std::min(b_, rows_ - r0);
    const index_t w = std::min(b_, cols_ - c0);
    for (index_t c = 0; c < w; ++c) {
      std::memcpy(dst + static_cast<std::size_t>(c0 + c) * lda + r0,
                  packed + off, static_cast<std::size_t>(h) * sizeof(float));
      off += static_cast<std::size_t>(h) * sizeof(float);
    }
  }
}

void DeltaCheckpointStore::materializeImage(
    const std::function<void(float*, index_t)>& regen) {
  if (!image_.empty() || rows_ == 0 || cols_ == 0) {
    return;
  }
  image_.resize(static_cast<std::size_t>(rows_) *
                static_cast<std::size_t>(cols_));
  regen(image_.data(), rows_);
}

namespace {

/// Cheap integrity probe: recomputes every chunk CRC without decoding.
bool blobIntact(const util::DeltaBlob& blob) {
  for (const util::DeltaChunk& chunk : blob.chunks) {
    if (util::crc32(chunk.payload.data(), chunk.payload.size()) !=
        chunk.crc) {
      return false;
    }
  }
  return true;
}

}  // namespace

DeltaCheckpointStore::AppendResult DeltaCheckpointStore::append(
    index_t step, ReplayCounters counters, const float* localA, index_t lda,
    const std::vector<index_t>& tiles,
    const std::function<void(float*, index_t)>& regen, bool scrub) {
  HPLMXP_REQUIRE(baseValid_, "checkpoint store has no base");
  HPLMXP_REQUIRE(step > newestStep(),
                 "checkpoint generations must have ascending steps");
  HPLMXP_REQUIRE(lda >= rows_, "bad checkpoint leading dimension");
  AppendResult result;
  std::vector<index_t> tileSet = tiles;
  if (scrub && !generations_.empty() &&
      !blobIntact(generations_.back().blob)) {
    // Scrub-on-append: the newest stored generation rotted since it was
    // written. This is the last moment it can be dropped safely — the
    // replay floor has not yet advanced past its predecessor. Fold its
    // tiles into this generation so the delta chain stays exact.
    result.corruptionsDetected += 1;
    result.generationsDiscarded += 1;
    std::vector<index_t> lost = std::move(generations_.back().tiles);
    generations_.pop_back();
    std::vector<index_t> merged;
    std::set_union(tileSet.begin(), tileSet.end(), lost.begin(), lost.end(),
                   std::back_inserter(merged));
    tileSet = std::move(merged);
    // The image held the dropped generation's content; rebuild it from
    // the intact chain (LCG base + surviving generations).
    image_.clear();
    materializeImage(regen);
    std::vector<std::uint8_t> tileBuf;
    std::size_t applied = 0;
    for (const Generation& gen : generations_) {
      gatherTiles(gen.tiles, image_.data(), rows_, tileBuf);
      if (util::decodeDelta(gen.blob, tileBuf.data(), tileBuf.size(),
                            /*verify=*/true) != util::DeltaDecodeStatus::kOk) {
        break;  // double fault: ladder truncates here too
      }
      scatterTiles(gen.tiles, tileBuf.data(), image_.data(), rows_);
      ++applied;
    }
    if (applied < generations_.size()) {
      result.corruptionsDetected += 1;
      for (std::size_t i = applied; i < generations_.size(); ++i) {
        result.generationsDiscarded += 1;
        merged.clear();
        std::set_union(tileSet.begin(), tileSet.end(),
                       generations_[i].tiles.begin(),
                       generations_[i].tiles.end(),
                       std::back_inserter(merged));
        tileSet = std::move(merged);
      }
      generations_.resize(applied);
    }
  }
  materializeImage(regen);
  std::vector<std::uint8_t> cur;
  std::vector<std::uint8_t> prev;
  gatherTiles(tileSet, localA, lda, cur);
  gatherTiles(tileSet, image_.data(), rows_, prev);
  Generation gen;
  gen.step = step;
  gen.counters = std::move(counters);
  gen.tiles = tileSet;
  gen.blob = util::encodeDelta(cur.data(), prev.data(), cur.size(), codec_);
  // The image is the newest generation's content: fold the dirty tiles in.
  scatterTiles(tileSet, cur.data(), image_.data(), rows_);
  result.rawBytes = cur.size();
  result.storedBytes = gen.blob.storedBytes();
  generations_.push_back(std::move(gen));
  return result;
}

RestoreResult DeltaCheckpointStore::restore(
    float* localA, index_t lda,
    const std::function<void(float*, index_t)>& regen, bool verify) {
  HPLMXP_REQUIRE(baseValid_, "checkpoint store has no base");
  HPLMXP_REQUIRE(lda >= rows_, "bad restore leading dimension");
  // Rebuild from the LCG base and re-apply the whole chain, so every
  // retained chunk's CRC is exercised on every restore.
  std::vector<float> buf(static_cast<std::size_t>(rows_) *
                         static_cast<std::size_t>(cols_));
  regen(buf.data(), rows_);
  RestoreResult result;
  result.step = baseStep_;
  result.counters = baseCounters_;
  std::size_t applied = 0;
  std::vector<std::uint8_t> tileBuf;
  for (const Generation& gen : generations_) {
    gatherTiles(gen.tiles, buf.data(), rows_, tileBuf);
    const util::DeltaDecodeStatus status =
        util::decodeDelta(gen.blob, tileBuf.data(), tileBuf.size(), verify);
    if (status != util::DeltaDecodeStatus::kOk) {
      // Fallback ladder: this generation — and every later one, whose
      // deltas chain off it — is lost; the newest intact ancestor wins.
      result.corruptionsDetected += 1;
      result.generationsDiscarded += generations_.size() - applied;
      break;
    }
    scatterTiles(gen.tiles, tileBuf.data(), buf.data(), rows_);
    result.step = gen.step;
    result.counters = gen.counters;
    ++applied;
  }
  generations_.resize(applied);
  for (index_t j = 0; j < cols_; ++j) {
    std::memcpy(localA + static_cast<std::size_t>(j) * lda,
                buf.data() + static_cast<std::size_t>(j) * rows_,
                static_cast<std::size_t>(rows_) * sizeof(float));
  }
  image_ = std::move(buf);
  return result;
}

bool DeltaCheckpointStore::corruptNewestGeneration(std::uint64_t selector) {
  if (generations_.empty()) {
    return false;
  }
  util::DeltaBlob& blob = generations_.back().blob;
  std::vector<util::DeltaChunk*> nonEmpty;
  for (util::DeltaChunk& c : blob.chunks) {
    if (!c.payload.empty()) {
      nonEmpty.push_back(&c);
    }
  }
  if (nonEmpty.empty()) {
    return false;
  }
  util::DeltaChunk& chunk = *nonEmpty[selector % nonEmpty.size()];
  const std::size_t byte =
      (selector / nonEmpty.size()) % chunk.payload.size();
  const int bit = static_cast<int>((selector >> 17) % 8);
  chunk.payload[byte] ^= static_cast<std::uint8_t>(1u << bit);
  return true;
}

RecoveryManager::RecoveryManager(Comm world, RecoveryConfig config,
                                 RecoveryGeometry geometry,
                                 std::shared_ptr<RecoveryStats> stats,
                                 Regenerate regen)
    : world_(std::move(world)),
      config_(config),
      geometry_(geometry),
      stats_(std::move(stats)),
      regen_(std::move(regen)) {
  config_.validate();
  HPLMXP_REQUIRE(static_cast<bool>(regen_),
                 "recovery needs a matrix regenerator");
  HPLMXP_REQUIRE(world_.replayLogEnabled(),
                 "recovery needs the comm replay log (RunOptions.replayLog)");
  HPLMXP_REQUIRE(geometry_.localRows >= 0 && geometry_.localCols >= 0 &&
                     geometry_.blockB >= 1 && geometry_.panelSteps >= 1,
                 "bad recovery geometry");
  config_.checkpointEveryK = effectiveCheckpointCadence(
      config_.checkpointEveryK, geometry_.panelSteps);
  util::DeltaCodecConfig codec;
  codec.compress = config_.compressCheckpoints;
  store_.configure(geometry_.localRows, geometry_.localCols,
                   geometry_.blockB, codec);
  dirty_.reset((geometry_.localRows + geometry_.blockB - 1) /
                   geometry_.blockB,
               (geometry_.localCols + geometry_.blockB - 1) /
                   geometry_.blockB);
  if (!stats_) {
    stats_ = std::make_shared<RecoveryStats>();
  }
}

void RecoveryManager::checkpoint(index_t step, const float* localA,
                                 index_t lda) {
  const index_t rank = world_.rank();
  const bool replayingNow = world_.replaying(rank);
  if (store_.valid() && store_.hasGenerationAt(step)) {
    // Replay re-reached a step whose generation survived: deterministic
    // re-execution makes the state identical, so there is nothing new to
    // store. (A generation discarded by the corruption fallback does NOT
    // hit this branch — it is re-appended fresh below.)
    dirty_.clear();
  } else if (!store_.valid()) {
    ReplayCounters counters = world_.replayCounters(rank);
    store_.saveRegenerable(step, std::move(counters));
    dirty_.clear();
    if (!replayingNow) {
      stats_->checkpoints.fetch_add(1);
    }
  } else {
    ReplayCounters counters = world_.replayCounters(rank);
    const std::vector<index_t> tiles = dirty_.markedTiles();
    const DeltaCheckpointStore::AppendResult appended =
        store_.append(step, std::move(counters), localA, lda, tiles, regen_,
                      /*scrub=*/config_.verifyCheckpoints);
    dirty_.clear();
    if (appended.corruptionsDetected > 0) {
      // Scrub-on-append casualty: a stored generation rotted and was
      // folded into this one before the replay floor moved past it.
      stats_->checkpointCorruptionsDetected.fetch_add(
          appended.corruptionsDetected);
      stats_->generationsDiscarded.fetch_add(appended.generationsDiscarded);
      logWarn("rank ", rank, ": checkpoint scrub at step ", step,
              " dropped ", appended.generationsDiscarded,
              " rotted generation(s); tiles folded forward");
    }
    if (!replayingNow) {
      stats_->checkpoints.fetch_add(1);
      stats_->checkpointBytesCopied.fetch_add(appended.rawBytes);
      stats_->checkpointBytesStored.fetch_add(appended.storedBytes);
      if (geometry_.panelSteps > 0 && step * 2 > geometry_.panelSteps) {
        // Steady state: the warm-up generations (whose dirty region still
        // spans most of the matrix) are behind us.
        stats_->steadyCheckpoints.fetch_add(1);
        stats_->steadyBytesCopied.fetch_add(appended.rawBytes);
        stats_->steadyBytesStored.fetch_add(appended.storedBytes);
      }
      // Checkpoint-corruption injection: the fault plan may schedule a bit
      // flip inside a freshly stored generation (faults.h).
      const std::shared_ptr<FaultInjector>& injector = world_.faultInjector();
      if (injector) {
        std::uint64_t selector = 0;
        if (injector->nextCheckpointCorruption(rank, liveAppends_,
                                               &selector) &&
            store_.corruptNewestGeneration(selector)) {
          injector->noteCheckpointCorruption();
        }
      }
      ++liveAppends_;
    }
  }
  world_.trimReplayLog(rank, store_.replayFloorRecvs());
}

bool RecoveryManager::canResurrect() const {
  return store_.valid() && resurrections_ < config_.maxResurrections;
}

index_t RecoveryManager::resurrect(index_t crashStep, float* localA,
                                   index_t lda) {
  HPLMXP_REQUIRE(canResurrect(), "no checkpoint to resurrect from");
  const index_t rank = world_.rank();
  const bool nested = world_.replaying(rank);
  ++resurrections_;
  const RestoreResult restored =
      store_.restore(localA, lda, regen_, config_.verifyCheckpoints);
  HPLMXP_REQUIRE(crashStep >= restored.step,
                 "crash step precedes the checkpoint");
  world_.beginReplay(rank, restored.counters);
  dirty_.clear();
  stats_->resurrections.fetch_add(1);
  stats_->stepsReplayed.fetch_add(
      static_cast<std::uint64_t>(crashStep - restored.step));
  if (nested) {
    stats_->nestedResurrections.fetch_add(1);
  }
  stats_->generationsDiscarded.fetch_add(restored.generationsDiscarded);
  stats_->checkpointCorruptionsDetected.fetch_add(
      restored.corruptionsDetected);
  std::string note;
  if (restored.corruptionsDetected > 0) {
    note = ", " + std::to_string(restored.generationsDiscarded) +
           " corrupt generation(s) discarded";
  }
  if (nested) {
    note += ", nested inside an ongoing replay";
  }
  logWarn("rank " + std::to_string(rank) + ": crash at panel step " +
          std::to_string(crashStep) +
          ", resurrected from checkpoint step " +
          std::to_string(restored.step) + " (replaying " +
          std::to_string(crashStep - restored.step) + " steps" + note + ")");
  return restored.step;
}

void RecoveryManager::noteRunComplete() {
  const ReplayActivity a = world_.replayActivity(world_.rank());
  stats_->recvsReplayed.fetch_add(a.recvsReplayed);
  stats_->sendsSuppressed.fetch_add(a.sendsSuppressed);
  stats_->barriersSkipped.fetch_add(a.barriersSkipped);
  std::uint64_t prev = stats_->replayLogPeakBytes.load();
  while (prev < a.logPeakBytes &&
         !stats_->replayLogPeakBytes.compare_exchange_weak(prev,
                                                           a.logPeakBytes)) {
  }
}

}  // namespace hplmxp::simmpi
