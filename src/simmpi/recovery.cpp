#include "simmpi/recovery.h"

#include <cstring>
#include <utility>

#include "util/logging.h"

namespace hplmxp::simmpi {

RecoveryReport snapshotRecovery(const RecoveryStats& stats) {
  RecoveryReport r;
  r.checkpoints = stats.checkpoints.load();
  r.resurrections = stats.resurrections.load();
  r.stepsReplayed = stats.stepsReplayed.load();
  r.recvsReplayed = stats.recvsReplayed.load();
  r.sendsSuppressed = stats.sendsSuppressed.load();
  r.barriersSkipped = stats.barriersSkipped.load();
  r.checkpointBytesCopied = stats.checkpointBytesCopied.load();
  r.replayLogPeakBytes = stats.replayLogPeakBytes.load();
  r.abftPanelChecks = stats.abftPanelChecks.load();
  r.abftGemmChecks = stats.abftGemmChecks.load();
  r.flipsDetected = stats.flipsDetected.load();
  r.flipsCorrected = stats.flipsCorrected.load();
  r.checksumCorruptions = stats.checksumCorruptions.load();
  return r;
}

void RankCheckpoint::saveRegenerable(index_t step, ReplayCounters counters) {
  HPLMXP_REQUIRE(!hasMatrix_,
                 "regenerable checkpoint cannot supersede a matrix one");
  valid_ = true;
  step_ = step;
  counters_ = std::move(counters);
}

void RankCheckpoint::save(index_t step, ReplayCounters counters,
                          const float* localA, index_t lda, index_t rows,
                          index_t cols, index_t rowFrom, index_t colFrom) {
  HPLMXP_REQUIRE(rows >= 0 && cols >= 0 && lda >= rows,
                 "bad checkpoint extents");
  HPLMXP_REQUIRE(rowFrom >= 0 && rowFrom <= rows && colFrom >= 0 &&
                     colFrom <= cols,
                 "bad checkpoint delta corner");
  if (!hasMatrix_) {
    HPLMXP_REQUIRE(rowFrom == 0 && colFrom == 0,
                   "first matrix checkpoint must be a full copy");
    rows_ = rows;
    cols_ = cols;
    matrix_.resize(static_cast<std::size_t>(rows) *
                   static_cast<std::size_t>(cols));
    hasMatrix_ = true;
  } else {
    HPLMXP_REQUIRE(rows == rows_ && cols == cols_,
                   "checkpoint extents changed between saves");
  }
  // Everything outside the untouched [0, rowFrom) x [0, colFrom) corner is
  // re-copied: full columns colFrom.., plus rows rowFrom.. of the corner's
  // columns.
  for (index_t j = 0; j < cols; ++j) {
    const index_t r0 = j < colFrom ? rowFrom : 0;
    const index_t count = rows - r0;
    if (count <= 0) {
      continue;
    }
    std::memcpy(matrix_.data() + static_cast<std::size_t>(j) * rows + r0,
                localA + static_cast<std::size_t>(j) * lda + r0,
                static_cast<std::size_t>(count) * sizeof(float));
    bytesCopied_ += static_cast<std::uint64_t>(count) * sizeof(float);
  }
  valid_ = true;
  step_ = step;
  counters_ = std::move(counters);
}

void RankCheckpoint::restore(float* localA, index_t lda) const {
  HPLMXP_REQUIRE(valid_ && hasMatrix_, "no matrix checkpoint to restore");
  HPLMXP_REQUIRE(lda >= rows_, "bad restore leading dimension");
  for (index_t j = 0; j < cols_; ++j) {
    std::memcpy(localA + static_cast<std::size_t>(j) * lda,
                matrix_.data() + static_cast<std::size_t>(j) * rows_,
                static_cast<std::size_t>(rows_) * sizeof(float));
  }
}

RecoveryManager::RecoveryManager(Comm world, RecoveryConfig config,
                                 std::shared_ptr<RecoveryStats> stats,
                                 Regenerate regen)
    : world_(std::move(world)),
      config_(config),
      stats_(std::move(stats)),
      regen_(std::move(regen)) {
  config_.validate();
  HPLMXP_REQUIRE(static_cast<bool>(regen_),
                 "recovery needs a matrix regenerator");
  HPLMXP_REQUIRE(world_.replayLogEnabled(),
                 "recovery needs the comm replay log (RunOptions.replayLog)");
  if (!stats_) {
    stats_ = std::make_shared<RecoveryStats>();
  }
}

index_t RecoveryManager::matrixStep() const {
  return ckpt_.valid() && !ckpt_.regenerable() ? ckpt_.step() : -1;
}

void RecoveryManager::checkpoint(index_t step, const float* localA,
                                 index_t lda, index_t rows, index_t cols,
                                 index_t rowFrom, index_t colFrom) {
  const index_t rank = world_.rank();
  const bool replayingNow = world_.replaying(rank);
  const std::uint64_t before = ckpt_.bytesCopied();
  ReplayCounters counters = world_.replayCounters(rank);
  const std::uint64_t trimTo = counters.recvs;
  if (step == 0) {
    ckpt_.saveRegenerable(step, std::move(counters));
  } else {
    ckpt_.save(step, std::move(counters), localA, lda, rows, cols, rowFrom,
               colFrom);
  }
  world_.trimReplayLog(rank, trimTo);
  if (!replayingNow) {
    stats_->checkpoints.fetch_add(1);
    stats_->checkpointBytesCopied.fetch_add(ckpt_.bytesCopied() - before);
  }
}

bool RecoveryManager::canResurrect() const {
  return ckpt_.valid() && resurrections_ < config_.maxResurrections;
}

index_t RecoveryManager::resurrect(index_t crashStep, float* localA,
                                   index_t lda) {
  HPLMXP_REQUIRE(canResurrect(), "no checkpoint to resurrect from");
  HPLMXP_REQUIRE(crashStep >= ckpt_.step(),
                 "crash step precedes the checkpoint");
  ++resurrections_;
  if (ckpt_.regenerable()) {
    regen_(localA, lda);
  } else {
    ckpt_.restore(localA, lda);
  }
  world_.beginReplay(world_.rank(), ckpt_.counters());
  stats_->resurrections.fetch_add(1);
  stats_->stepsReplayed.fetch_add(
      static_cast<std::uint64_t>(crashStep - ckpt_.step()));
  logWarn("rank " + std::to_string(world_.rank()) +
          ": crash at panel step " + std::to_string(crashStep) +
          ", resurrected from checkpoint step " +
          std::to_string(ckpt_.step()) + " (replaying " +
          std::to_string(crashStep - ckpt_.step()) + " steps)");
  return ckpt_.step();
}

void RecoveryManager::noteRunComplete() {
  const ReplayActivity a = world_.replayActivity(world_.rank());
  stats_->recvsReplayed.fetch_add(a.recvsReplayed);
  stats_->sendsSuppressed.fetch_add(a.sendsSuppressed);
  stats_->barriersSkipped.fetch_add(a.barriersSkipped);
  std::uint64_t prev = stats_->replayLogPeakBytes.load();
  while (prev < a.logPeakBytes &&
         !stats_->replayLogPeakBytes.compare_exchange_weak(prev,
                                                           a.logPeakBytes)) {
  }
}

}  // namespace hplmxp::simmpi
