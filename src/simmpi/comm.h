// In-process message-passing runtime standing in for MPI.
//
// Each rank is a thread; a Comm is a handle (rank, shared state) with
// MPI-like semantics: tagged point-to-point send/recv with per-(src, tag)
// FIFO ordering, barriers, broadcast (synchronous tree and "IBcast"
// nonblocking), sum/max reductions, and communicator splitting (used for
// the row/column communicators of the 2D grid).
//
// Sends are buffered and never block (an unbounded-eager-buffer MPI); recv
// blocks until a matching message arrives. This preserves the ordering and
// deadlock structure of the paper's communication patterns while running
// whole multi-rank executions inside one test process.
//
// Robustness hooks (all zero-cost when unset):
//   * setTimeout(): blocking waits (recv, barrier, split, Request::wait)
//     raise a structured CommTimeoutError instead of hanging forever when a
//     peer is lost — the fail-fast behavior Sec. VI-B's progress monitoring
//     demands at scale.
//   * setSendRetry(): transient send failures (injected or otherwise) are
//     retried with exponential backoff before surfacing as CommSendError.
//   * setFaultInjector(): installs a deterministic simmpi::FaultInjector
//     (faults.h); sub-communicators created by split() inherit it.
//   * enableReplayLog(): keeps per-world-rank comm-op counters and a
//     bounded log of received payloads so a crashed rank can be
//     resurrected and deterministically re-executed from a checkpoint
//     (recovery.h): replayed sends are swallowed (the buffered transport
//     already delivered them), replayed recvs are served from the log, and
//     replayed barriers are skipped — the rank goes live again exactly at
//     the op where it died.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <thread>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "util/clock.h"
#include "util/common.h"

namespace hplmxp::simmpi {

using Tag = std::int64_t;

/// Clock source the Request poll backoff measures its spin window
/// against. Defaults to the process wall clock; the fleet simulator can
/// point it at a virtual clock so polling loops replayed under simulated
/// time keep their spin-then-yield shape. Pass nullptr to restore the
/// default. The source must outlive every Request that polls it.
void setPollClockSource(const ClockSource* source);
[[nodiscard]] const ClockSource& pollClockSource();

class FaultInjector;

namespace detail {
struct CommState;
struct ReplayRank;
}

/// Per-world-rank communication-op counters: the replay log's notion of
/// "where a rank is" in its deterministic op sequence. A checkpoint
/// snapshots them; resurrection rewinds to the snapshot and replays until
/// the counters reach their crash-time values again.
struct ReplayCounters {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t barriers = 0;
  /// Per-communicator ibcast ordinals (keyed by an internal comm id).
  /// Ibcast tags are derived from these, so a rewind must restore them for
  /// replayed ibcasts to re-derive the tags the original execution used.
  std::map<std::uint64_t, index_t> ibcastSeq;

  /// Replay progress compares op counts only (the ibcast ordinals advance
  /// as a function of the op sequence).
  [[nodiscard]] bool atSameOps(const ReplayCounters& o) const {
    return sends == o.sends && recvs == o.recvs && barriers == o.barriers;
  }
};

/// Replay-side tallies for one rank (a recovery report's raw material).
struct ReplayActivity {
  std::uint64_t recvsReplayed = 0;
  std::uint64_t sendsSuppressed = 0;
  std::uint64_t barriersSkipped = 0;
  std::uint64_t logRecords = 0;  // recv payloads currently retained
  std::uint64_t logBytes = 0;    // their total size
  std::uint64_t logPeakBytes = 0;
};

/// Base class of communication-layer failures.
class CommError : public CheckError {
 public:
  explicit CommError(const std::string& msg) : CheckError(msg) {}
};

/// A blocking wait exceeded the configured timeout — the peer is presumed
/// lost (crashed rank, wedged fabric). Carries the structured coordinates
/// of the wait so aggregated reports can say who waited on whom.
class CommTimeoutError : public CommError {
 public:
  CommTimeoutError(std::string op, index_t rank, index_t peer, Tag tag,
                   std::chrono::milliseconds timeout);

  [[nodiscard]] const std::string& op() const { return op_; }
  [[nodiscard]] index_t rank() const { return rank_; }
  /// Peer waited on; -1 when the wait is collective (barrier/split).
  [[nodiscard]] index_t peer() const { return peer_; }
  [[nodiscard]] Tag tag() const { return tag_; }

 private:
  std::string op_;
  index_t rank_;
  index_t peer_;
  Tag tag_;
};

/// A send failed transiently more times than the retry budget allows.
class CommSendError : public CommError {
 public:
  explicit CommSendError(const std::string& msg) : CommError(msg) {}
};

/// Handle to a pending nonblocking operation. wait() must be called before
/// the destination buffer is read (receivers) — for senders the operation
/// completes eagerly and wait() is a no-op. Safe to copy; all copies share
/// completion state, and wait()/test() are thread-safe and idempotent
/// under concurrent callers.
class Request {
 public:
  /// Already-complete request (eager sends, single-rank collectives).
  Request() = default;

  /// Pending request. `tryComplete(blocking)` performs the operation:
  /// called with true it must finish (blocking) and return true; with
  /// false it attempts a nonblocking completion and returns whether the
  /// operation finished.
  static Request pending(std::function<bool(bool)> tryComplete) {
    Request r;
    r.state_ = std::make_shared<State>();
    r.state_->tryComplete = std::move(tryComplete);
    return r;
  }

  /// Blocks until the operation is complete. Idempotent; concurrent
  /// callers serialize and all return after completion.
  void wait() {
    if (!state_ || state_->done.load(std::memory_order_acquire)) {
      return;
    }
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->done.load(std::memory_order_relaxed)) {
      return;
    }
    state_->tryComplete(/*blocking=*/true);
    state_->done.store(true, std::memory_order_release);
  }

  /// Nonblocking poll: returns true iff the operation is complete (and on
  /// first success performs the completion, e.g. copies the received
  /// payload out). The poll companion of wait() for timeout loops.
  ///
  /// Bounded spin-then-yield backoff: misses within the first
  /// kPollSpinSeconds return immediately (latency-optimal for operations
  /// about to land); after the window every miss yields the CPU, so a
  /// tight `while (!req.test())` loop — e.g. a dataflow rank polling an
  /// in-flight ring broadcast — cannot starve the scheduler's worker
  /// threads on an oversubscribed host. The window is measured against
  /// pollClockSource() (a *time* budget, not the old fixed miss count,
  /// which stretched with CPU speed and meant nothing under a virtual
  /// clock).
  bool test() {
    if (!state_ || state_->done.load(std::memory_order_acquire)) {
      return true;
    }
    std::unique_lock<std::mutex> lock(state_->mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      // Another thread is completing right now; report current state.
      if (state_->done.load(std::memory_order_acquire)) {
        return true;
      }
      backoff();
      return false;
    }
    if (state_->done.load(std::memory_order_relaxed)) {
      return true;
    }
    if (state_->tryComplete(/*blocking=*/false)) {
      state_->done.store(true, std::memory_order_release);
      return true;
    }
    lock.unlock();
    backoff();
    return false;
  }

 private:
  /// Spin window after the first failed poll before test() starts
  /// yielding between attempts.
  static constexpr double kPollSpinSeconds = 20e-6;

  struct State {
    std::mutex mutex;
    std::atomic<bool> done{false};
    /// Instant of the first failed poll; < 0 until a poll misses.
    std::atomic<double> spinStartSeconds{-1.0};
    std::function<bool(bool)> tryComplete;
  };

  void backoff() {
    const double now = pollClockSource().nowSeconds();
    double start = state_->spinStartSeconds.load(std::memory_order_relaxed);
    if (start < 0.0) {
      // First miss opens the window; one racer wins, everyone measures
      // from the same instant.
      if (!state_->spinStartSeconds.compare_exchange_strong(
              start, now, std::memory_order_relaxed)) {
        // start now holds the winner's instant.
      } else {
        start = now;
      }
    }
    if (now - start >= kPollSpinSeconds) {
      std::this_thread::yield();
    }
  }

  std::shared_ptr<State> state_;
};

/// Communicator handle. Cheap to copy; all copies share the transport.
class Comm {
 public:
  Comm() = default;

  [[nodiscard]] index_t rank() const { return rank_; }
  [[nodiscard]] index_t size() const;
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  // --- robustness configuration (shared by all handles of this comm; set
  // before ranks start communicating; split() children inherit) ---------
  /// Blocking-wait budget; zero waits forever (the default).
  void setTimeout(std::chrono::milliseconds timeout);
  [[nodiscard]] std::chrono::milliseconds timeout() const;

  /// Retry budget and initial backoff for transient send failures; the
  /// backoff doubles per attempt.
  void setSendRetry(int maxRetries, std::chrono::microseconds backoff);

  /// Installs a deterministic fault injector (simmpi/faults.h). Pass
  /// nullptr to remove. The hot paths pay one pointer compare when unset.
  void setFaultInjector(std::shared_ptr<FaultInjector> injector);
  [[nodiscard]] const std::shared_ptr<FaultInjector>& faultInjector() const;

  // --- crash-recovery replay log (see simmpi/recovery.h) ----------------
  /// Arms the replay log on this comm (call on the WORLD communicator
  /// before any split/communication; children share the log). Counters and
  /// the recv-payload log are indexed by boundThreadRank(), so unbound
  /// threads are never logged. The hot paths pay one pointer compare when
  /// the log is off.
  void enableReplayLog();
  [[nodiscard]] bool replayLogEnabled() const;

  /// Current op counters of a world rank (checkpoint material). Only
  /// meaningful when called by that rank's own thread or while it is
  /// quiescent.
  [[nodiscard]] ReplayCounters replayCounters(index_t worldRank) const;

  /// Puts `worldRank` into replay mode: its counters rewind to
  /// `resumeFrom` (the checkpoint snapshot) and its ops are replayed —
  /// sends swallowed, recvs served from the log, barriers skipped — until
  /// the counters reach their values at the moment of this call, where the
  /// rank flips back to live execution. Must be called by the rank's own
  /// thread with no comm op in flight. Calling it on a rank that is
  /// already replaying *nests*: the counters rewind again but the original
  /// live-resume target is preserved, so a crash arriving mid-replay can
  /// be survived too.
  void beginReplay(index_t worldRank, const ReplayCounters& resumeFrom);
  [[nodiscard]] bool replaying(index_t worldRank) const;

  /// Drops logged recv payloads older than ordinal `keepFromRecv` (a
  /// checkpoint's recv counter): the log stays bounded by one checkpoint
  /// interval of traffic.
  void trimReplayLog(index_t worldRank, std::uint64_t keepFromRecv);

  [[nodiscard]] ReplayActivity replayActivity(index_t worldRank) const;

  // --- point to point -----------------------------------------------------
  void sendBytes(index_t dest, Tag tag, const void* data, std::size_t bytes);
  void recvBytes(index_t src, Tag tag, void* data, std::size_t bytes);

  /// Nonblocking probe-and-receive: returns false (buffer untouched) when
  /// no matching message is queued. Used by Request::test().
  bool tryRecvBytes(index_t src, Tag tag, void* data, std::size_t bytes);

  template <typename T>
  void send(index_t dest, Tag tag, const T* data, index_t count) {
    sendBytes(dest, tag, data, static_cast<std::size_t>(count) * sizeof(T));
  }
  template <typename T>
  void recv(index_t src, Tag tag, T* data, index_t count) {
    recvBytes(src, tag, data, static_cast<std::size_t>(count) * sizeof(T));
  }

  /// Nonblocking send: with the buffered transport the payload is captured
  /// immediately, so the returned Request completes eagerly.
  Request isendBytes(index_t dest, Tag tag, const void* data,
                     std::size_t bytes) {
    sendBytes(dest, tag, data, bytes);
    return Request{};
  }

  /// Nonblocking receive: completes (blocks if necessary) at wait(), or
  /// opportunistically at test().
  Request irecvBytes(index_t src, Tag tag, void* data, std::size_t bytes) {
    Comm self = *this;
    return Request::pending([self, src, tag, data, bytes](
                                bool blocking) mutable {
      if (blocking) {
        self.recvBytes(src, tag, data, bytes);
        return true;
      }
      return self.tryRecvBytes(src, tag, data, bytes);
    });
  }

  /// Exchanges buffers with a partner (deadlock-free under buffering).
  void sendrecvBytes(index_t partner, Tag tag, const void* sendBuf,
                     void* recvBuf, std::size_t bytes) {
    sendBytes(partner, tag, sendBuf, bytes);
    recvBytes(partner, tag, recvBuf, bytes);
  }
  template <typename T>
  void sendrecv(index_t partner, Tag tag, const T* sendBuf, T* recvBuf,
                index_t count) {
    sendrecvBytes(partner, tag, sendBuf, recvBuf,
                  static_cast<std::size_t>(count) * sizeof(T));
  }

  // --- collectives (must be called by every rank of the comm, in the same
  // order) -------------------------------------------------------------
  void barrier();

  /// Synchronous binomial-tree broadcast (the "Bcast" strategy).
  template <typename T>
  void bcast(index_t root, T* data, index_t count) {
    bcastBytes(root, data, static_cast<std::size_t>(count) * sizeof(T));
  }
  void bcastBytes(index_t root, void* data, std::size_t bytes);

  /// Nonblocking broadcast ("IBcast"): the root's data is captured and
  /// forwarded eagerly; non-roots complete the receive in wait().
  template <typename T>
  Request ibcast(index_t root, T* data, index_t count) {
    return ibcastBytes(root, data,
                       static_cast<std::size_t>(count) * sizeof(T));
  }
  Request ibcastBytes(index_t root, void* data, std::size_t bytes);

  /// Element-wise sum Allreduce (the IR residual reduction).
  void allreduceSum(double* data, index_t count);
  void allreduceSum(float* data, index_t count);

  /// Scalar max Allreduce.
  [[nodiscard]] double allreduceMax(double value);

  /// MAXLOC Allreduce: every rank receives the maximum value and the
  /// `where` payload supplied by the rank holding it (ties resolve to the
  /// smallest `where`). Used by the pivot search of the distributed HPL
  /// baseline.
  struct MaxLoc {
    double value = 0.0;
    index_t where = 0;
  };
  [[nodiscard]] MaxLoc allreduceMaxLoc(double value, index_t where);

  /// Gathers `count` elements from each rank to `root` (recvBuf must hold
  /// size()*count on the root; it may be null elsewhere).
  template <typename T>
  void gather(index_t root, const T* sendBuf, T* recvBuf, index_t count) {
    gatherBytes(root, sendBuf, recvBuf,
                static_cast<std::size_t>(count) * sizeof(T));
  }
  void gatherBytes(index_t root, const void* sendBuf, void* recvBuf,
                   std::size_t bytes);

  /// Allgather: every rank receives every rank's contribution, in rank
  /// order.
  template <typename T>
  void allgather(const T* sendBuf, T* recvBuf, index_t count) {
    allgatherBytes(sendBuf, recvBuf,
                   static_cast<std::size_t>(count) * sizeof(T));
  }
  void allgatherBytes(const void* sendBuf, void* recvBuf,
                      std::size_t bytes);

  /// Splits into sub-communicators by color; ranks ordered by (key, rank).
  /// Every rank of this comm must call split (same call ordinal). Children
  /// inherit the timeout, retry policy, and fault injector.
  [[nodiscard]] Comm split(index_t color, index_t key);

  /// World constructor used by the Runtime.
  static std::vector<Comm> makeWorld(index_t size);

 private:
  Comm(std::shared_ptr<detail::CommState> state, index_t rank)
      : state_(std::move(state)), rank_(rank) {}

  template <typename T>
  void allreduceSumT(T* data, index_t count);

  /// Applies the installed fault plan to one send attempt sequence:
  /// delays/stalls sleep, crash decisions throw, bit flips corrupt the
  /// payload in place, and transient failures are retried with
  /// exponential backoff (CommSendError once the budget is exhausted).
  /// Returns false when a network-partition drop swallowed the send: the
  /// caller must NOT deliver the payload (and must not error — partition
  /// loss is silent on the sender side).
  bool injectOnSend(index_t dest, Tag tag, std::vector<std::byte>& payload);

  /// Crash/stall injection point for receive-side and collective ops.
  void injectOnOp(const char* what);

  /// Crash injection point for *replayed* ops. Replay suppresses the
  /// normal plan (the live op sequence must not be perturbed), so crashes
  /// arriving mid-replay draw from a separate replayed-op counter
  /// (FaultConfig::replayCrashRank). Throws before the op is counted.
  void injectOnReplayedOp();

  /// Replay-log slot of the calling thread's bound world rank (nullptr
  /// when the log is off or the thread is unbound). Flips the slot back to
  /// live execution when its counters have reached the replay target.
  [[nodiscard]] detail::ReplayRank* replaySlot() const;

  /// Serves the next logged recv during replay, asserting the re-execution
  /// asked for exactly the message the original execution received.
  void serveReplayedRecv(detail::ReplayRank& rep, index_t src, Tag tag,
                         void* data, std::size_t bytes) const;

  /// Appends a live recv's payload to the replay log.
  void logRecv(detail::ReplayRank& rep, index_t src, Tag tag,
               std::vector<std::byte> payload) const;

  std::shared_ptr<detail::CommState> state_;
  index_t rank_ = 0;
};

}  // namespace hplmxp::simmpi
