// In-process message-passing runtime standing in for MPI.
//
// Each rank is a thread; a Comm is a handle (rank, shared state) with
// MPI-like semantics: tagged point-to-point send/recv with per-(src, tag)
// FIFO ordering, barriers, broadcast (synchronous tree and "IBcast"
// nonblocking), sum/max reductions, and communicator splitting (used for
// the row/column communicators of the 2D grid).
//
// Sends are buffered and never block (an unbounded-eager-buffer MPI); recv
// blocks until a matching message arrives. This preserves the ordering and
// deadlock structure of the paper's communication patterns while running
// whole multi-rank executions inside one test process.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "util/common.h"

namespace hplmxp::simmpi {

using Tag = std::int64_t;

namespace detail {
struct CommState;
}

/// Handle to a pending nonblocking operation. wait() must be called before
/// the destination buffer is read (receivers) — for senders the operation
/// completes eagerly and wait() is a no-op.
class Request {
 public:
  Request() = default;
  explicit Request(std::function<void()> complete)
      : complete_(std::move(complete)) {}

  /// Blocks until the operation is complete. Idempotent.
  void wait() {
    if (complete_) {
      complete_();
      complete_ = nullptr;
    }
  }

 private:
  std::function<void()> complete_;
};

/// Communicator handle. Cheap to copy; all copies share the transport.
class Comm {
 public:
  Comm() = default;

  [[nodiscard]] index_t rank() const { return rank_; }
  [[nodiscard]] index_t size() const;
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  // --- point to point -----------------------------------------------------
  void sendBytes(index_t dest, Tag tag, const void* data, std::size_t bytes);
  void recvBytes(index_t src, Tag tag, void* data, std::size_t bytes);

  template <typename T>
  void send(index_t dest, Tag tag, const T* data, index_t count) {
    sendBytes(dest, tag, data, static_cast<std::size_t>(count) * sizeof(T));
  }
  template <typename T>
  void recv(index_t src, Tag tag, T* data, index_t count) {
    recvBytes(src, tag, data, static_cast<std::size_t>(count) * sizeof(T));
  }

  /// Nonblocking send: with the buffered transport the payload is captured
  /// immediately, so the returned Request completes eagerly.
  Request isendBytes(index_t dest, Tag tag, const void* data,
                     std::size_t bytes) {
    sendBytes(dest, tag, data, bytes);
    return Request{};
  }

  /// Nonblocking receive: completes (blocks if necessary) at wait().
  Request irecvBytes(index_t src, Tag tag, void* data, std::size_t bytes) {
    Comm self = *this;
    return Request([self, src, tag, data, bytes]() mutable {
      self.recvBytes(src, tag, data, bytes);
    });
  }

  /// Exchanges buffers with a partner (deadlock-free under buffering).
  void sendrecvBytes(index_t partner, Tag tag, const void* sendBuf,
                     void* recvBuf, std::size_t bytes) {
    sendBytes(partner, tag, sendBuf, bytes);
    recvBytes(partner, tag, recvBuf, bytes);
  }
  template <typename T>
  void sendrecv(index_t partner, Tag tag, const T* sendBuf, T* recvBuf,
                index_t count) {
    sendrecvBytes(partner, tag, sendBuf, recvBuf,
                  static_cast<std::size_t>(count) * sizeof(T));
  }

  // --- collectives (must be called by every rank of the comm, in the same
  // order) -------------------------------------------------------------
  void barrier();

  /// Synchronous binomial-tree broadcast (the "Bcast" strategy).
  template <typename T>
  void bcast(index_t root, T* data, index_t count) {
    bcastBytes(root, data, static_cast<std::size_t>(count) * sizeof(T));
  }
  void bcastBytes(index_t root, void* data, std::size_t bytes);

  /// Nonblocking broadcast ("IBcast"): the root's data is captured and
  /// forwarded eagerly; non-roots complete the receive in wait().
  template <typename T>
  Request ibcast(index_t root, T* data, index_t count) {
    return ibcastBytes(root, data,
                       static_cast<std::size_t>(count) * sizeof(T));
  }
  Request ibcastBytes(index_t root, void* data, std::size_t bytes);

  /// Element-wise sum Allreduce (the IR residual reduction).
  void allreduceSum(double* data, index_t count);
  void allreduceSum(float* data, index_t count);

  /// Scalar max Allreduce.
  [[nodiscard]] double allreduceMax(double value);

  /// MAXLOC Allreduce: every rank receives the maximum value and the
  /// `where` payload supplied by the rank holding it (ties resolve to the
  /// smallest `where`). Used by the pivot search of the distributed HPL
  /// baseline.
  struct MaxLoc {
    double value = 0.0;
    index_t where = 0;
  };
  [[nodiscard]] MaxLoc allreduceMaxLoc(double value, index_t where);

  /// Gathers `count` elements from each rank to `root` (recvBuf must hold
  /// size()*count on the root; it may be null elsewhere).
  template <typename T>
  void gather(index_t root, const T* sendBuf, T* recvBuf, index_t count) {
    gatherBytes(root, sendBuf, recvBuf,
                static_cast<std::size_t>(count) * sizeof(T));
  }
  void gatherBytes(index_t root, const void* sendBuf, void* recvBuf,
                   std::size_t bytes);

  /// Allgather: every rank receives every rank's contribution, in rank
  /// order.
  template <typename T>
  void allgather(const T* sendBuf, T* recvBuf, index_t count) {
    allgatherBytes(sendBuf, recvBuf,
                   static_cast<std::size_t>(count) * sizeof(T));
  }
  void allgatherBytes(const void* sendBuf, void* recvBuf,
                      std::size_t bytes);

  /// Splits into sub-communicators by color; ranks ordered by (key, rank).
  /// Every rank of this comm must call split (same call ordinal).
  [[nodiscard]] Comm split(index_t color, index_t key);

  /// World constructor used by the Runtime.
  static std::vector<Comm> makeWorld(index_t size);

 private:
  Comm(std::shared_ptr<detail::CommState> state, index_t rank)
      : state_(std::move(state)), rank_(rank) {}

  template <typename T>
  void allreduceSumT(T* data, index_t count);

  std::shared_ptr<detail::CommState> state_;
  index_t rank_ = 0;
};

}  // namespace hplmxp::simmpi
