#include "simmpi/runtime.h"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace hplmxp::simmpi {

void run(index_t worldSize, const std::function<void(Comm&)>& fn) {
  HPLMXP_REQUIRE(worldSize > 0, "world size must be positive");
  auto world = Comm::makeWorld(worldSize);

  if (worldSize == 1) {
    fn(world[0]);
    return;
  }

  std::mutex excMutex;
  std::exception_ptr firstExc;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(worldSize));
  for (index_t r = 0; r < worldSize; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(world[static_cast<std::size_t>(r)]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(excMutex);
        if (!firstExc) {
          firstExc = std::current_exception();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (firstExc) {
    std::rethrow_exception(firstExc);
  }
}

}  // namespace hplmxp::simmpi
