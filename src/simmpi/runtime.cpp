#include "simmpi/runtime.h"

#include <exception>
#include <thread>
#include <vector>

#include "simmpi/faults.h"

namespace hplmxp::simmpi {

std::string MultiRankError::renderMessage(
    const std::vector<RankFailure>& failures, index_t partitionBoundary,
    std::uint64_t partitionDrops) {
  std::string msg =
      std::to_string(failures.size()) + " ranks failed:";
  if (partitionDrops > 0) {
    msg += " [network partition at rank boundary " +
           std::to_string(partitionBoundary) + " dropped " +
           std::to_string(partitionDrops) + " sends]";
  }
  for (const RankFailure& f : failures) {
    msg += "\n  rank " + std::to_string(f.rank) + ": " + f.message;
  }
  return msg;
}

MultiRankError::MultiRankError(std::vector<RankFailure> failures)
    : CheckError(renderMessage(failures, -1, 0)),
      failures_(std::move(failures)) {}

MultiRankError::MultiRankError(std::vector<RankFailure> failures,
                               index_t partitionBoundary,
                               std::uint64_t partitionDrops)
    : CheckError(renderMessage(failures, partitionBoundary, partitionDrops)),
      failures_(std::move(failures)),
      partitionBoundary_(partitionBoundary),
      partitionDrops_(partitionDrops) {}

void run(index_t worldSize, const std::function<void(Comm&)>& fn) {
  run(worldSize, fn, RunOptions{});
}

void run(index_t worldSize, const std::function<void(Comm&)>& fn,
         const RunOptions& options) {
  HPLMXP_REQUIRE(worldSize > 0, "world size must be positive");
  auto world = Comm::makeWorld(worldSize);
  world[0].setTimeout(options.timeout);
  world[0].setSendRetry(options.sendMaxRetries, options.sendBackoff);
  if (options.faults) {
    world[0].setFaultInjector(options.faults);
  }
  if (options.replayLog) {
    world[0].enableReplayLog();
  }

  if (worldSize == 1) {
    bindThreadRank(0);
    fn(world[0]);
    return;
  }

  std::vector<std::exception_ptr> rankExc(
      static_cast<std::size_t>(worldSize));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(worldSize));
  for (index_t r = 0; r < worldSize; ++r) {
    threads.emplace_back([&, r] {
      bindThreadRank(r);
      try {
        fn(world[static_cast<std::size_t>(r)]);
      } catch (...) {
        rankExc[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  std::vector<RankFailure> failures;
  std::exception_ptr single;
  for (index_t r = 0; r < worldSize; ++r) {
    const auto& exc = rankExc[static_cast<std::size_t>(r)];
    if (!exc) {
      continue;
    }
    if (!single) {
      single = exc;
    }
    try {
      std::rethrow_exception(exc);
    } catch (const std::exception& e) {
      failures.push_back({r, e.what()});
    } catch (...) {
      failures.push_back({r, "unknown exception"});
    }
  }
  if (failures.size() == 1) {
    std::rethrow_exception(single);  // preserve the original type
  }
  if (!failures.empty()) {
    if (options.faults) {
      // Per-rank fault provenance: which deterministic plan was active and
      // how far into its op sequence each failed rank got. Diagnosing a
      // cascade (one crash, many timeouts) needs this to find the root.
      const FaultConfig& cfg = options.faults->plan().config();
      for (RankFailure& f : failures) {
        f.message += " [fault plan seed " + std::to_string(cfg.seed) +
                     "; rank had issued " +
                     std::to_string(options.faults->opsSeen(f.rank)) +
                     " comm ops]";
      }
      const std::uint64_t drops = options.faults->stats().partitionDrops;
      if (drops > 0) {
        // Symmetric timeout cascades with zero dead ranks are the
        // partition signature; carry it so callers don't misdiagnose.
        throw MultiRankError(std::move(failures), cfg.partitionBoundary,
                             drops);
      }
    }
    throw MultiRankError(std::move(failures));
  }
}

}  // namespace hplmxp::simmpi
