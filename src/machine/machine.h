// Machine descriptions for Summit and Frontier (Table I of the paper),
// plus derived system-level quantities used by the performance model and
// the at-scale simulator.
#pragma once

#include <string>

#include "device/device.h"
#include "util/common.h"

namespace hplmxp {

enum class MachineKind { kSummit, kFrontier };

/// One row set of Table I.
struct MachineSpec {
  MachineKind kind;
  std::string name;
  index_t nodes;               // full-system node count
  std::string processor;       // host CPU
  double cpuMemGiBPerNode;     // CPU memory per node
  std::string gpuModel;        // GPU product
  index_t gcdsPerNode;         // GCDs per node (V100: 1 GCD each; MI250X: 2)
  double gpuMemGiBPerGcd;      // HBM per GCD
  double gpuMemGiBPerNode;     // HBM per node
  std::string gpuInterconnect;
  double gpuLinkGBsEachWay;    // intra-node GPU link bandwidth, each way
  double fp16TflopsPerGcd;     // peak FP16 (tensor/matrix core) per GCD
  double fp64TflopsPerGcd;     // peak FP64 per GCD
  double fp16TflopsPerNode;    // peak FP16 per node
  index_t nicsPerNode;
  std::string nicModel;
  double nicGBsPerNodeEachWay;  // injection bandwidth per node, each way
  Vendor vendor;
  bool nicAttachedToGpu;  // Frontier: NIC wired to the GPU (GPU-aware MPI)

  [[nodiscard]] index_t totalGcds() const { return nodes * gcdsPerNode; }
  [[nodiscard]] double systemPeakFp16Pflops() const {
    return static_cast<double>(totalGcds()) * fp16TflopsPerGcd / 1e3;
  }
  [[nodiscard]] double systemPeakFp64Pflops() const {
    return static_cast<double>(totalGcds()) * fp64TflopsPerGcd / 1e3;
  }
  [[nodiscard]] std::size_t gpuMemBytesPerGcd() const {
    return static_cast<std::size_t>(gpuMemGiBPerGcd * 1024.0 * 1024.0 *
                                    1024.0);
  }
};

/// Table I, Summit column.
const MachineSpec& summitSpec();
/// Table I, Frontier column.
const MachineSpec& frontierSpec();

const MachineSpec& machineSpec(MachineKind kind);
std::string toString(MachineKind kind);

}  // namespace hplmxp
