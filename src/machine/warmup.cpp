#include "machine/warmup.h"

namespace hplmxp {

WarmupModel::WarmupModel(MachineKind kind, WarmupConfig config)
    : kind_(kind), config_(config) {}

double WarmupModel::jitter(index_t runIndex, double cap) const {
  // Deterministic jitter in [-cap/2, +cap/2] (SplitMix64 on run index).
  std::uint64_t x = config_.seed ^
                    (static_cast<std::uint64_t>(runIndex) * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  const double u = static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
  return (u - 0.5) * cap;
}

double WarmupModel::runFactor(index_t runIndex, bool preWarmed) const {
  HPLMXP_REQUIRE(runIndex >= 0, "run index must be >= 0");
  if (kind_ == MachineKind::kSummit) {
    // Cold caches hurt the entire first run (all kernels and communication
    // slower, not just the first iterations); a warm-up mini-benchmark run
    // removes the penalty.
    if (runIndex == 0 && !preWarmed) {
      return (1.0 - config_.summitColdPenalty) *
             (1.0 + jitter(runIndex, config_.summitSteadyJitter));
    }
    return 1.0 + jitter(runIndex, config_.summitSteadyJitter);
  }
  // Frontier: early runs ride higher clocks before power/thermal controls
  // settle the GPUs; pre-warming (embedded small GEMMs) starts the run in
  // the settled regime, removing the run-to-run drift.
  if (!preWarmed && runIndex < 2) {
    const double boost =
        config_.frontierEarlyBoost * (runIndex == 0 ? 1.0 : 0.6);
    return 1.0 + boost + jitter(runIndex, config_.frontierSteadyJitter);
  }
  return 1.0 + jitter(runIndex, config_.frontierSteadyJitter);
}

std::vector<double> WarmupModel::sequence(index_t runs, bool preWarmed) const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(runs));
  for (index_t i = 0; i < runs; ++i) {
    out.push_back(runFactor(i, preWarmed));
  }
  return out;
}

}  // namespace hplmxp
