// Per-GCD performance variability model (Sec. VI-B, "Identify slow nodes").
//
// Large systems show a few-percent spread in per-die throughput from
// manufacturing variance and power/thermal management; the paper measured
// ~5% maximum variation across Frontier GCDs and recommends scanning for
// and excluding slow nodes, because one slow GCD stalls the whole pipeline.
//
// The model is deterministic: each GCD's multiplier is a pure function of
// (seed, gcd index), so fleets are reproducible. Optionally a fraction of
// GCDs are made distinctly "slow" (degraded dies) for the scanner to find.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace hplmxp {

struct VariabilityConfig {
  std::uint64_t seed = 0x5eed;
  double spread = 0.05;        // max fractional spread of healthy dies
  double slowFraction = 0.0;   // fraction of distinctly degraded dies
  double slowPenalty = 0.25;   // extra fractional slowdown of degraded dies
};

/// Deterministic per-GCD throughput multipliers in (0, 1].
class GcdVariability {
 public:
  explicit GcdVariability(VariabilityConfig config);

  /// Multiplier for GCD `index` (1.0 = nominal fastest die).
  [[nodiscard]] double multiplier(index_t gcdIndex) const;

  /// True if the model marks this GCD as a degraded die.
  [[nodiscard]] bool isDegraded(index_t gcdIndex) const;

  /// Multipliers for a fleet [0, count).
  [[nodiscard]] std::vector<double> fleet(index_t count) const;

  /// The slowest multiplier in a fleet — the pipeline-stall factor: a
  /// synchronous LU iteration advances at the pace of its slowest rank.
  [[nodiscard]] double fleetMin(index_t count) const;

  [[nodiscard]] const VariabilityConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::uint64_t hash(index_t gcdIndex,
                                   std::uint64_t salt) const;

  VariabilityConfig config_;
};

}  // namespace hplmxp
