// Warm-up / run-sequence model (Sec. VI-B "Warm up", Fig. 12).
//
// The paper launches six consecutive full runs in one batch job and sees
// opposite behaviours on the two systems:
//   * Summit: the FIRST run is ~20% slower (cold file-system caches for
//     binaries/libraries); subsequent runs agree within 0.12%.
//   * Frontier: the first TWO runs are slightly FASTER, then performance
//     settles ~ lower (power/frequency/thermal controls); subsequent runs
//     agree within 0.34%.
//
// The model returns a multiplicative throughput factor per run index, with
// a small deterministic jitter bounded by the paper's observed caps, and
// captures the recommended mitigations: a mini-benchmark warm-up run on
// Summit and embedded small-GEMM warm-up kernels on Frontier (Finding 10).
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine.h"
#include "util/common.h"

namespace hplmxp {

struct WarmupConfig {
  std::uint64_t seed = 7;
  // Summit parameters.
  double summitColdPenalty = 0.20;   // first run 20% slower
  double summitSteadyJitter = 0.0012;  // 0.12% cap between warmed runs
  // Frontier parameters.
  double frontierEarlyBoost = 0.015;  // first two runs slightly faster
  double frontierSteadyJitter = 0.0034;  // 0.34% cap between settled runs
};

/// Deterministic run-sequence throughput model.
class WarmupModel {
 public:
  WarmupModel(MachineKind kind, WarmupConfig config = {});

  /// Relative throughput of run `runIndex` (0-based) within one batch job.
  /// `preWarmed` applies the paper's mitigation (mini-benchmark warm-up on
  /// Summit / embedded GEMM warm-up on Frontier), which removes the
  /// first-run anomaly.
  [[nodiscard]] double runFactor(index_t runIndex, bool preWarmed) const;

  /// Factors for `runs` consecutive runs (the Fig. 12 series).
  [[nodiscard]] std::vector<double> sequence(index_t runs,
                                             bool preWarmed) const;

  [[nodiscard]] MachineKind kind() const { return kind_; }

 private:
  [[nodiscard]] double jitter(index_t runIndex, double cap) const;

  MachineKind kind_;
  WarmupConfig config_;
};

}  // namespace hplmxp
