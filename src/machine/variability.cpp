#include "machine/variability.h"

#include <algorithm>

namespace hplmxp {

GcdVariability::GcdVariability(VariabilityConfig config) : config_(config) {
  HPLMXP_REQUIRE(config_.spread >= 0.0 && config_.spread < 1.0,
                 "spread must be in [0, 1)");
  HPLMXP_REQUIRE(config_.slowFraction >= 0.0 && config_.slowFraction <= 1.0,
                 "slowFraction must be in [0, 1]");
  HPLMXP_REQUIRE(config_.slowPenalty >= 0.0 && config_.slowPenalty < 1.0,
                 "slowPenalty must be in [0, 1)");
}

std::uint64_t GcdVariability::hash(index_t gcdIndex,
                                   std::uint64_t salt) const {
  // SplitMix64 over (seed, salt, index): well-mixed and stateless.
  std::uint64_t x = config_.seed ^ (salt * 0x9E3779B97F4A7C15ULL) ^
                    (static_cast<std::uint64_t>(gcdIndex) + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

bool GcdVariability::isDegraded(index_t gcdIndex) const {
  if (config_.slowFraction <= 0.0) {
    return false;
  }
  const double u = static_cast<double>(hash(gcdIndex, 2) >> 11) *
                   (1.0 / 9007199254740992.0);
  return u < config_.slowFraction;
}

double GcdVariability::multiplier(index_t gcdIndex) const {
  const double u = static_cast<double>(hash(gcdIndex, 1) >> 11) *
                   (1.0 / 9007199254740992.0);
  double m = 1.0 - config_.spread * u;
  if (isDegraded(gcdIndex)) {
    m *= 1.0 - config_.slowPenalty;
  }
  return m;
}

std::vector<double> GcdVariability::fleet(index_t count) const {
  std::vector<double> out(static_cast<std::size_t>(count));
  for (index_t i = 0; i < count; ++i) {
    out[static_cast<std::size_t>(i)] = multiplier(i);
  }
  return out;
}

double GcdVariability::fleetMin(index_t count) const {
  double best = 1.0;
  for (index_t i = 0; i < count; ++i) {
    best = std::min(best, multiplier(i));
  }
  return best;
}

}  // namespace hplmxp
