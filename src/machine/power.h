// System power / energy model.
//
// The paper's conclusion: "Of great interest would be investigating how
// mixed precision operations effects the energy profile ... One would
// expect that the improvements seen in performance would translate
// directly to energy utilization." This module provides that first-order
// model: run energy = node power envelope x nodes x time, plus the
// Green500-style efficiency metrics, so the benches can quantify the
// energy advantage of HPL-AI over HPL.
#pragma once

#include "machine/machine.h"
#include "util/common.h"

namespace hplmxp {

/// Per-node power envelope under benchmark load.
struct PowerModel {
  explicit PowerModel(MachineKind kind);

  [[nodiscard]] MachineKind kind() const { return kind_; }
  /// Node power under full load (kW).
  [[nodiscard]] double nodeLoadKw() const { return nodeLoadKw_; }
  /// Node power at idle (kW) — excluded nodes still burn this.
  [[nodiscard]] double nodeIdleKw() const { return nodeIdleKw_; }

  /// System power of a job spanning `nodes` nodes (MW).
  [[nodiscard]] double jobPowerMw(index_t nodes) const;

  /// Energy of a run: `seconds` on `nodes` nodes (MWh).
  [[nodiscard]] double runEnergyMwh(index_t nodes, double seconds) const;

  /// Green500-style efficiency: GFLOP/s per watt for a run achieving
  /// `flopsPerSecond` across `nodes` nodes.
  [[nodiscard]] double gflopsPerWatt(double flopsPerSecond,
                                     index_t nodes) const;

 private:
  MachineKind kind_;
  double nodeLoadKw_;
  double nodeIdleKw_;
};

}  // namespace hplmxp
