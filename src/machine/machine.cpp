#include "machine/machine.h"

namespace hplmxp {

const MachineSpec& summitSpec() {
  static const MachineSpec spec{
      .kind = MachineKind::kSummit,
      .name = "Summit",
      .nodes = 4608,
      .processor = "Power9",
      .cpuMemGiBPerNode = 512.0,
      .gpuModel = "NVIDIA V100",
      .gcdsPerNode = 6,  // 6 V100s, one GCD each
      .gpuMemGiBPerGcd = 16.0,
      .gpuMemGiBPerNode = 96.0,
      .gpuInterconnect = "NVLINK",
      .gpuLinkGBsEachWay = 50.0,
      .fp16TflopsPerGcd = 125.0,
      .fp64TflopsPerGcd = 7.8,
      .fp16TflopsPerNode = 750.0,
      .nicsPerNode = 2,
      .nicModel = "Mellanox EDR IB",
      .nicGBsPerNodeEachWay = 12.5,
      .vendor = Vendor::kNvidia,
      .nicAttachedToGpu = false,
  };
  return spec;
}

const MachineSpec& frontierSpec() {
  static const MachineSpec spec{
      .kind = MachineKind::kFrontier,
      .name = "Frontier",
      .nodes = 9408,
      .processor = "3rd Gen EPYC",
      .cpuMemGiBPerNode = 512.0,
      .gpuModel = "AMD MI250X",
      .gcdsPerNode = 8,  // 4 MI250X, 2 GCDs each
      .gpuMemGiBPerGcd = 64.0,  // 128 GiB per MI250X => 64 per GCD
      .gpuMemGiBPerNode = 512.0,
      .gpuInterconnect = "Infinity Fabric",
      .gpuLinkGBsEachWay = 50.0,
      .fp16TflopsPerGcd = 149.0,  // 298 per MI250X
      .fp64TflopsPerGcd = 27.25,  // 54.5 per MI250X
      .fp16TflopsPerNode = 1192.0,
      .nicsPerNode = 4,
      .nicModel = "Slingshot-11",
      .nicGBsPerNodeEachWay = 25.0,
      .vendor = Vendor::kAmd,
      .nicAttachedToGpu = true,
  };
  return spec;
}

const MachineSpec& machineSpec(MachineKind kind) {
  return kind == MachineKind::kSummit ? summitSpec() : frontierSpec();
}

std::string toString(MachineKind kind) {
  return machineSpec(kind).name;
}

}  // namespace hplmxp
