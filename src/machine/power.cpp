#include "machine/power.h"

namespace hplmxp {

PowerModel::PowerModel(MachineKind kind) : kind_(kind) {
  if (kind == MachineKind::kSummit) {
    // ~13 MW system under HPL load across 4608 nodes.
    nodeLoadKw_ = 2.82;
    nodeIdleKw_ = 1.1;
  } else {
    // ~21 MW under load across 9408 nodes (Frontier's Green500-leading
    // efficiency comes from the MI250X FLOP/W, not low node power).
    nodeLoadKw_ = 2.23;
    nodeIdleKw_ = 0.9;
  }
}

double PowerModel::jobPowerMw(index_t nodes) const {
  HPLMXP_REQUIRE(nodes >= 0, "node count must be non-negative");
  return static_cast<double>(nodes) * nodeLoadKw_ / 1e3;
}

double PowerModel::runEnergyMwh(index_t nodes, double seconds) const {
  HPLMXP_REQUIRE(seconds >= 0.0, "time must be non-negative");
  return jobPowerMw(nodes) * seconds / 3600.0;
}

double PowerModel::gflopsPerWatt(double flopsPerSecond,
                                 index_t nodes) const {
  const double watts = jobPowerMw(nodes) * 1e6;
  HPLMXP_REQUIRE(watts > 0.0, "need a positive job power");
  return flopsPerSecond / 1e9 / watts;
}

}  // namespace hplmxp
