// Software IEEE 754 binary16 ("half") storage type.
//
// The paper's trailing-matrix GEMM consumes FP16 panels produced by the
// CAST / TRANS_CAST phases and accumulates in FP32 (cublasSgemmEx /
// rocblas_gemm_ex). What matters numerically is the *storage rounding* of
// the panels to 11-bit significands; the accumulation stays FP32. This type
// reproduces exactly that: float -> binary16 with round-to-nearest-even
// (including subnormals, overflow to infinity, NaN preservation) and a
// lossless binary16 -> float widening.
#pragma once

#include <cstdint>
#include <limits>

namespace hplmxp {

/// IEEE binary16 value. Trivially copyable; 2 bytes; arithmetic is done by
/// widening to float (mirroring FP32 accumulation on tensor/matrix cores).
class half16 {
 public:
  half16() = default;

  /// Rounds a float to binary16 (round-to-nearest-even).
  explicit half16(float f) : bits_(fromFloat(f)) {}

  /// Widens to float; exact for every binary16 value.
  [[nodiscard]] float toFloat() const { return toFloatBits(bits_); }
  explicit operator float() const { return toFloat(); }

  [[nodiscard]] std::uint16_t bits() const { return bits_; }

  /// Builds a half16 from raw binary16 bits.
  static half16 fromBits(std::uint16_t bits) {
    half16 h;
    h.bits_ = bits;
    return h;
  }

  [[nodiscard]] bool isNan() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  [[nodiscard]] bool isInf() const { return (bits_ & 0x7FFFu) == 0x7C00u; }

  /// Largest finite binary16 value (65504).
  static constexpr float maxFinite() { return 65504.0f; }
  /// Smallest positive normal binary16 value (2^-14).
  static constexpr float minNormal() { return 6.103515625e-05f; }
  /// Unit roundoff of binary16 (2^-11).
  static constexpr float epsilonUnit() { return 4.8828125e-04f; }

  friend bool operator==(half16 a, half16 b) {
    // IEEE semantics: NaN != NaN, +0 == -0.
    return a.toFloat() == b.toFloat();
  }

  /// Round-to-nearest-even conversion, bit-exact IEEE binary16.
  static std::uint16_t fromFloat(float f);
  /// Exact widening of binary16 bits to float.
  static float toFloatBits(std::uint16_t h);

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half16) == 2);

inline half16 operator+(half16 a, half16 b) {
  return half16(a.toFloat() + b.toFloat());
}
inline half16 operator-(half16 a, half16 b) {
  return half16(a.toFloat() - b.toFloat());
}
inline half16 operator*(half16 a, half16 b) {
  return half16(a.toFloat() * b.toFloat());
}
inline half16 operator/(half16 a, half16 b) {
  return half16(a.toFloat() / b.toFloat());
}

}  // namespace hplmxp
