#include "fp16/half.h"

#include <bit>
#include <cstring>

namespace hplmxp {

namespace {
constexpr std::uint32_t kF32SignMask = 0x80000000u;
constexpr int kF32ExpBias = 127;
constexpr int kF16ExpBias = 15;
}  // namespace

std::uint16_t half16::fromFloat(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint16_t sign =
      static_cast<std::uint16_t>((x & kF32SignMask) >> 16);
  const std::uint32_t absBits = x & 0x7FFFFFFFu;
  const int exp32 = static_cast<int>(absBits >> 23);
  const std::uint32_t mant32 = absBits & 0x007FFFFFu;

  if (exp32 == 0xFF) {
    // Inf / NaN: keep NaN-ness (quiet it) and propagate infinity.
    if (mant32 != 0) {
      return static_cast<std::uint16_t>(sign | 0x7E00u);  // qNaN
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);  // inf
  }

  const int unbiased = exp32 - kF32ExpBias;

  if (unbiased > 15) {
    // Overflows binary16 range (max exp = 15): round to infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (unbiased >= -14) {
    // Normal result. 23 - 10 = 13 mantissa bits are dropped.
    std::uint32_t mant = mant32;
    std::uint16_t exp16 = static_cast<std::uint16_t>(unbiased + kF16ExpBias);
    const std::uint32_t dropped = mant & 0x1FFFu;
    std::uint32_t kept = mant >> 13;
    // Round to nearest, ties to even.
    if (dropped > 0x1000u || (dropped == 0x1000u && (kept & 1u) != 0)) {
      ++kept;
      if (kept == 0x400u) {  // mantissa carry into exponent
        kept = 0;
        ++exp16;
        if (exp16 == 31) {
          return static_cast<std::uint16_t>(sign | 0x7C00u);
        }
      }
    }
    return static_cast<std::uint16_t>(sign | (exp16 << 10) |
                                      static_cast<std::uint16_t>(kept));
  }

  if (unbiased >= -25) {
    // Subnormal binary16 result (unbiased in [-25, -15]): the value is
    // significand * 2^(unbiased-23) and the target field counts units of
    // 2^-24, so m = significand >> (-unbiased - 1). unbiased == -25 rounds
    // to either 0 or the smallest subnormal under ties-to-even.
    const std::uint32_t significand = 0x00800000u | mant32;  // 1.xxx, 24 bits
    const int shift = -unbiased - 1;                         // in [14, 24]
    const std::uint32_t kept = significand >> shift;
    const std::uint32_t droppedMask = (1u << shift) - 1u;
    const std::uint32_t dropped = significand & droppedMask;
    const std::uint32_t half = 1u << (shift - 1);
    std::uint32_t mant = kept;
    if (dropped > half || (dropped == half && (mant & 1u) != 0)) {
      ++mant;  // may carry into the normal range: 0x400 encodes exp=1 mant=0
    }
    return static_cast<std::uint16_t>(sign | mant);
  }

  // Underflows to zero (magnitude below half of the smallest subnormal).
  return sign;
}

float half16::toFloatBits(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp16 = (h >> 10) & 0x1Fu;
  std::uint32_t mant16 = h & 0x3FFu;

  std::uint32_t out;
  if (exp16 == 0) {
    if (mant16 == 0) {
      out = sign;  // signed zero
    } else {
      // Subnormal: normalize into float's larger exponent range.
      int e = -1;
      std::uint32_t m = mant16;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      const std::uint32_t exp32 =
          static_cast<std::uint32_t>(kF32ExpBias - kF16ExpBias - e);
      out = sign | (exp32 << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exp16 == 31) {
    out = sign | 0x7F800000u | (mant16 << 13);  // inf / NaN
  } else {
    const std::uint32_t exp32 = exp16 - kF16ExpBias + kF32ExpBias;
    out = sign | (exp32 << 23) | (mant16 << 13);
  }
  return std::bit_cast<float>(out);
}

}  // namespace hplmxp
